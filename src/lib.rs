//! # dronet
//!
//! A full Rust reproduction of *DroNet: Efficient Convolutional Neural
//! Network Detector for Real-Time UAV Applications* (Kyrkou et al., DATE
//! 2018): a from-scratch CNN engine, the paper's model zoo, a synthetic
//! aerial-data substrate, training, detection, platform performance
//! models, and an experiment harness that regenerates every table and
//! figure of the paper's evaluation.
//!
//! This facade crate re-exports the workspace members under stable module
//! names; see each module's docs for the details, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! # Quickstart
//!
//! ```
//! use dronet::core::{zoo, ModelId};
//! use dronet::detect::DetectorBuilder;
//! use dronet::data::scene::{SceneConfig, SceneGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build the paper's DroNet at a reduced input size and run a frame.
//! let net = zoo::build(ModelId::DroNet, 128)?;
//! let mut detector = DetectorBuilder::new(net).build()?;
//! let scene = SceneGenerator::new(SceneConfig::default(), 7).generate();
//! let image = scene.image.resize(128, 128).to_tensor();
//! let detections = detector.detect(&image)?;
//! println!("{} detections from an untrained net", detections.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's model zoo and INT8 quantization (`dronet-core`).
pub use dronet_core as core;
/// Synthetic aerial scenes, datasets and the flight simulator
/// (`dronet-data`).
pub use dronet_data as data;
/// Detection pipeline: decode, NMS, detector, altitude gating, tracking
/// (`dronet-detect`).
pub use dronet_detect as detect;
/// Experiment harness: sweeps, figures, claims (`dronet-eval`).
pub use dronet_eval as eval;
/// Detection metrics and the weighted Score (`dronet-metrics`).
pub use dronet_metrics as metrics;
/// The CNN engine (`dronet-nn`).
pub use dronet_nn as nn;
/// Telemetry: counters, gauges, latency histograms, JSON/CSV exporters
/// (`dronet-obs`).
pub use dronet_obs as obs;
/// Embedded platform performance models (`dronet-platform`).
pub use dronet_platform as platform;
/// HTTP detection server with dynamic micro-batching and admission
/// control (`dronet-serve`).
pub use dronet_serve as serve;
/// Tensor kernels (`dronet-tensor`).
pub use dronet_tensor as tensor;
/// Selective tile processing for large aerial frames (`dronet-tile`).
pub use dronet_tile as tile;
/// YOLO loss, SGD and the training loop (`dronet-train`).
pub use dronet_train as train;
