//! Load-test tour: spawn the detection server in-process, drive it with
//! the seeded open-loop generator (steady phase, then a burst), and print
//! the coordinated-omission-corrected report next to the server's own
//! SLO verdicts from `GET /debug/slo`.
//!
//! ```text
//! cargo run --release --example load_test [steady_hz [burst_hz]]
//! ```

use dronet::detect::DetectorBuilder;
use dronet::obs::{Registry, Tracer};
use dronet::serve::{DetectorFactory, ServeConfig, Server};
use dronet_bench::loadgen::{frame_corpus, run, LoadgenConfig, Phase};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let steady_hz: f64 = args.next().and_then(|v| v.parse().ok()).unwrap_or(40.0);
    let burst_hz: f64 = args
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or(steady_hz * 10.0);

    let factory: DetectorFactory = Arc::new(|| {
        let net = dronet::core::zoo::build(dronet::core::ModelId::DroNet, 64)?;
        DetectorBuilder::new(net).confidence_threshold(0.3).build()
    });
    let config = ServeConfig {
        workers: 2,
        queue_capacity: 16,
        max_requests_per_connection: 1_000_000,
        keep_alive_timeout: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let server = Server::start(factory, config, &Registry::new(), &Tracer::noop())?;
    println!("server listening on {}", server.addr());

    let cfg = LoadgenConfig {
        seed: 42,
        connections: 64,
        phases: vec![
            Phase::new(steady_hz, 3.0),
            Phase::new(burst_hz, 1.0),
            Phase::new(steady_hz, 2.0),
        ],
        frames: frame_corpus(64),
        drain_timeout: Duration::from_secs(15),
    };
    println!(
        "offering {steady_hz} Hz steady with a {burst_hz} Hz burst (seed {}, {} connections)...",
        cfg.seed, cfg.connections
    );
    let report = run(server.addr(), &cfg);

    println!("\n=== loadgen report (CO-corrected latency) ===\n");
    println!(
        "offered {}  ok {}  shed {}  errors {}  timeouts {}  dropped {}",
        report.offered, report.ok, report.shed, report.errors, report.timeouts, report.dropped
    );
    println!(
        "goodput {:.1}/s  p50 {:.1} ms  p99 {:.1} ms  p99.9 {:.1} ms",
        report.goodput(),
        report.ok_quantile_ns(0.50) as f64 / 1e6,
        report.ok_quantile_ns(0.99) as f64 / 1e6,
        report.ok_quantile_ns(0.999) as f64 / 1e6,
    );

    // The server's own view: declared objectives + burn rates.
    let mut stream = TcpStream::connect(server.addr())?;
    stream.write_all(b"GET /debug/slo HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n")?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let body = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| String::from_utf8_lossy(&response[i + 4..]).into_owned())
        .unwrap_or_default();
    println!("\n=== GET /debug/slo ===\n\n{body}");

    let drain = server.shutdown();
    println!("drained: {}", drain.drained);
    Ok(())
}
