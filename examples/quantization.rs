//! INT8 post-training quantization — the paper's §V future-work item,
//! demonstrated: quantize a trained MicroDroNet, compare outputs, model
//! size, detection agreement and the projected embedded-platform benefit.
//!
//! ```text
//! cargo run --release --example quantization
//! ```

use dronet::core::quant::{relative_output_error, QuantizedNetwork};
use dronet::core::zoo;
use dronet::data::dataset::VehicleDataset;
use dronet::data::scene::SceneConfig;
use dronet::eval::realeval::estimate_anchors;
use dronet::nn::cost::network_cost;
use dronet::train::{LrSchedule, TrainConfig, Trainer, YoloLossConfig};

const INPUT: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Briefly train a detector so the quantization sees realistic weights
    // and batch-norm statistics, not random initialisation.
    let config = SceneConfig {
        width: INPUT,
        height: INPUT,
        min_vehicles: 2,
        max_vehicles: 6,
        vehicle_len_frac: (0.12, 0.22),
        occlusion_prob: 0.05,
        ..SceneConfig::default()
    };
    let dataset = VehicleDataset::generate(config, 60, 0.85, 42);
    let anchors = estimate_anchors(dataset.train(), INPUT / 8, 3);
    let mut net = zoo::micro_dronet_with_width(INPUT, anchors, 2)?;
    println!("training briefly so quantization sees trained statistics...");
    Trainer::new(TrainConfig {
        epochs: 30,
        batch_size: 8,
        schedule: LrSchedule::Constant { lr: 1e-3 },
        loss: YoloLossConfig {
            coord_scale: 2.5,
            ..YoloLossConfig::default()
        },
        augment: false,
        seed: 3,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset)?;

    // Quantize and compare.
    let mut quantized = QuantizedNetwork::from_network(&net);
    let fp32_bytes = network_cost(&net).weight_bytes();
    println!("\nmodel size:");
    println!("  fp32 weights {:>10.1} KiB", fp32_bytes / 1024.0);
    println!(
        "  int8 weights {:>10.1} KiB",
        quantized.weight_bytes() as f64 / 1024.0
    );
    println!("  compression  {:>10.2}x", quantized.compression_vs(&net));

    let mut max_rel = 0.0f32;
    let mut mean_rel = 0.0f32;
    let scenes = dataset.test();
    for scene in scenes {
        let sample = VehicleDataset::sample(scene, INPUT);
        let rel = relative_output_error(&mut net, &mut quantized, &sample.image)?;
        max_rel = max_rel.max(rel);
        mean_rel += rel / scenes.len() as f32;
    }
    println!("\noutput agreement over {} test frames:", scenes.len());
    println!("  mean relative L2 error {mean_rel:.4}");
    println!("  max relative L2 error  {max_rel:.4}");

    // Projected embedded benefit: 4x less weight traffic; on a
    // bandwidth-bound platform this directly scales the memory roofline.
    println!("\nprojected effect on the paper's UAV platform (Odroid-XU4):");
    println!("  full DroNet-512 fp32 weights: {:.1} MB", {
        let full = zoo::build(dronet::core::ModelId::DroNet, 512)?;
        network_cost(&full).weight_bytes() / (1024.0 * 1024.0)
    });
    println!("  int8 cuts weight traffic 4x and halves cache-spill pressure,");
    println!("  the dominant cost of the Tiny-YOLO-class baselines (see bench abl_quantization).");
    Ok(())
}
