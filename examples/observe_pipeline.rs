//! Observability tour: run an instrumented DroNet detection pipeline and a
//! short training run, print the per-layer achieved-GFLOP/s breakdown, and
//! dump the whole telemetry snapshot as JSON (plus CSV next to it) and the
//! flight recorder as a Chrome/Perfetto trace (`trace.json`).
//!
//! ```text
//! cargo run --release --example observe_pipeline [profile.json [trace.json]]
//! ```
//!
//! Open the trace in <https://ui.perfetto.dev> (or `chrome://tracing`):
//! each frame id shows camera.frame → frame → detect.forward → per-layer
//! spans nested on their thread's track.

use dronet::core::{zoo, ModelId};
use dronet::data::dataset::VehicleDataset;
use dronet::data::scene::{SceneConfig, SceneGenerator};
use dronet::detect::{DetectorBuilder, IterSource, VideoPipeline};
use dronet::nn::profile::NetworkProfile;
use dronet::nn::summary::NetworkSummary;
use dronet::obs::{ChromeTrace, CsvExporter, JsonExporter, Registry, Tracer};
use dronet::train::{LrSchedule, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = Registry::new();
    let tracer = Tracer::new();
    let input = 352;

    // 1. An observed, traced detector: per-layer network timings plus the
    //    forward/decode/NMS stage histograms, and a flight-recorder span
    //    for every stage under the current frame id.
    let net = zoo::build(ModelId::DroNet, input)?;
    let summary = NetworkSummary::of("DroNet-352", &net);
    let mut detector = DetectorBuilder::new(net)
        .observability(&obs)
        .tracing(&tracer)
        .build()?;

    // 2. Stream synthetic camera frames through both pipeline modes.
    let frames: Vec<_> = (0..6)
        .map(|i| {
            SceneGenerator::new(SceneConfig::default(), 100 + i)
                .generate()
                .image
                .resize(input, input)
                .to_tensor()
        })
        .collect();
    let report = VideoPipeline::run_source_traced(
        &mut detector,
        IterSource::new(frames.clone()),
        &obs,
        &tracer,
    )?;
    println!(
        "synchronous pipeline: {} frames at {} ({:.1} ms mean)",
        report.processed(),
        report.fps(),
        report.mean_latency().as_secs_f64() * 1e3
    );
    let report = VideoPipeline::run_source_threaded_traced(
        &mut detector,
        IterSource::new(frames),
        &obs,
        &tracer,
    )?;
    println!(
        "threaded pipeline:    {} processed, {} dropped (ids {:?}, single-slot camera buffer)",
        report.processed(),
        report.dropped,
        report.dropped_ids
    );

    // 3. Where do the milliseconds go? Join the recorded timings with the
    //    static FLOP accounting into the per-layer breakdown.
    let profile = NetworkProfile::new(&summary, &obs.snapshot());
    println!("\n{profile}");
    if let Some(&hottest) = profile.hotspots().first() {
        let row = &profile.rows[hottest];
        println!(
            "hottest layer: #{} ({}) at {:.1}% of the mean forward pass\n",
            row.index,
            row.kind.as_str(),
            row.forward_mean.as_secs_f64() / profile.forward_total.map_or(1.0, |t| t.as_secs_f64())
                * 100.0
        );
    }

    // 4. A short observed training run on a micro model (full DroNet
    //    training is a multi-hour job; the telemetry shape is identical).
    let mut micro = zoo::micro_dronet(48, vec![(0.8, 0.8), (2.0, 2.0)])?;
    let dataset = VehicleDataset::generate(
        SceneConfig {
            width: 48,
            height: 48,
            ..SceneConfig::default()
        },
        12,
        0.75,
        7,
    );
    let train_report = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 4,
        augment: false,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        ..TrainConfig::default()
    })
    .with_observability(&obs)
    .train(&mut micro, &dataset)?;
    println!(
        "observed training: {} steps, losses {:?}",
        train_report.batches, train_report.epoch_losses
    );

    // 5. Export everything.
    let snapshot = obs.snapshot();
    let json_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "observe_pipeline.profile.json".to_string());
    let csv_path = match json_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.csv"),
        None => format!("{json_path}.csv"),
    };
    std::fs::write(&json_path, JsonExporter::to_string(&snapshot))?;
    std::fs::write(&csv_path, CsvExporter::to_string(&snapshot))?;
    println!(
        "\nwrote {} ({} counters, {} gauges, {} histograms) and {}",
        json_path,
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
        csv_path
    );

    // 6. Flight recorder: Chrome/Perfetto trace of both pipeline runs
    //    (camera instants + nested frame → stage → layer spans per frame
    //    id) and a plain-text timeline tail for the terminal.
    let trace = tracer.snapshot();
    let trace_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "trace.json".to_string());
    std::fs::write(&trace_path, ChromeTrace::to_string(&trace))?;
    println!(
        "wrote {} ({} events, {} overwritten) — open in https://ui.perfetto.dev",
        trace_path,
        trace.events.len(),
        trace.dropped
    );
    let text = dronet::obs::TraceSnapshot {
        events: trace.tail(12).to_vec(),
        dropped: 0,
        thread_names: Vec::new(),
    }
    .to_text();
    println!("last 12 flight-recorder events:\n{text}");
    Ok(())
}
