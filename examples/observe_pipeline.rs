//! Observability tour: run an instrumented DroNet detection pipeline and a
//! short training run, print the per-layer achieved-GFLOP/s breakdown, and
//! dump the whole telemetry snapshot as JSON (plus CSV next to it).
//!
//! ```text
//! cargo run --release --example observe_pipeline [profile.json]
//! ```

use dronet::core::{zoo, ModelId};
use dronet::data::dataset::VehicleDataset;
use dronet::data::scene::{SceneConfig, SceneGenerator};
use dronet::detect::{DetectorBuilder, VideoPipeline};
use dronet::nn::profile::NetworkProfile;
use dronet::nn::summary::NetworkSummary;
use dronet::obs::{CsvExporter, JsonExporter, Registry};
use dronet::train::{LrSchedule, TrainConfig, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let obs = Registry::new();
    let input = 352;

    // 1. An observed detector: per-layer network timings plus the
    //    forward/decode/NMS stage histograms.
    let net = zoo::build(ModelId::DroNet, input)?;
    let summary = NetworkSummary::of("DroNet-352", &net);
    let mut detector = DetectorBuilder::new(net).observability(&obs).build()?;

    // 2. Stream synthetic camera frames through both pipeline modes.
    let frames: Vec<_> = (0..6)
        .map(|i| {
            SceneGenerator::new(SceneConfig::default(), 100 + i)
                .generate()
                .image
                .resize(input, input)
                .to_tensor()
        })
        .collect();
    let report = VideoPipeline::run_observed(&mut detector, frames.clone(), &obs)?;
    println!(
        "synchronous pipeline: {} frames at {} ({:.1} ms mean)",
        report.processed(),
        report.fps(),
        report.mean_latency().as_secs_f64() * 1e3
    );
    let report = VideoPipeline::run_threaded_observed(&mut detector, frames, &obs)?;
    println!(
        "threaded pipeline:    {} processed, {} dropped (single-slot camera buffer)",
        report.processed(),
        report.dropped
    );

    // 3. Where do the milliseconds go? Join the recorded timings with the
    //    static FLOP accounting into the per-layer breakdown.
    let profile = NetworkProfile::new(&summary, &obs.snapshot());
    println!("\n{profile}");
    if let Some(&hottest) = profile.hotspots().first() {
        let row = &profile.rows[hottest];
        println!(
            "hottest layer: #{} ({}) at {:.1}% of the mean forward pass\n",
            row.index,
            row.kind.as_str(),
            row.forward_mean.as_secs_f64() / profile.forward_total.map_or(1.0, |t| t.as_secs_f64())
                * 100.0
        );
    }

    // 4. A short observed training run on a micro model (full DroNet
    //    training is a multi-hour job; the telemetry shape is identical).
    let mut micro = zoo::micro_dronet(48, vec![(0.8, 0.8), (2.0, 2.0)])?;
    let dataset = VehicleDataset::generate(
        SceneConfig {
            width: 48,
            height: 48,
            ..SceneConfig::default()
        },
        12,
        0.75,
        7,
    );
    let train_report = Trainer::new(TrainConfig {
        epochs: 2,
        batch_size: 4,
        augment: false,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        ..TrainConfig::default()
    })
    .with_observability(&obs)
    .train(&mut micro, &dataset)?;
    println!(
        "observed training: {} steps, losses {:?}",
        train_report.batches, train_report.epoch_losses
    );

    // 5. Export everything.
    let snapshot = obs.snapshot();
    let json_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "observe_pipeline.profile.json".to_string());
    let csv_path = match json_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.csv"),
        None => format!("{json_path}.csv"),
    };
    std::fs::write(&json_path, JsonExporter::to_string(&snapshot))?;
    std::fs::write(&csv_path, CsvExporter::to_string(&snapshot))?;
    println!(
        "\nwrote {} ({} counters, {} gauges, {} histograms) and {}",
        json_path,
        snapshot.counters.len(),
        snapshot.gauges.len(),
        snapshot.histograms.len(),
        csv_path
    );
    Ok(())
}
