//! Crash-safe training demonstration: kill a training run mid-epoch, then
//! resume it from the durable checkpoint store and verify the stitched run
//! reproduces an uninterrupted one bit-for-bit; then trip the divergence
//! sentry with an injected NaN and watch it roll back and recover.
//!
//! ```text
//! cargo run --release --example resumable_training
//! ```
//!
//! The checkpoint directory is left at `target/resumable-demo-ckpts` so it
//! can be inspected afterwards (CI uploads a listing of it).

use dronet::core::zoo;
use dronet::data::dataset::VehicleDataset;
use dronet::data::scene::SceneConfig;
use dronet::nn::weights;
use dronet::train::crash::{TrainFault, TrainFaultPlan};
use dronet::train::{CheckpointStore, LrSchedule, SentryConfig, TrainConfig, TrainError, Trainer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let input = 48usize;
    let dataset = VehicleDataset::generate(
        SceneConfig {
            width: input,
            height: input,
            min_vehicles: 2,
            max_vehicles: 5,
            ..SceneConfig::default()
        },
        24,
        0.75,
        7,
    );
    let config = TrainConfig {
        epochs: 6,
        batch_size: 4,
        schedule: LrSchedule::Constant { lr: 1.5e-3 },
        augment: true,
        seed: 5,
        ..TrainConfig::default()
    };
    let steps_per_epoch = dataset.train().len().div_ceil(config.batch_size);
    let total_steps = steps_per_epoch * config.epochs;
    println!(
        "dataset: {} train scenes, {} steps/epoch, {} steps total",
        dataset.train().len(),
        steps_per_epoch,
        total_steps
    );

    // --- 1. Reference: an uninterrupted run. ---
    let mut straight_net = zoo::micro_dronet(input, vec![(1.5, 1.5)])?;
    let straight = Trainer::new(config.clone()).train(&mut straight_net, &dataset)?;
    println!(
        "straight run: {} epochs, final loss {:.3}",
        straight.epoch_losses.len(),
        straight.epoch_losses.last().unwrap()
    );

    // --- 2. The same run, killed mid-epoch. ---
    let ckpt_dir = std::path::Path::new("target").join("resumable-demo-ckpts");
    std::fs::remove_dir_all(&ckpt_dir).ok();
    let store = CheckpointStore::open(&ckpt_dir)?;
    let kill_step = (total_steps / 2 + 1) as u64;
    let mut crashed_net = zoo::micro_dronet(input, vec![(1.5, 1.5)])?;
    let outcome = Trainer::new(config.clone()).train_resumable_with(
        &mut crashed_net,
        &dataset,
        &store,
        3, // checkpoint every 3 optimizer steps
        |_, _| {},
        |step, _| step != kill_step, // simulated power loss
    );
    match outcome {
        Err(TrainError::Aborted { step }) => println!("simulated crash at step {step}"),
        other => {
            let _ = other?;
            unreachable!("the crash hook always fires")
        }
    }

    // --- 3. "Reboot": a fresh process would do exactly this. ---
    let mut resumed_net = zoo::micro_dronet(input, vec![(1.5, 1.5)])?;
    let resumed =
        Trainer::new(config.clone()).train_resumable(&mut resumed_net, &dataset, &store, 3)?;
    println!(
        "resumed from step {} -> ran to step {} ({} checkpoints written)",
        resumed.resumed_from_step.unwrap(),
        resumed.batches,
        resumed.checkpoints_written
    );

    let mut a = Vec::new();
    weights::save(&straight_net, &mut a)?;
    let mut b = Vec::new();
    weights::save(&resumed_net, &mut b)?;
    assert_eq!(
        straight.epoch_losses, resumed.epoch_losses,
        "loss curves must stitch bit-identically"
    );
    assert_eq!(a, b, "final weights must match bit-for-bit");
    println!("crash/resume run is BIT-IDENTICAL to the straight run");

    // --- 4. Divergence sentry: inject a NaN loss and watch the recovery. ---
    let sentry_dir = std::path::Path::new("target").join("resumable-demo-sentry");
    std::fs::remove_dir_all(&sentry_dir).ok();
    let sentry_store = CheckpointStore::open(&sentry_dir)?;
    let mut sentry_net = zoo::micro_dronet(input, vec![(1.5, 1.5)])?;
    let report = Trainer::new(config)
        .with_sentry(SentryConfig {
            recover_after: 4,
            ..SentryConfig::default()
        })
        .with_fault_plan(TrainFaultPlan::once_at(8, TrainFault::NanLoss))
        .train_resumable(&mut sentry_net, &dataset, &sentry_store, 3)?;
    println!(
        "sentry run: {} trip(s), {} rollback(s), final lr scale {}, health {:?}",
        report.sentry_trips, report.rollbacks, report.final_lr_scale, report.final_health
    );
    for event in &report.events {
        if event.kind != "checkpoint" {
            println!(
                "  [{}] step {:>3}: {}",
                event.kind, event.step, event.detail
            );
        }
    }
    std::fs::remove_dir_all(&sentry_dir).ok();

    println!(
        "checkpoint store left at {} for inspection:",
        ckpt_dir.display()
    );
    for path in store.snapshots()? {
        println!(
            "  {} ({} bytes)",
            path.display(),
            std::fs::metadata(&path)?.len()
        );
    }
    Ok(())
}
