//! UAV patrol: the paper's Fig. 5 deployment scenario, end to end — a
//! simulated DJI-class flight over a road corridor, frame-by-frame
//! detection through the video pipeline, altitude-based size gating
//! (paper §III-D) and IoU tracking for the road-traffic-monitoring use
//! case that motivates the paper.
//!
//! Trains a MicroDroNet first (~1-2 minutes in release mode), then flies.
//!
//! ```text
//! cargo run --release --example uav_patrol
//! ```

use dronet::core::zoo;
use dronet::data::dataset::VehicleDataset;
use dronet::data::flight::{FlightSimulator, Waypoint, World, WorldConfig};
use dronet::data::scene::SceneConfig;
use dronet::detect::altitude::{AltitudeFilter, CameraModel};
use dronet::detect::pipeline::VideoPipeline;
use dronet::detect::track::{Tracker, TrackerConfig};
use dronet::detect::DetectorBuilder;
use dronet::eval::realeval::estimate_anchors;
use dronet::metrics::matching::match_detections;
use dronet::metrics::BBox;
use dronet::train::{LrSchedule, TrainConfig, Trainer, YoloLossConfig};

const INPUT: usize = 64;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Train the on-board detector on synthetic aerial scenes. ---
    let config = SceneConfig {
        width: INPUT,
        height: INPUT,
        min_vehicles: 2,
        max_vehicles: 6,
        vehicle_len_frac: (0.12, 0.22),
        occlusion_prob: 0.05,
        ..SceneConfig::default()
    };
    // The paper mixes satellite crops, web images and UAV footage; we mix
    // generator scenes with frames from a *training* flight over a
    // different world, so the detector sees the deployment domain.
    let mut scenes = VehicleDataset::generate(config, 70, 1.0, 42)
        .scenes()
        .to_vec();
    let training_world = World::generate(WorldConfig::default(), 77);
    let training_flight = FlightSimulator::new(
        training_world,
        vec![
            Waypoint {
                x: 30.0,
                y: 190.0,
                altitude_m: 23.0,
            },
            Waypoint {
                x: 370.0,
                y: 210.0,
                altitude_m: 28.0,
            },
        ],
        10.0,
        2.0,
        INPUT,
    );
    scenes.extend(training_flight.map(|f| f.into_scene()));
    let dataset = VehicleDataset::from_scenes(scenes, 0.94);
    println!(
        "training corpus: {} scenes/frames, {} vehicles",
        dataset.scenes().len(),
        dataset.total_vehicles()
    );
    let anchors = estimate_anchors(dataset.train(), INPUT / 8, 3);
    let mut net = zoo::micro_dronet_with_width(INPUT, anchors, 2)?;
    println!(
        "training the on-board detector ({} params)...",
        net.param_count()
    );
    Trainer::new(TrainConfig {
        epochs: 70,
        batch_size: 8,
        schedule: LrSchedule::Steps {
            lr: 1.2e-3,
            steps: vec![(600, 0.3)],
        },
        loss: YoloLossConfig {
            coord_scale: 2.5,
            ..YoloLossConfig::default()
        },
        augment: false,
        seed: 1,
        ..TrainConfig::default()
    })
    .train(&mut net, &dataset)?;

    // --- 2. Plan the flight over a persistent world. ---
    let world = World::generate(WorldConfig::default(), 11);
    println!(
        "world: {} vehicles over {:.0}x{:.0} m",
        world.vehicles().len(),
        world.config().size_m,
        world.config().size_m
    );
    // Altitude chosen so ground sampling puts vehicles at the scale the
    // detector was trained on (~10 px at 64-px frames): footprint =
    // 2*25*tan(30 deg) = 28.9 m -> a 4.5 m car spans ~10 px.
    let altitude = 25.0;
    let flight = FlightSimulator::new(
        world,
        vec![
            Waypoint {
                x: 30.0,
                y: 200.0,
                altitude_m: altitude,
            },
            Waypoint {
                x: 370.0,
                y: 200.0,
                altitude_m: altitude,
            },
        ],
        12.0, // m/s ground speed
        3.0,  // camera FPS
        INPUT,
    );
    println!(
        "flight plan: {} frames along the road corridor",
        flight.total_frames()
    );

    // --- 3. Detector with altitude gating (paper section III-D). ---
    let camera = CameraModel::new(60f32.to_radians(), INPUT);
    let filter = AltitudeFilter::new(camera, altitude, (3.5, 5.5), 0.45)?;
    let mut detector = DetectorBuilder::new(net)
        .confidence_threshold(0.4)
        .nms_threshold(0.45)
        .altitude_filter(filter)
        .build()?;

    // --- 4. Fly: pipeline + tracking + live accuracy accounting. ---
    let mut tracker = Tracker::new(TrackerConfig::default());
    let frames: Vec<_> = flight.collect();
    let tensors: Vec<_> = frames.iter().map(|f| f.image.to_tensor()).collect();
    let report = VideoPipeline::run(&mut detector, tensors)?;

    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (frame, result) in frames.iter().zip(&report.frames) {
        let dets: Vec<(BBox, f32)> = result
            .detections
            .iter()
            .map(|d| (d.bbox, d.score()))
            .collect();
        let gt: Vec<BBox> = frame.annotations.iter().map(|a| a.bbox).collect();
        let m = match_detections(&dets, &gt, 0.5);
        tp += m.true_positives;
        fp += m.false_positives;
        fn_ += m.false_negatives;
        tracker.update(&result.detections);
    }

    println!("\npatrol results:");
    println!("  frames processed      {}", report.processed());
    println!(
        "  mean latency          {:.1} ms",
        report.mean_latency().as_secs_f64() * 1e3
    );
    println!(
        "  sustained rate        {:.1} FPS (host hardware)",
        report.fps().0
    );
    println!(
        "  frames a 3-FPS camera would drop: {}",
        report.estimated_drops_at(3.0)
    );
    let sens = tp as f32 / (tp + fn_).max(1) as f32;
    let prec = tp as f32 / (tp + fp).max(1) as f32;
    println!("  in-flight sensitivity {sens:.3}");
    println!("  in-flight precision   {prec:.3}");
    println!(
        "  unique vehicles counted by the tracker: {}",
        tracker.total_count()
    );

    // --- 5. Project the same workload onto the paper's platforms. ---
    use dronet::platform::{Platform, PlatformId};
    let full = zoo::build(dronet::core::ModelId::DroNet, 512)?;
    println!("\nfull DroNet-512 projected on the paper's platforms:");
    for id in PlatformId::EVALUATION {
        let p = Platform::preset(id).project(&full);
        println!("  {:16} {:>6.2} FPS", id.name(), p.fps.0);
    }
    Ok(())
}
