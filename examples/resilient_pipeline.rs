//! Fault-tolerance tour: run the self-healing supervised pipeline through
//! a seeded chaos scenario — camera stalls, corrupt and NaN-poisoned
//! frames, transient detector errors, latency spikes and outright detector
//! panics — and watch it skip, retry, restart and degrade resolution
//! instead of dying.
//!
//! ```text
//! cargo run --release --example resilient_pipeline [seed]
//! ```

use dronet::core::zoo;
use dronet::data::scene::{SceneConfig, SceneGenerator};
use dronet::detect::supervisor::{Supervisor, SupervisorConfig};
use dronet::detect::{
    DegradeConfig, DegradeController, DetectStage, DetectorBuilder, FaultConfig, FaultPlan,
    FaultyDetector, FaultyFrameSource, IterSource,
};
use dronet::obs::Registry;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(42);

    // A chaos plan over 40 frames: every fault class enabled.
    let n = 40;
    let config = FaultConfig {
        stall_prob: 0.05,
        corrupt_prob: 0.08,
        nan_prob: 0.08,
        transient_prob: 0.08,
        slow_prob: 0.08,
        panic_prob: 0.04,
        stall: Duration::from_millis(10),
        slow: Duration::from_millis(30),
    };
    let plan = FaultPlan::generate(seed, n, &config);
    println!(
        "chaos plan (seed {seed}): {} faults over {n} frames",
        plan.injected()
    );

    // Synthetic camera frames at the degradation ladder's smallest rung.
    let input = 64;
    let frames: Vec<_> = (0..n)
        .map(|i| {
            SceneGenerator::new(SceneConfig::default(), 300 + i as u64)
                .generate()
                .image
                .resize(input, input)
                .to_tensor()
        })
        .collect();

    // Degradation ladder for MicroDroNet (multiples of 8 so the 3 maxpools
    // divide cleanly); the full-size zoo would use
    // `zoo::resolution_ladder()` (352..608) the same way.
    let ladder = vec![32, 48, 64];
    println!(
        "resolution ladder {ladder:?} (paper ladder: {:?})",
        zoo::resolution_ladder()
    );
    let controller = DegradeController::new(DegradeConfig {
        overload_windows: 1,
        calm_windows: 2,
        window_frames: 4,
        ..DegradeConfig::over_ladder(ladder)
    })?;

    // The stage factory: called at startup, after every crash or hang, and
    // at every resolution shift. The shared call counter keeps the fault
    // schedule marching forward across restarts.
    let calls = Arc::new(AtomicUsize::new(0));
    let stage_plan = plan.clone();
    let mut factory = move |size: usize| {
        println!("  [factory] building MicroDroNet at {size}x{size}");
        let net = zoo::micro_dronet(size, vec![(1.5, 1.5)])?;
        let detector = DetectorBuilder::new(net).build()?;
        let stage: Box<dyn DetectStage> = Box::new(FaultyDetector::with_counter(
            detector,
            stage_plan.clone(),
            Arc::clone(&calls),
        ));
        Ok(stage)
    };

    let obs = Registry::new();
    let supervisor = Supervisor::new(SupervisorConfig {
        source_timeout: Duration::from_millis(250),
        stage_timeout: Duration::from_millis(500),
        camera_fps: Some(30.0),
        recovery_frames: 4,
        initial_input: input,
        ..SupervisorConfig::default()
    })
    .observability(&obs);

    let source = FaultyFrameSource::new(IterSource::new(frames), plan);
    let report = supervisor.run_sync(source, &mut factory, Some(controller))?;

    println!("\n--- fault ledger ---");
    for fault in &report.faults {
        match fault.frame_index {
            Some(i) => println!("frame {i:>3} [{}] {}", fault.stage, fault.description),
            None => println!("      -- [{}] {}", fault.stage, fault.description),
        }
    }

    println!("\n--- supervised run report ---");
    println!("processed   : {}", report.processed());
    println!("skipped     : {}", report.skipped);
    println!("retries     : {}", report.retries);
    println!("restarts    : {}", report.restarts);
    println!("stalls      : {}", report.stalls);
    println!(
        "resolution  : {:?} ({} down / {} up)",
        report.resolution_history, report.downshifts, report.upshifts
    );
    println!("final health: {:?}", report.final_health);

    let snap = obs.snapshot();
    println!("\n--- telemetry ---");
    for name in [
        "supervisor.faults",
        "supervisor.retries",
        "supervisor.restarts",
        "supervisor.skipped",
        "pipeline.frames",
    ] {
        println!("{name:<20} {}", snap.counter(name).unwrap_or(0));
    }
    println!(
        "supervisor.health    {} (0 Healthy / 1 Degraded / 2 Halted)",
        snap.gauge("supervisor.health").unwrap_or(-1.0)
    );
    println!(
        "detect.input_size    {}",
        snap.gauge("detect.input_size").unwrap_or(-1.0)
    );
    Ok(())
}
