//! Serve detections over HTTP with dynamic micro-batching.
//!
//! Starts the zero-dependency detection server on an ephemeral port, fires
//! eight concurrent `POST /detect` requests (PPM frames in, JSON detections
//! out), shows how they coalesce into shared forward batches, scrapes the
//! live `/metrics` endpoint, and drains gracefully.
//!
//! ```text
//! cargo run --release --example serve_detections
//! ```

use dronet::detect::DetectorBuilder;
use dronet::obs::{Registry, Tracer};
use dronet::serve::{DetectorFactory, ServeConfig, Server};
use dronet_core::{zoo, ModelId};
use dronet_data::{ppm, Image};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    // `Connection: close` — the server defaults to keep-alive, and this
    // client reads to EOF.
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: example\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("write head");
    stream.write_all(body).expect("write body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("head terminator");
    let status: u16 = String::from_utf8_lossy(&response[..split])
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    (
        status,
        String::from_utf8_lossy(&response[split + 4..]).to_string(),
    )
}

fn main() {
    // One detector per worker, built from a factory so a crashed worker can
    // be replaced. DroNet at 64x64 keeps the example quick.
    let factory: DetectorFactory = Arc::new(|| {
        let net = zoo::build(ModelId::DroNet, 64)?;
        DetectorBuilder::new(net).confidence_threshold(0.3).build()
    });

    let obs = Registry::new();
    let tracer = Tracer::new();
    let config = ServeConfig {
        max_batch: 8,
        // Linger briefly so concurrent requests share one forward pass.
        max_wait: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let server = Server::start(factory, config, &obs, &tracer).expect("start server");
    let addr = server.addr();
    println!("serving on http://{addr}");
    println!("try: curl --data-binary @frame.ppm http://{addr}/detect\n");

    // Eight concurrent clients, each posting one PPM frame.
    let frame = {
        let img = Image::new(64, 64, [0.4, 0.5, 0.6]);
        let mut bytes = Vec::new();
        ppm::write(&img, &mut bytes).expect("encode PPM");
        bytes
    };
    let clients: Vec<_> = (0..8)
        .map(|_| {
            let body = frame.clone();
            thread::spawn(move || request(addr, "POST", "/detect", &body))
        })
        .collect();
    for (i, c) in clients.into_iter().enumerate() {
        let (status, body) = c.join().expect("client");
        let line = body.lines().next().unwrap_or_default();
        let snippet: String = line.chars().take(72).collect();
        println!("client {i}: {status} {snippet}");
    }

    // The batch-size histogram stores batch sizes as nanosecond samples:
    // max_ns is the largest coalesced batch any forward pass carried.
    let snap = obs.snapshot();
    if let Some(sizes) = snap.histogram("serve.batch_size") {
        println!(
            "\n{} forward batches, largest carried {} frames",
            sizes.count, sizes.max_ns
        );
    }

    let (status, metrics) = request(addr, "GET", "/metrics", &[]);
    println!("\n/metrics ({status}):");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("serve_") && !l.contains("bucket"))
        .take(10)
    {
        println!("  {line}");
    }

    let (status, health) = request(addr, "GET", "/healthz", &[]);
    println!("\n/healthz ({status}): {}", health.trim());
    println!("server health: {:?}", server.health());

    // The live debug surface: full registry JSON, allocator report, and a
    // short Chrome-trace capture ready for https://ui.perfetto.dev.
    let (status, vars) = request(addr, "GET", "/debug/vars", &[]);
    let snippet: String = vars.chars().take(96).collect();
    println!("/debug/vars ({status}): {snippet}...");
    let (status, alloc) = request(addr, "GET", "/debug/alloc", &[]);
    println!(
        "/debug/alloc ({status}): {}",
        alloc.lines().next().unwrap_or_default()
    );
    let (status, trace) = request(addr, "GET", "/debug/trace?ms=50", &[]);
    let events = dronet::obs::ChromeTrace::parse(&trace).expect("parse trace");
    println!(
        "/debug/trace?ms=50 ({status}): {} events, worker threads {:?}",
        events.len(),
        events
            .iter()
            .filter(|e| e.ph == 'M' && e.name == "thread_name")
            .filter_map(|e| e.arg_name.as_deref())
            .collect::<Vec<_>>()
    );

    let report = server.shutdown();
    println!("\ndrained cleanly: {}", report.drained);
}
