//! Reproduces Fig. 1 (baseline network structures) and Fig. 2 (the DroNet
//! architecture) as layer tables, together with the cost comparison that
//! motivates the paper's design choices.
//!
//! ```text
//! cargo run --release --example architectures
//! ```

use dronet::core::{zoo, ModelId};
use dronet::eval::figures;
use dronet::nn::cost::network_cost;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig. 1: baseline network structures (input 416) ===\n");
    for summary in figures::fig1_architectures() {
        println!("{summary}");
    }

    println!("=== Fig. 2: the proposed DroNet detector (input 512) ===\n");
    println!("{}", figures::fig2_dronet());

    println!("=== Cost comparison @416 (the design-space rationale) ===\n");
    println!(
        "{:<14} {:>10} {:>12} {:>14} {:>12}",
        "model", "GFLOPs", "params", "weights (MB)", "vs DroNet"
    );
    let dronet_flops = {
        let net = zoo::build(ModelId::DroNet, 416)?;
        network_cost(&net).total_flops()
    };
    for id in ModelId::ALL {
        let net = zoo::build(id, 416)?;
        let cost = network_cost(&net);
        println!(
            "{:<14} {:>10.3} {:>12} {:>14.2} {:>11.1}x",
            id.name(),
            cost.total_gflops(),
            cost.total_params(),
            cost.weight_bytes() / (1024.0 * 1024.0),
            cost.total_flops() / dronet_flops
        );
    }
    Ok(())
}
