//! Regenerates every table and figure of the paper's evaluation section
//! and verifies every quantitative claim. Pass `--markdown <path>` to also
//! write the Markdown report that backs `EXPERIMENTS.md`.
//!
//! Pass `--csv <dir>` to also export the tables as CSV files.
//!
//! ```text
//! cargo run --release --example reproduce_paper
//! cargo run --release --example reproduce_paper -- --markdown report.md
//! cargo run --release --example reproduce_paper -- --csv out/
//! ```

use dronet::eval::experiments;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = experiments::run_all();
    print!("{}", suite.to_text());

    let args: Vec<String> = std::env::args().collect();
    if let Some(pos) = args.iter().position(|a| a == "--markdown") {
        let path = args.get(pos + 1).map(String::as_str).unwrap_or("report.md");
        std::fs::write(path, suite.to_markdown())?;
        println!("\nmarkdown report written to {path}");
    }
    if let Some(pos) = args.iter().position(|a| a == "--csv") {
        let dir = args.get(pos + 1).map(String::as_str).unwrap_or("out");
        suite.write_csv_dir(dir)?;
        println!("\ncsv tables written to {dir}/");
    }
    Ok(())
}
