//! End-to-end training demonstration: the paper's full pipeline — data
//! collection, training with the YOLO loss, and evaluation — executed for
//! real on the synthetic aerial dataset with the scaled MicroDroNet.
//!
//! Trains in ~3-4 minutes in release mode; pass `--quick` for a ~1 minute
//! run at reduced quality. Saves the trained weights next to the target
//! directory and a few detection visualisations as PPM images.
//!
//! ```text
//! cargo run --release --example train_dronet            # full demo
//! cargo run --release --example train_dronet -- --quick # fast smoke run
//! ```

use dronet::core::zoo;
use dronet::data::dataset::VehicleDataset;
use dronet::data::scene::SceneConfig;
use dronet::data::{ppm, Image};
use dronet::detect::DetectorBuilder;
use dronet::eval::realeval::{estimate_anchors, evaluate_detector};
use dronet::nn::weights;
use dronet::train::{LrSchedule, TrainConfig, Trainer, YoloLossConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (input, width, epochs, scenes) = if quick {
        (64usize, 2usize, 60usize, 100usize)
    } else {
        (96, 2, 60, 160)
    };

    // 1. "Data collection": the synthetic stand-in for the paper's 350
    //    aerial images (see DESIGN.md section 4).
    let config = SceneConfig {
        width: input,
        height: input,
        min_vehicles: 2,
        max_vehicles: 6,
        vehicle_len_frac: (0.12, 0.22),
        occlusion_prob: 0.05,
        ..SceneConfig::default()
    };
    let dataset = VehicleDataset::generate(config, scenes, 0.8, 42);
    println!(
        "dataset: {} scenes ({} train / {} test), {} annotated vehicles",
        dataset.scenes().len(),
        dataset.train().len(),
        dataset.test().len(),
        dataset.total_vehicles()
    );

    // 2. Anchor estimation (YOLOv2 practice; the paper inherits VOC
    //    anchors, which do not fit our much smaller synthetic vehicles).
    let grid = input / 8;
    let anchors = estimate_anchors(dataset.train(), grid, 3);
    println!("estimated anchors (grid cells): {anchors:?}");

    // 3. Training with the YOLO loss and Darknet-style SGD.
    let mut net = zoo::micro_dronet_with_width(input, anchors, width)?;
    println!(
        "MicroDroNet: {} parameters, {:.1} MFLOPs per frame",
        net.param_count(),
        dronet::nn::cost::network_cost(&net).total_flops() / 1e6
    );
    let t0 = Instant::now();
    let train_config = TrainConfig {
        epochs,
        batch_size: 8,
        schedule: LrSchedule::Steps {
            lr: 1.2e-3,
            steps: vec![(700, 0.2), (1000, 0.5)],
        },
        loss: YoloLossConfig {
            coord_scale: 2.5,
            ..YoloLossConfig::default()
        },
        augment: false,
        seed: 1,
        ..TrainConfig::default()
    };
    Trainer::new(train_config).train_with(&mut net, &dataset, |epoch, loss| {
        if epoch % 10 == 0 {
            println!(
                "  epoch {epoch:>3}: loss {loss:>8.3}  ({:.0}s elapsed)",
                t0.elapsed().as_secs_f32()
            );
        }
    })?;
    println!("training finished in {:.0}s", t0.elapsed().as_secs_f32());

    // 4. Checkpoint the weights (Darknet-style binary format).
    let weights_path = std::env::temp_dir().join("microdronet.drnw");
    weights::save_to_path(&net, &weights_path)?;
    println!("weights saved to {}", weights_path.display());

    // 5. Evaluation: the paper's metrics, measured for real.
    let mut detector = DetectorBuilder::new(net)
        .confidence_threshold(0.4)
        .nms_threshold(0.45)
        .build()?;
    let outcome = evaluate_detector(&mut detector, dataset.test())?;
    println!(
        "\nmeasured on the held-out test split ({} scenes):",
        outcome.frames
    );
    println!("  sensitivity {:.3}", outcome.stats.sensitivity);
    println!("  precision   {:.3}", outcome.stats.precision);
    println!("  mean IoU    {:.3}", outcome.stats.mean_iou);
    println!("  accuracy    {:.3} (combined F1)", outcome.accuracy());
    println!("  host FPS    {:.1}", outcome.fps.0);

    // 6. Visualise detections vs ground truth on a few test scenes.
    let out_dir = std::env::temp_dir().join("dronet-detections");
    std::fs::create_dir_all(&out_dir)?;
    for (i, scene) in dataset.test().iter().take(3).enumerate() {
        let sample = VehicleDataset::sample(scene, input);
        let detections = detector.detect(&sample.image)?;
        let mut vis = Image::from_tensor(&sample.image);
        let (w, h) = (vis.width(), vis.height());
        for gt in &sample.boxes {
            let (x0, y0, x1, y1) = gt.to_pixels(w, h);
            vis.draw_rect_outline(x0, y0, x1, y1, [0.1, 0.9, 0.1]); // green = GT
        }
        for det in &detections {
            let (x0, y0, x1, y1) = det.bbox.to_pixels(w, h);
            vis.draw_rect_outline(x0, y0, x1, y1, [0.95, 0.2, 0.1]); // red = detection
        }
        let path = out_dir.join(format!("scene{i}.ppm"));
        ppm::write_to_path(&vis, &path)?;
        println!(
            "scene {i}: {} GT / {} detections -> {}",
            sample.boxes.len(),
            detections.len(),
            path.display()
        );
    }
    Ok(())
}
