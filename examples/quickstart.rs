//! Quickstart: build the paper's models, inspect their cost, project
//! their frame rates on the paper's three platforms, and run a frame
//! through the detection pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dronet::core::{zoo, ModelId};
use dronet::data::scene::{SceneConfig, SceneGenerator};
use dronet::detect::DetectorBuilder;
use dronet::nn::summary::NetworkSummary;
use dronet::platform::{Platform, PlatformId};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build DroNet at the paper's selected 512x512 input.
    let net = zoo::build(ModelId::DroNet, 512)?;
    let summary = NetworkSummary::of("DroNet", &net);
    println!("{summary}");

    // 2. Project its frame rate on the paper's platforms.
    println!("projected performance of DroNet-512:");
    for id in PlatformId::EVALUATION {
        let projection = Platform::preset(id).project(&net);
        println!(
            "  {:16} {:>8.1} ms/frame  {:>6.2} FPS",
            id.name(),
            projection.latency.as_secs_f64() * 1e3,
            projection.fps.0
        );
    }

    // 3. Compare against the Tiny-YOLO-VOC baseline on the Odroid.
    let voc = zoo::build(ModelId::TinyYoloVoc, 512)?;
    let odroid = Platform::preset(PlatformId::OdroidXu4);
    let speedup = odroid.project(&net).fps.0 / odroid.project(&voc).fps.0;
    println!("\nDroNet vs TinyYoloVoc on the Odroid-XU4: {speedup:.0}x faster");

    // 4. Run a synthetic aerial frame through the detector (untrained
    //    weights — see the train_dronet example for real detections).
    let scene = SceneGenerator::new(SceneConfig::default(), 7).generate();
    println!(
        "\nsynthetic scene: {:?} with {} annotated vehicles",
        scene.kind,
        scene.annotations.len()
    );
    let mut detector = DetectorBuilder::new(zoo::build(ModelId::DroNet, 256)?).build()?;
    let frame = scene.image.resize(256, 256).to_tensor();
    let detections = detector.detect(&frame)?;
    println!(
        "untrained DroNet-256 inference: {} raw detections in {:.1} ms",
        detections.len(),
        detector.fps_meter().mean_latency().as_secs_f64() * 1e3
    );
    Ok(())
}
