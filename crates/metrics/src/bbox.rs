use crate::{MetricsError, Result};
use std::fmt;

/// An axis-aligned bounding box in normalised centre format.
///
/// All coordinates are fractions of the image size: `(cx, cy)` is the box
/// centre and `(w, h)` its width/height, so a full-image box is
/// `BBox::new(0.5, 0.5, 1.0, 1.0)`. This is the coordinate system the YOLO
/// family (and thus the paper's networks) predicts in.
///
/// # Example
///
/// ```
/// use dronet_metrics::BBox;
///
/// let gt = BBox::new(0.50, 0.50, 0.20, 0.10);
/// let det = BBox::new(0.52, 0.50, 0.20, 0.10);
/// assert!(gt.iou(&det) > 0.7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BBox {
    /// Centre x, as a fraction of the image width.
    pub cx: f32,
    /// Centre y, as a fraction of the image height.
    pub cy: f32,
    /// Width, as a fraction of the image width.
    pub w: f32,
    /// Height, as a fraction of the image height.
    pub h: f32,
}

impl BBox {
    /// Creates a box from centre coordinates and size.
    pub fn new(cx: f32, cy: f32, w: f32, h: f32) -> Self {
        BBox { cx, cy, w, h }
    }

    /// Creates a box from corner coordinates `(x0, y0)`–`(x1, y1)`.
    pub fn from_corners(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        BBox {
            cx: (x0 + x1) / 2.0,
            cy: (y0 + y1) / 2.0,
            w: (x1 - x0).abs(),
            h: (y1 - y0).abs(),
        }
    }

    /// Validates that all coordinates are finite and the size non-negative.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InvalidBox`] otherwise.
    pub fn validate(&self) -> Result<()> {
        let finite =
            self.cx.is_finite() && self.cy.is_finite() && self.w.is_finite() && self.h.is_finite();
        if finite && self.w >= 0.0 && self.h >= 0.0 {
            Ok(())
        } else {
            Err(MetricsError::InvalidBox {
                values: (self.cx, self.cy, self.w, self.h),
            })
        }
    }

    /// Left edge.
    pub fn x0(&self) -> f32 {
        self.cx - self.w / 2.0
    }

    /// Top edge.
    pub fn y0(&self) -> f32 {
        self.cy - self.h / 2.0
    }

    /// Right edge.
    pub fn x1(&self) -> f32 {
        self.cx + self.w / 2.0
    }

    /// Bottom edge.
    pub fn y1(&self) -> f32 {
        self.cy + self.h / 2.0
    }

    /// Box area.
    pub fn area(&self) -> f32 {
        self.w * self.h
    }

    /// Intersection area with `other` (zero when disjoint).
    pub fn intersection(&self, other: &BBox) -> f32 {
        let iw = (self.x1().min(other.x1()) - self.x0().max(other.x0())).max(0.0);
        let ih = (self.y1().min(other.y1()) - self.y0().max(other.y0())).max(0.0);
        iw * ih
    }

    /// Intersection over union with `other`, in `[0, 1]`.
    ///
    /// Two zero-area boxes have IoU 0.
    pub fn iou(&self, other: &BBox) -> f32 {
        let inter = self.intersection(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            // Clamp: rounding in the corner arithmetic can push the ratio
            // a few ulps above 1 for identical boxes.
            (inter / union).min(1.0)
        }
    }

    /// Clamps the box to the unit square, preserving centre format.
    pub fn clamp_unit(&self) -> BBox {
        let x0 = self.x0().clamp(0.0, 1.0);
        let y0 = self.y0().clamp(0.0, 1.0);
        let x1 = self.x1().clamp(0.0, 1.0);
        let y1 = self.y1().clamp(0.0, 1.0);
        BBox::from_corners(x0, y0, x1, y1)
    }

    /// Scales normalised coordinates to pixel coordinates, returning
    /// `(x0, y0, x1, y1)` in pixels.
    pub fn to_pixels(&self, img_w: usize, img_h: usize) -> (f32, f32, f32, f32) {
        (
            self.x0() * img_w as f32,
            self.y0() * img_h as f32,
            self.x1() * img_w as f32,
            self.y1() * img_h as f32,
        )
    }

    /// Fraction of this box's area that lies inside the unit square.
    ///
    /// The paper annotates only vehicles with at least 50% of their body
    /// visible; the data generator uses this to apply the same rule.
    pub fn visible_fraction(&self) -> f32 {
        let unit = BBox::new(0.5, 0.5, 1.0, 1.0);
        let area = self.area();
        if area <= 0.0 {
            0.0
        } else {
            self.intersection(&unit) / area
        }
    }
}

impl fmt::Display for BBox {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({:.3}, {:.3}) {:.3}x{:.3}",
            self.cx, self.cy, self.w, self.h
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_roundtrip() {
        let b = BBox::from_corners(0.1, 0.2, 0.5, 0.6);
        assert!((b.cx - 0.3).abs() < 1e-6);
        assert!((b.cy - 0.4).abs() < 1e-6);
        assert!((b.w - 0.4).abs() < 1e-6);
        assert!((b.h - 0.4).abs() < 1e-6);
        assert!((b.x0() - 0.1).abs() < 1e-6);
        assert!((b.y1() - 0.6).abs() < 1e-6);
    }

    #[test]
    fn iou_identical_is_one() {
        let b = BBox::new(0.5, 0.5, 0.2, 0.3);
        assert!((b.iou(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.2, 0.2, 0.1, 0.1);
        let b = BBox::new(0.8, 0.8, 0.1, 0.1);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_half_overlap() {
        // Two unit-height boxes, second shifted by half a width:
        // intersection 0.5*A, union 1.5*A -> IoU = 1/3.
        let a = BBox::from_corners(0.0, 0.0, 0.2, 0.2);
        let b = BBox::from_corners(0.1, 0.0, 0.3, 0.2);
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn iou_is_symmetric() {
        let a = BBox::new(0.4, 0.4, 0.3, 0.2);
        let b = BBox::new(0.5, 0.45, 0.25, 0.3);
        assert!((a.iou(&b) - b.iou(&a)).abs() < 1e-7);
    }

    #[test]
    fn zero_area_boxes() {
        let z = BBox::new(0.5, 0.5, 0.0, 0.0);
        assert_eq!(z.iou(&z), 0.0);
        assert_eq!(z.visible_fraction(), 0.0);
    }

    #[test]
    fn validation() {
        assert!(BBox::new(0.5, 0.5, 0.1, 0.1).validate().is_ok());
        assert!(BBox::new(f32::NAN, 0.5, 0.1, 0.1).validate().is_err());
        assert!(BBox::new(0.5, 0.5, -0.1, 0.1).validate().is_err());
    }

    #[test]
    fn clamp_unit_truncates() {
        let b = BBox::new(0.0, 0.5, 0.4, 0.2); // extends to x = -0.2
        let c = b.clamp_unit();
        assert!(c.x0() >= 0.0);
        assert!((c.x1() - 0.2).abs() < 1e-6);
    }

    #[test]
    fn visible_fraction_at_edge() {
        // Box half outside the left edge: 50% visible.
        let b = BBox::new(0.0, 0.5, 0.2, 0.2);
        assert!((b.visible_fraction() - 0.5).abs() < 1e-6);
        // Fully inside: 100%.
        let inside = BBox::new(0.5, 0.5, 0.2, 0.2);
        assert!((inside.visible_fraction() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn to_pixels_scales() {
        let b = BBox::new(0.5, 0.5, 0.5, 0.25);
        let (x0, y0, x1, y1) = b.to_pixels(400, 200);
        assert_eq!((x0, y0, x1, y1), (100.0, 75.0, 300.0, 125.0));
    }
}
