//! Greedy IoU matching of detections against ground truth.
//!
//! Detections are matched to ground-truth boxes in descending confidence
//! order; a detection is a true positive when its best unmatched ground
//! truth overlaps with IoU at or above the threshold (the community
//! standard 0.5 by default, which is also what the paper's evaluation
//! implies). Each ground truth can be matched at most once — duplicate
//! detections of the same vehicle count as false positives.

use crate::{BBox, DetectionStats};

/// Default IoU threshold for counting a detection as a true positive.
pub const DEFAULT_IOU_THRESHOLD: f32 = 0.5;

/// Outcome of matching one frame's detections to its ground truth.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MatchResult {
    /// Number of true positives.
    pub true_positives: usize,
    /// Number of false positives (unmatched or duplicate detections).
    pub false_positives: usize,
    /// Number of false negatives (unmatched ground truths).
    pub false_negatives: usize,
    /// IoU of every true-positive match.
    pub matched_ious: Vec<f32>,
    /// For each detection (in the given order), the matched ground-truth
    /// index, or `None` for false positives.
    pub assignments: Vec<Option<usize>>,
}

impl MatchResult {
    /// Mean IoU over the true positives (0 when there are none).
    pub fn mean_iou(&self) -> f32 {
        if self.matched_ious.is_empty() {
            0.0
        } else {
            self.matched_ious.iter().sum::<f32>() / self.matched_ious.len() as f32
        }
    }

    /// Merges the counts of another frame into this one.
    pub fn merge(&mut self, other: &MatchResult) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.false_negatives += other.false_negatives;
        self.matched_ious.extend_from_slice(&other.matched_ious);
        // Assignments are per-frame and meaningless after a merge.
        self.assignments.clear();
    }

    /// Converts the accumulated counts into summary statistics.
    pub fn stats(&self) -> DetectionStats {
        DetectionStats::from_counts(
            self.true_positives,
            self.false_positives,
            self.false_negatives,
            self.mean_iou(),
        )
    }
}

/// Matches `detections` (boxes with confidence scores) against
/// `ground_truth` at the given IoU threshold.
///
/// Detections are sorted internally by descending confidence; ties keep the
/// input order. Pass [`DEFAULT_IOU_THRESHOLD`] unless the experiment says
/// otherwise.
pub fn match_detections(
    detections: &[(BBox, f32)],
    ground_truth: &[BBox],
    iou_threshold: f32,
) -> MatchResult {
    let mut order: Vec<usize> = (0..detections.len()).collect();
    order.sort_by(|&a, &b| detections[b].1.total_cmp(&detections[a].1));

    let mut gt_taken = vec![false; ground_truth.len()];
    let mut assignments = vec![None; detections.len()];
    let mut matched_ious = Vec::new();

    for &det_idx in &order {
        let (ref dbox, _) = detections[det_idx];
        let mut best: Option<(usize, f32)> = None;
        for (gt_idx, gt) in ground_truth.iter().enumerate() {
            if gt_taken[gt_idx] {
                continue;
            }
            let iou = dbox.iou(gt);
            if iou >= iou_threshold && best.is_none_or(|(_, b)| iou > b) {
                best = Some((gt_idx, iou));
            }
        }
        if let Some((gt_idx, iou)) = best {
            gt_taken[gt_idx] = true;
            assignments[det_idx] = Some(gt_idx);
            matched_ious.push(iou);
        }
    }

    let true_positives = matched_ious.len();
    MatchResult {
        true_positives,
        false_positives: detections.len() - true_positives,
        false_negatives: ground_truth.len() - true_positives,
        matched_ious,
        assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(cx: f32, cy: f32, s: f32) -> BBox {
        BBox::new(cx, cy, s, s)
    }

    #[test]
    fn perfect_detection() {
        let gt = vec![b(0.3, 0.3, 0.1), b(0.7, 0.7, 0.1)];
        let dets = vec![(b(0.3, 0.3, 0.1), 0.9), (b(0.7, 0.7, 0.1), 0.8)];
        let r = match_detections(&dets, &gt, 0.5);
        assert_eq!(r.true_positives, 2);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert!((r.mean_iou() - 1.0).abs() < 1e-6);
        assert_eq!(r.assignments, vec![Some(0), Some(1)]);
    }

    #[test]
    fn missed_vehicle_is_false_negative() {
        let gt = vec![b(0.3, 0.3, 0.1), b(0.7, 0.7, 0.1)];
        let dets = vec![(b(0.3, 0.3, 0.1), 0.9)];
        let r = match_detections(&dets, &gt, 0.5);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_negatives, 1);
        assert_eq!(r.false_positives, 0);
    }

    #[test]
    fn spurious_detection_is_false_positive() {
        let gt = vec![b(0.3, 0.3, 0.1)];
        let dets = vec![(b(0.3, 0.3, 0.1), 0.9), (b(0.9, 0.9, 0.05), 0.7)];
        let r = match_detections(&dets, &gt, 0.5);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1);
    }

    #[test]
    fn duplicate_detection_counts_once() {
        let gt = vec![b(0.5, 0.5, 0.2)];
        let dets = vec![
            (b(0.5, 0.5, 0.2), 0.95),
            (b(0.51, 0.5, 0.2), 0.90), // duplicate of the same vehicle
        ];
        let r = match_detections(&dets, &gt, 0.5);
        assert_eq!(r.true_positives, 1);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.assignments[0], Some(0));
        assert_eq!(r.assignments[1], None);
    }

    #[test]
    fn higher_confidence_matches_first() {
        // Lower-confidence detection overlaps better, but the higher one
        // claims the ground truth first (greedy by confidence).
        let gt = vec![b(0.5, 0.5, 0.2)];
        let dets = vec![(b(0.52, 0.5, 0.2), 0.6), (b(0.5, 0.5, 0.2), 0.9)];
        let r = match_detections(&dets, &gt, 0.5);
        assert_eq!(r.assignments[1], Some(0));
        assert_eq!(r.assignments[0], None);
    }

    #[test]
    fn below_threshold_does_not_match() {
        let gt = vec![b(0.5, 0.5, 0.1)];
        let dets = vec![(b(0.58, 0.5, 0.1), 0.9)]; // IoU well below 0.5
        let r = match_detections(&dets, &gt, 0.5);
        assert_eq!(r.true_positives, 0);
        assert_eq!(r.false_positives, 1);
        assert_eq!(r.false_negatives, 1);
    }

    #[test]
    fn empty_cases() {
        let r = match_detections(&[], &[], 0.5);
        assert_eq!(r.true_positives, 0);
        assert_eq!(r.mean_iou(), 0.0);

        let gt = vec![b(0.5, 0.5, 0.1)];
        let r = match_detections(&[], &gt, 0.5);
        assert_eq!(r.false_negatives, 1);

        let dets = vec![(b(0.5, 0.5, 0.1), 0.9)];
        let r = match_detections(&dets, &[], 0.5);
        assert_eq!(r.false_positives, 1);
    }

    #[test]
    fn merge_accumulates_frames() {
        let gt = vec![b(0.5, 0.5, 0.2)];
        let dets = vec![(b(0.5, 0.5, 0.2), 0.9)];
        let mut total = match_detections(&dets, &gt, 0.5);
        let frame2 = match_detections(&[], &gt, 0.5);
        total.merge(&frame2);
        assert_eq!(total.true_positives, 1);
        assert_eq!(total.false_negatives, 1);
        let stats = total.stats();
        assert!((stats.sensitivity - 0.5).abs() < 1e-6);
        assert!((stats.precision - 1.0).abs() < 1e-6);
    }
}
