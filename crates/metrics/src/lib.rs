//! # dronet-metrics
//!
//! Shared detection geometry and the evaluation metrics of the DroNet paper
//! (Section IV):
//!
//! * [`BBox`] — normalised centre-format bounding boxes with IoU,
//! * [`matching`] — greedy IoU matching of detections to ground truth,
//!   yielding true/false positives and false negatives,
//! * [`DetectionStats`] — Sensitivity (eq. 1), Precision (eq. 2), mean IoU,
//! * [`FpsMeter`] — frame-rate measurement,
//! * [`score`] — the weighted composite Score metric (eq. 3) with its
//!   simplex-constrained weight vector and the cross-model normalisation
//!   scheme of Fig. 3,
//! * [`report`] — plain-text/CSV table rendering used by the experiment
//!   harness.
//!
//! # Example
//!
//! ```
//! use dronet_metrics::{BBox, ScoreWeights};
//!
//! let a = BBox::new(0.5, 0.5, 0.2, 0.2);
//! let b = BBox::new(0.5, 0.5, 0.2, 0.2);
//! assert!((a.iou(&b) - 1.0).abs() < 1e-6);
//!
//! // The paper's weights: FPS 0.4, IoU/Sensitivity/Precision 0.2 each.
//! let w = ScoreWeights::paper();
//! assert!((w.fps - 0.4).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod error;
mod fps;
mod stats;

pub mod matching;
pub mod report;
pub mod score;

pub use bbox::BBox;
pub use error::MetricsError;
pub use fps::{Fps, FpsMeter};
pub use matching::{match_detections, MatchResult};
pub use score::{normalize_metrics, MetricVector, ScoreWeights};
pub use stats::DetectionStats;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, MetricsError>;
