//! The paper's composite Score metric (eq. 3).
//!
//! `Score(w) = w1*FPS + w2*IoU + w3*Sensitivity + w4*Precision`, subject to
//! `w ∈ [0,1]^4` and `Σw = 1`. The FPS term is first normalised across the
//! candidate set (divided by the maximum, the scheme Fig. 3 describes) so
//! all four terms live in `[0, 1]`.

use crate::{Fps, MetricsError, Result};

/// The weight vector of eq. 3, constrained to the probability simplex.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoreWeights {
    /// Weight on normalised FPS (`w1`).
    pub fps: f32,
    /// Weight on IoU (`w2`).
    pub iou: f32,
    /// Weight on sensitivity (`w3`).
    pub sensitivity: f32,
    /// Weight on precision (`w4`).
    pub precision: f32,
}

impl ScoreWeights {
    /// The paper's choice: FPS weighted 0.4, the three accuracy metrics 0.2
    /// each ("we prioritized FPS with a weight of 0.4 over the other three
    /// accuracy-related metrics, which were equally weighted with 0.2").
    pub fn paper() -> Self {
        ScoreWeights {
            fps: 0.4,
            iou: 0.2,
            sensitivity: 0.2,
            precision: 0.2,
        }
    }

    /// Creates a validated weight vector.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InvalidWeights`] when any weight is outside
    /// `[0, 1]` or the weights do not sum to 1 (within 1e-4).
    pub fn new(fps: f32, iou: f32, sensitivity: f32, precision: f32) -> Result<Self> {
        let w = ScoreWeights {
            fps,
            iou,
            sensitivity,
            precision,
        };
        w.validate()?;
        Ok(w)
    }

    /// Validates the simplex constraints of eq. 3.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::InvalidWeights`] on violation.
    pub fn validate(&self) -> Result<()> {
        let all = [self.fps, self.iou, self.sensitivity, self.precision];
        for w in all {
            if !w.is_finite() || !(0.0..=1.0).contains(&w) {
                return Err(MetricsError::InvalidWeights {
                    msg: format!("weight {w} outside [0, 1]"),
                });
            }
        }
        let sum: f32 = all.iter().sum();
        if (sum - 1.0).abs() > 1e-4 {
            return Err(MetricsError::InvalidWeights {
                msg: format!("weights sum to {sum}, expected 1"),
            });
        }
        Ok(())
    }
}

impl Default for ScoreWeights {
    fn default() -> Self {
        ScoreWeights::paper()
    }
}

/// The four per-model metrics that enter the Score.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricVector {
    /// Frame rate (raw, un-normalised).
    pub fps: f64,
    /// Mean IoU of true positives, in `[0, 1]`.
    pub iou: f32,
    /// Sensitivity, in `[0, 1]`.
    pub sensitivity: f32,
    /// Precision, in `[0, 1]`.
    pub precision: f32,
}

impl MetricVector {
    /// Bundles metrics from parts.
    pub fn new(fps: Fps, iou: f32, sensitivity: f32, precision: f32) -> Self {
        MetricVector {
            fps: fps.0,
            iou,
            sensitivity,
            precision,
        }
    }

    /// Computes the composite Score for a **normalised** metric vector
    /// (every component already in `[0, 1]`).
    pub fn score(&self, w: &ScoreWeights) -> f64 {
        f64::from(w.fps) * self.fps
            + f64::from(w.iou) * f64::from(self.iou)
            + f64::from(w.sensitivity) * f64::from(self.sensitivity)
            + f64::from(w.precision) * f64::from(self.precision)
    }
}

/// Normalises a set of metric vectors the way the paper's Fig. 3 does:
/// every metric is divided by its maximum across the set, so all values lie
/// in `[0, 1]` and the best model per metric scores 1.
///
/// Returns an empty vector for empty input. Metrics whose maximum is zero
/// are left at zero.
pub fn normalize_metrics(metrics: &[MetricVector]) -> Vec<MetricVector> {
    if metrics.is_empty() {
        return Vec::new();
    }
    let max_fps = metrics.iter().map(|m| m.fps).fold(0.0, f64::max);
    let max_iou = metrics.iter().map(|m| m.iou).fold(0.0, f32::max);
    let max_sens = metrics.iter().map(|m| m.sensitivity).fold(0.0, f32::max);
    let max_prec = metrics.iter().map(|m| m.precision).fold(0.0, f32::max);
    let div64 = |v: f64, m: f64| if m > 0.0 { v / m } else { 0.0 };
    let div32 = |v: f32, m: f32| if m > 0.0 { v / m } else { 0.0 };
    metrics
        .iter()
        .map(|m| MetricVector {
            fps: div64(m.fps, max_fps),
            iou: div32(m.iou, max_iou),
            sensitivity: div32(m.sensitivity, max_sens),
            precision: div32(m.precision, max_prec),
        })
        .collect()
}

/// Normalises and scores a set of candidates in one call, returning the
/// per-candidate scores in input order.
pub fn score_candidates(metrics: &[MetricVector], w: &ScoreWeights) -> Vec<f64> {
    normalize_metrics(metrics)
        .iter()
        .map(|m| m.score(w))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_are_valid_and_prioritise_fps() {
        let w = ScoreWeights::paper();
        w.validate().unwrap();
        assert!(w.fps > w.iou);
        assert_eq!(w.iou, w.sensitivity);
        assert_eq!(w.sensitivity, w.precision);
        assert_eq!(ScoreWeights::default(), w);
    }

    #[test]
    fn invalid_weights_are_rejected() {
        assert!(ScoreWeights::new(0.5, 0.5, 0.5, 0.5).is_err()); // sums to 2
        assert!(ScoreWeights::new(-0.1, 0.5, 0.3, 0.3).is_err());
        assert!(ScoreWeights::new(1.2, -0.2, 0.0, 0.0).is_err());
        assert!(ScoreWeights::new(f32::NAN, 0.4, 0.3, 0.3).is_err());
        assert!(ScoreWeights::new(0.25, 0.25, 0.25, 0.25).is_ok());
    }

    #[test]
    fn normalisation_maps_best_to_one() {
        let metrics = vec![
            MetricVector {
                fps: 20.0,
                iou: 0.5,
                sensitivity: 0.9,
                precision: 0.8,
            },
            MetricVector {
                fps: 5.0,
                iou: 0.75,
                sensitivity: 0.95,
                precision: 0.9,
            },
        ];
        let n = normalize_metrics(&metrics);
        assert!((n[0].fps - 1.0).abs() < 1e-9);
        assert!((n[1].fps - 0.25).abs() < 1e-9);
        assert!((n[1].iou - 1.0).abs() < 1e-6);
        assert!((n[0].iou - 0.5 / 0.75).abs() < 1e-6);
    }

    #[test]
    fn zero_metrics_stay_zero() {
        let metrics = vec![MetricVector::default(), MetricVector::default()];
        let n = normalize_metrics(&metrics);
        assert_eq!(n[0], MetricVector::default());
        assert!(normalize_metrics(&[]).is_empty());
    }

    #[test]
    fn score_is_convex_combination() {
        // A fully-normalised perfect model scores exactly 1.
        let perfect = MetricVector {
            fps: 1.0,
            iou: 1.0,
            sensitivity: 1.0,
            precision: 1.0,
        };
        assert!((perfect.score(&ScoreWeights::paper()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fast_model_wins_with_paper_weights() {
        // Mirrors the paper's conclusion: a 30x faster model with slightly
        // worse accuracy outranks the accurate-but-slow baseline.
        let fast = MetricVector {
            fps: 18.0,
            iou: 0.62,
            sensitivity: 0.93,
            precision: 0.89,
        };
        let slow = MetricVector {
            fps: 0.6,
            iou: 0.70,
            sensitivity: 0.95,
            precision: 0.95,
        };
        let scores = score_candidates(&[fast, slow], &ScoreWeights::paper());
        assert!(
            scores[0] > scores[1],
            "fast {} vs slow {}",
            scores[0],
            scores[1]
        );
    }

    #[test]
    fn accuracy_weights_flip_the_ranking() {
        let fast = MetricVector {
            fps: 18.0,
            iou: 0.45,
            sensitivity: 0.5,
            precision: 0.6,
        };
        let slow = MetricVector {
            fps: 0.6,
            iou: 0.70,
            sensitivity: 0.95,
            precision: 0.95,
        };
        let w = ScoreWeights::new(0.0, 0.34, 0.33, 0.33).unwrap();
        let scores = score_candidates(&[fast, slow], &w);
        assert!(scores[1] > scores[0]);
    }
}
