use std::fmt;
use std::time::{Duration, Instant};

/// A frames-per-second value.
///
/// Newtype so FPS numbers cannot be confused with other `f64` metrics when
/// they flow through the scoring code.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Fps(pub f64);

impl Fps {
    /// FPS corresponding to a per-frame latency.
    pub fn from_latency(latency: Duration) -> Self {
        let secs = latency.as_secs_f64();
        if secs > 0.0 {
            Fps(1.0 / secs)
        } else {
            Fps(f64::INFINITY)
        }
    }

    /// Per-frame latency corresponding to this rate.
    pub fn to_latency(self) -> Duration {
        if self.0 > 0.0 {
            Duration::from_secs_f64(1.0 / self.0)
        } else {
            Duration::MAX
        }
    }
}

impl fmt::Display for Fps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} FPS", self.0)
    }
}

impl From<f64> for Fps {
    fn from(v: f64) -> Self {
        Fps(v)
    }
}

/// Measures sustained frame rate over a stream of processed frames.
///
/// # Example
///
/// ```
/// use dronet_metrics::FpsMeter;
/// use std::time::Duration;
///
/// let mut meter = FpsMeter::new();
/// meter.record(Duration::from_millis(100));
/// meter.record(Duration::from_millis(100));
/// assert!((meter.fps().0 - 10.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FpsMeter {
    frame_times: Vec<Duration>,
    started: Option<Instant>,
}

impl FpsMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        FpsMeter::default()
    }

    /// Marks the start of a frame; pair with [`FpsMeter::stop`].
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Marks the end of a frame started with [`FpsMeter::start`], recording
    /// the elapsed time. Does nothing when `start` was not called.
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.frame_times.push(t0.elapsed());
        }
    }

    /// Records an externally measured frame latency.
    pub fn record(&mut self, latency: Duration) {
        self.frame_times.push(latency);
    }

    /// Number of recorded frames.
    pub fn frames(&self) -> usize {
        self.frame_times.len()
    }

    /// Mean per-frame latency (zero when no frames are recorded).
    pub fn mean_latency(&self) -> Duration {
        if self.frame_times.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.frame_times.iter().sum();
        total / self.frame_times.len() as u32
    }

    /// Latency at the given percentile (e.g. `0.99`), zero when empty.
    ///
    /// `p` is clamped into `[0, 1]` (NaN clamps to 0), so callers feeding
    /// computed fractions never panic or index out of bounds.
    pub fn percentile_latency(&self, p: f64) -> Duration {
        if self.frame_times.is_empty() {
            return Duration::ZERO;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 1.0) };
        let mut sorted = self.frame_times.clone();
        sorted.sort();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Sustained frame rate implied by the mean latency.
    pub fn fps(&self) -> Fps {
        Fps::from_latency(self.mean_latency())
    }

    /// Clears all recorded frames.
    pub fn reset(&mut self) {
        self.frame_times.clear();
        self.started = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fps_from_latency() {
        assert!((Fps::from_latency(Duration::from_millis(50)).0 - 20.0).abs() < 1e-9);
        assert!((Fps(4.0).to_latency().as_secs_f64() - 0.25).abs() < 1e-9);
        assert_eq!(Fps::from_latency(Duration::ZERO).0, f64::INFINITY);
    }

    #[test]
    fn meter_statistics() {
        let mut m = FpsMeter::new();
        for ms in [10u64, 20, 30, 40] {
            m.record(Duration::from_millis(ms));
        }
        assert_eq!(m.frames(), 4);
        assert_eq!(m.mean_latency(), Duration::from_millis(25));
        assert!((m.fps().0 - 40.0).abs() < 0.5);
        assert_eq!(m.percentile_latency(1.0), Duration::from_millis(40));
        assert_eq!(m.percentile_latency(0.0), Duration::from_millis(10));
        m.reset();
        assert_eq!(m.frames(), 0);
        assert_eq!(m.mean_latency(), Duration::ZERO);
    }

    #[test]
    fn start_stop_measures_elapsed() {
        let mut m = FpsMeter::new();
        m.start();
        std::thread::sleep(Duration::from_millis(5));
        m.stop();
        assert_eq!(m.frames(), 1);
        assert!(m.mean_latency() >= Duration::from_millis(4));
        // stop without start is a no-op
        m.stop();
        assert_eq!(m.frames(), 1);
    }

    #[test]
    fn out_of_range_percentiles_clamp() {
        assert_eq!(FpsMeter::new().percentile_latency(1.5), Duration::ZERO);
        assert_eq!(FpsMeter::new().percentile_latency(0.5), Duration::ZERO);
        let mut m = FpsMeter::new();
        for ms in [10u64, 20, 30] {
            m.record(Duration::from_millis(ms));
        }
        assert_eq!(m.percentile_latency(1.5), Duration::from_millis(30));
        assert_eq!(m.percentile_latency(-0.3), Duration::from_millis(10));
        assert_eq!(m.percentile_latency(f64::NAN), Duration::from_millis(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Fps(9.5).to_string(), "9.50 FPS");
    }
}
