use std::error::Error;
use std::fmt;

/// Errors produced by metric construction and aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsError {
    /// A bounding box had a non-finite or negative-size coordinate.
    InvalidBox {
        /// Offending values `(cx, cy, w, h)`.
        values: (f32, f32, f32, f32),
    },
    /// Score weights were invalid (negative, non-finite, or not summing to
    /// one).
    InvalidWeights {
        /// Description of the problem.
        msg: String,
    },
    /// A metric aggregation received inconsistent input lengths.
    LengthMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        actual: usize,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::InvalidBox { values } => {
                write!(
                    f,
                    "invalid bounding box (cx={}, cy={}, w={}, h={})",
                    values.0, values.1, values.2, values.3
                )
            }
            MetricsError::InvalidWeights { msg } => write!(f, "invalid score weights: {msg}"),
            MetricsError::LengthMismatch {
                op,
                expected,
                actual,
            } => write!(f, "{op}: expected {expected} entries, got {actual}"),
        }
    }
}

impl Error for MetricsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<MetricsError>();
    }

    #[test]
    fn display_is_informative() {
        let e = MetricsError::InvalidWeights {
            msg: "weights sum to 0.9".into(),
        };
        assert!(e.to_string().contains("0.9"));
    }
}
