//! Plain-text and CSV table rendering for experiment results.
//!
//! The experiment harness emits every reproduced figure/table both as an
//! aligned text table (for terminals and `EXPERIMENTS.md`) and as CSV (for
//! downstream plotting).

use std::fmt::Write as _;

/// A simple column-aligned table with a title.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells, long rows are
    /// truncated to the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders as an aligned text table.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header_line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header_line.join("  "));
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes or newlines).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| csv_escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter()
                    .map(|c| csv_escape(c))
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        out
    }
}

fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats a float with 3 decimal places (the precision the paper reports).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a ratio like `30.2x`.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_is_aligned() {
        let mut t = Table::new("demo", &["model", "fps"]);
        t.push_row(vec!["DroNet".into(), "18.0".into()]);
        t.push_row(vec!["TinyYoloVoc".into(), "0.6".into()]);
        let text = t.to_text();
        assert!(text.contains("== demo =="));
        assert!(text.contains("DroNet"));
        let lines: Vec<&str> = text.lines().collect();
        // Header and row lines all share the same width.
        assert_eq!(lines[1].len(), lines[3].len());
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("x", &["a", "b", "c"]);
        t.push_row(vec!["1".into()]);
        assert!(t.to_csv().lines().nth(1).unwrap().contains("1,,"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("x", &["name"]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt3(0.12345), "0.123");
        assert_eq!(fmt_ratio(29.96), "30.0x");
    }
}
