use std::fmt;

/// Aggregate detection quality statistics — the accuracy side of the
/// paper's metric set.
///
/// * Sensitivity (eq. 1): `TP / (TP + FN)` — how many real vehicles were
///   found.
/// * Precision (eq. 2): `TP / (TP + FP)` — how many reported detections
///   were real.
/// * `mean_iou`: average IoU of the true positives (localisation quality).
/// * `f1` / `accuracy`: the harmonic mean of sensitivity and precision; the
///   paper's informal "~95% accuracy" statements correspond to this
///   combined detection accuracy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectionStats {
    /// True-positive count.
    pub true_positives: usize,
    /// False-positive count.
    pub false_positives: usize,
    /// False-negative count.
    pub false_negatives: usize,
    /// Sensitivity / recall in `[0, 1]`.
    pub sensitivity: f32,
    /// Precision in `[0, 1]`.
    pub precision: f32,
    /// Mean IoU of true positives in `[0, 1]`.
    pub mean_iou: f32,
}

impl DetectionStats {
    /// Builds statistics from raw counts.
    ///
    /// Degenerate denominators yield 0 (no ground truth and no detections
    /// scores 0 sensitivity/precision rather than NaN).
    pub fn from_counts(tp: usize, fp: usize, fn_: usize, mean_iou: f32) -> Self {
        let sens_den = tp + fn_;
        let prec_den = tp + fp;
        DetectionStats {
            true_positives: tp,
            false_positives: fp,
            false_negatives: fn_,
            sensitivity: if sens_den == 0 {
                0.0
            } else {
                tp as f32 / sens_den as f32
            },
            precision: if prec_den == 0 {
                0.0
            } else {
                tp as f32 / prec_den as f32
            },
            mean_iou,
        }
    }

    /// Harmonic mean of sensitivity and precision (F1); the combined
    /// "detection accuracy" figure the paper quotes as ~95%.
    pub fn f1(&self) -> f32 {
        let s = self.sensitivity;
        let p = self.precision;
        if s + p <= 0.0 {
            0.0
        } else {
            2.0 * s * p / (s + p)
        }
    }

    /// Alias for [`DetectionStats::f1`] using the paper's vocabulary.
    pub fn accuracy(&self) -> f32 {
        self.f1()
    }
}

impl fmt::Display for DetectionStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sens {:.3} prec {:.3} iou {:.3} (tp {} fp {} fn {})",
            self.sensitivity,
            self.precision,
            self.mean_iou,
            self.true_positives,
            self.false_positives,
            self.false_negatives
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sensitivity_and_precision_formulas() {
        let s = DetectionStats::from_counts(8, 2, 2, 0.7);
        assert!((s.sensitivity - 0.8).abs() < 1e-6);
        assert!((s.precision - 0.8).abs() < 1e-6);
        assert!((s.f1() - 0.8).abs() < 1e-6);
        assert_eq!(s.accuracy(), s.f1());
    }

    #[test]
    fn degenerate_counts_do_not_nan() {
        let s = DetectionStats::from_counts(0, 0, 0, 0.0);
        assert_eq!(s.sensitivity, 0.0);
        assert_eq!(s.precision, 0.0);
        assert_eq!(s.f1(), 0.0);
    }

    #[test]
    fn asymmetric_counts() {
        // 9 found of 10 vehicles, 3 spurious.
        let s = DetectionStats::from_counts(9, 3, 1, 0.65);
        assert!((s.sensitivity - 0.9).abs() < 1e-6);
        assert!((s.precision - 0.75).abs() < 1e-6);
        let f1 = 2.0 * 0.9 * 0.75 / (0.9 + 0.75);
        assert!((s.f1() - f1).abs() < 1e-6);
    }

    #[test]
    fn display_mentions_counts() {
        let s = DetectionStats::from_counts(1, 2, 3, 0.5);
        let text = s.to_string();
        assert!(text.contains("tp 1"));
        assert!(text.contains("fp 2"));
        assert!(text.contains("fn 3"));
    }
}
