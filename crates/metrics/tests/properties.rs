//! Property-based tests for detection geometry and scoring invariants.

use dronet_metrics::matching::match_detections;
use dronet_metrics::score::{normalize_metrics, score_candidates};
use dronet_metrics::{BBox, DetectionStats, MetricVector, ScoreWeights};
use proptest::prelude::*;

fn arb_box() -> impl Strategy<Value = BBox> {
    (0.0f32..1.0, 0.0f32..1.0, 0.01f32..0.5, 0.01f32..0.5)
        .prop_map(|(cx, cy, w, h)| BBox::new(cx, cy, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// IoU is symmetric, bounded in [0,1], and 1 exactly for self-overlap.
    #[test]
    fn iou_axioms(a in arb_box(), b in arb_box()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-6);
        prop_assert!((0.0..=1.0).contains(&ab));
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-5);
    }

    /// Intersection is never larger than either area.
    #[test]
    fn intersection_bounded_by_areas(a in arb_box(), b in arb_box()) {
        let inter = a.intersection(&b);
        prop_assert!(inter <= a.area() + 1e-5);
        prop_assert!(inter <= b.area() + 1e-5);
        prop_assert!(inter >= 0.0);
    }

    /// Corner round-trips preserve the box.
    #[test]
    fn corner_roundtrip(a in arb_box()) {
        let b = BBox::from_corners(a.x0(), a.y0(), a.x1(), a.y1());
        prop_assert!((a.cx - b.cx).abs() < 1e-5);
        prop_assert!((a.cy - b.cy).abs() < 1e-5);
        prop_assert!((a.w - b.w).abs() < 1e-5);
        prop_assert!((a.h - b.h).abs() < 1e-5);
    }

    /// Clamping to the unit square never grows the box and always lands
    /// inside the unit square.
    #[test]
    fn clamp_unit_shrinks(a in arb_box()) {
        let c = a.clamp_unit();
        prop_assert!(c.area() <= a.area() + 1e-5);
        prop_assert!(c.x0() >= -1e-5 && c.x1() <= 1.0 + 1e-5);
        prop_assert!(c.y0() >= -1e-5 && c.y1() <= 1.0 + 1e-5);
    }

    /// Matching conserves counts: TP+FP = detections, TP+FN = truths.
    #[test]
    fn matching_conserves_counts(
        dets in prop::collection::vec((arb_box(), 0.0f32..1.0), 0..12),
        gt in prop::collection::vec(arb_box(), 0..8),
    ) {
        let m = match_detections(&dets, &gt, 0.5);
        prop_assert_eq!(m.true_positives + m.false_positives, dets.len());
        prop_assert_eq!(m.true_positives + m.false_negatives, gt.len());
        prop_assert_eq!(m.matched_ious.len(), m.true_positives);
        for iou in &m.matched_ious {
            prop_assert!(*iou >= 0.5);
        }
    }

    /// Lowering the IoU threshold never reduces true positives.
    #[test]
    fn threshold_monotonicity(
        dets in prop::collection::vec((arb_box(), 0.0f32..1.0), 0..10),
        gt in prop::collection::vec(arb_box(), 0..6),
    ) {
        let strict = match_detections(&dets, &gt, 0.7);
        let loose = match_detections(&dets, &gt, 0.3);
        prop_assert!(loose.true_positives >= strict.true_positives);
    }

    /// Stats formulas stay within [0,1] and F1 is between min and max of
    /// sensitivity/precision.
    #[test]
    fn stats_bounds(tp in 0usize..100, fp in 0usize..100, fn_ in 0usize..100) {
        let s = DetectionStats::from_counts(tp, fp, fn_, 0.5);
        prop_assert!((0.0..=1.0).contains(&s.sensitivity));
        prop_assert!((0.0..=1.0).contains(&s.precision));
        let f1 = s.f1();
        prop_assert!(f1 <= s.sensitivity.max(s.precision) + 1e-6);
        prop_assert!(f1 + 1e-6 >= 0.0);
    }

    /// Normalisation is idempotent and keeps ordering within each metric.
    #[test]
    fn normalisation_idempotent(
        ms in prop::collection::vec(
            (0.1f64..100.0, 0.0f32..1.0, 0.0f32..1.0, 0.0f32..1.0),
            1..10
        )
    ) {
        let metrics: Vec<MetricVector> = ms
            .iter()
            .map(|&(fps, iou, s, p)| MetricVector { fps, iou, sensitivity: s, precision: p })
            .collect();
        let once = normalize_metrics(&metrics);
        let twice = normalize_metrics(&once);
        for (a, b) in once.iter().zip(&twice) {
            prop_assert!((a.fps - b.fps).abs() < 1e-9);
            prop_assert!((a.iou - b.iou).abs() < 1e-6);
        }
        // Ordering preserved.
        for i in 0..metrics.len() {
            for j in 0..metrics.len() {
                if metrics[i].fps < metrics[j].fps {
                    prop_assert!(once[i].fps <= once[j].fps + 1e-12);
                }
            }
        }
    }

    /// Scores are monotone: improving any metric never lowers the score.
    #[test]
    fn score_monotone(
        fps in 1.0f64..50.0,
        iou in 0.1f32..0.9,
        sens in 0.1f32..0.9,
        prec in 0.1f32..0.9,
    ) {
        let w = ScoreWeights::paper();
        let base = MetricVector { fps, iou, sensitivity: sens, precision: prec };
        let better = MetricVector { fps: fps * 1.1, iou: (iou + 0.05).min(1.0),
            sensitivity: sens, precision: prec };
        let other = MetricVector { fps: fps * 0.5, iou, sensitivity: sens, precision: prec };
        let scores = score_candidates(&[base, better, other], &w);
        prop_assert!(scores[1] >= scores[0] - 1e-9);
        prop_assert!(scores[2] <= scores[0] + 1e-9);
    }
}
