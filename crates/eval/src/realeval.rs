//! Measured (not modelled) evaluation: run a real detector over synthetic
//! scenes and compute the paper's metrics with actual box matching.
//!
//! This closes the loop the response model abstracts: the end-to-end
//! examples and integration tests *train* our networks on the synthetic
//! dataset with our own loss/optimizer and then measure IoU, sensitivity
//! and precision here — real numbers from real inference.

use dronet_data::dataset::VehicleDataset;
use dronet_data::scene::Scene;
use dronet_detect::{DetectError, Detector};
use dronet_metrics::matching::{match_detections, MatchResult, DEFAULT_IOU_THRESHOLD};
use dronet_metrics::{BBox, DetectionStats, Fps};

/// Outcome of evaluating a detector over a scene set.
#[derive(Debug, Clone)]
pub struct EvalOutcome {
    /// Aggregate detection statistics (sensitivity, precision, mean IoU).
    pub stats: DetectionStats,
    /// Measured inference rate over the evaluation (host hardware).
    pub fps: Fps,
    /// Number of frames evaluated.
    pub frames: usize,
}

impl EvalOutcome {
    /// Combined detection accuracy (F1), the paper's "accuracy" figure.
    pub fn accuracy(&self) -> f32 {
        self.stats.f1()
    }
}

/// Evaluates `detector` on `scenes`, resizing each scene to the detector's
/// input resolution.
///
/// # Errors
///
/// Propagates detector errors.
pub fn evaluate_detector(
    detector: &mut Detector,
    scenes: &[Scene],
) -> Result<EvalOutcome, DetectError> {
    let (_, in_h, _) = detector.input_chw();
    detector.reset_fps();
    let mut total = MatchResult::default();
    for scene in scenes {
        let sample = VehicleDataset::sample(scene, in_h);
        let detections = detector.detect(&sample.image)?;
        let dets: Vec<(BBox, f32)> = detections.iter().map(|d| (d.bbox, d.score())).collect();
        let frame = match_detections(&dets, &sample.boxes, DEFAULT_IOU_THRESHOLD);
        total.merge(&frame);
    }
    Ok(EvalOutcome {
        stats: total.stats(),
        fps: detector.fps_meter().fps(),
        frames: scenes.len(),
    })
}

/// Estimates `k` anchor shapes (in output-grid cells) from a dataset's
/// ground-truth boxes with seeded k-means over (w, h).
///
/// The paper inherits Tiny-YOLO's VOC anchors; for the synthetic dataset's
/// much smaller top-view vehicles, fitting anchors to the data (standard
/// YOLOv2 practice) makes the micro-training examples converge far faster.
///
/// # Panics
///
/// Panics when `k` is zero or the dataset has no annotations.
pub fn estimate_anchors(scenes: &[Scene], grid: usize, k: usize) -> Vec<(f32, f32)> {
    assert!(k > 0, "need at least one anchor");
    let boxes: Vec<(f32, f32)> = scenes
        .iter()
        .flat_map(|s| s.annotations.iter())
        .map(|a| (a.bbox.w * grid as f32, a.bbox.h * grid as f32))
        .collect();
    assert!(!boxes.is_empty(), "no annotations to estimate anchors from");

    // Initialise centroids spread across the sorted size distribution.
    let mut sorted = boxes.clone();
    sorted.sort_by(|a, b| (a.0 * a.1).total_cmp(&(b.0 * b.1)));
    let mut centroids: Vec<(f32, f32)> = (0..k)
        .map(|i| sorted[(i * (sorted.len() - 1)) / k.max(1)])
        .collect();

    for _ in 0..20 {
        let mut sums = vec![(0.0f32, 0.0f32, 0usize); k];
        for &(w, h) in &boxes {
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for (i, &(cw, ch)) in centroids.iter().enumerate() {
                // 1 - shape IoU, the YOLOv2 anchor distance.
                let inter = w.min(cw) * h.min(ch);
                let union = w * h + cw * ch - inter;
                let d = 1.0 - if union > 0.0 { inter / union } else { 0.0 };
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            sums[best].0 += w;
            sums[best].1 += h;
            sums[best].2 += 1;
        }
        for (i, (sw, sh, n)) in sums.into_iter().enumerate() {
            if n > 0 {
                centroids[i] = (sw / n as f32, sh / n as f32);
            }
        }
    }
    centroids.sort_by(|a, b| (a.0 * a.1).total_cmp(&(b.0 * b.1)));
    // Guard against degenerate zero-size anchors.
    for c in &mut centroids {
        c.0 = c.0.max(0.05);
        c.1 = c.1.max(0.05);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_data::scene::{SceneConfig, SceneGenerator};
    use dronet_detect::DetectorBuilder;
    use dronet_nn::{Activation, Conv2d, Layer, Network, RegionConfig, RegionLayer};

    fn scenes(n: usize) -> Vec<Scene> {
        let mut gen = SceneGenerator::new(
            SceneConfig {
                width: 64,
                height: 64,
                ..SceneConfig::default()
            },
            11,
        );
        (0..n).map(|_| gen.generate()).collect()
    }

    fn dummy_detector(input: usize) -> Detector {
        let mut net = Network::new(3, input, input);
        net.push(Layer::conv(
            Conv2d::new(3, 6, 3, 1, 1, Activation::Leaky, false).unwrap(),
        ));
        net.push(Layer::region(
            RegionLayer::new(RegionConfig {
                anchors: vec![(1.0, 1.0)],
                classes: 1,
            })
            .unwrap(),
        ));
        DetectorBuilder::new(net).build().unwrap()
    }

    #[test]
    fn evaluation_reports_counts_and_fps() {
        let scenes = scenes(4);
        let mut det = dummy_detector(32);
        let outcome = evaluate_detector(&mut det, &scenes).unwrap();
        assert_eq!(outcome.frames, 4);
        assert!(outcome.fps.0 > 0.0);
        // An untrained detector misses vehicles: false negatives exist.
        assert!(outcome.stats.false_negatives > 0);
        assert!(outcome.accuracy() <= 1.0);
    }

    #[test]
    fn anchors_reflect_object_scale() {
        let scenes = scenes(12);
        let anchors = estimate_anchors(&scenes, 8, 3);
        assert_eq!(anchors.len(), 3);
        // Sorted ascending by area.
        for pair in anchors.windows(2) {
            assert!(pair[0].0 * pair[0].1 <= pair[1].0 * pair[1].1);
        }
        // Synthetic vehicles are ~0.07-0.17 of the image; in 8-cell grid
        // units that is ~0.5-1.4 cells.
        for (w, h) in anchors {
            assert!(w > 0.1 && w < 4.0, "anchor w {w}");
            assert!(h > 0.1 && h < 4.0, "anchor h {h}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one anchor")]
    fn zero_anchors_panics() {
        estimate_anchors(&scenes(1), 8, 0);
    }
}
