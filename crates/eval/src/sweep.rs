//! The Section IV-A design-space sweep: every (model, input size) pair on
//! a CPU platform, producing the data behind Figs. 3 and 4.
//!
//! ## The FPS-vs-resolution response
//!
//! The sweep supports two frame-rate responses:
//!
//! * [`FpsResponse::Roofline`] — FPS follows the platform roofline model
//!   directly: compute scales with the square of the input size, so FPS at
//!   608 is roughly (352/608)² ≈ 0.34x of FPS at 352 (plus overhead
//!   flattening).
//! * [`FpsResponse::PaperFlat`] — FPS follows the response the paper
//!   *measured*: "the larger input size deteriorates performance with an
//!   average of 0.81x across the models" over the full 352→608 range.
//!   That is far flatter than compute scaling predicts (×2.98 more FLOPs
//!   over the same range) and is the reason the paper's weighted score
//!   peaks at 512 for DroNet: under a flat FPS response the accuracy gain
//!   of a larger input outweighs the small FPS penalty up to ~544, exactly
//!   as §IV-A states. We reproduce Fig. 4 under this response and record
//!   the discrepancy in `EXPERIMENTS.md`.

use crate::response;
use dronet_core::{zoo, ModelId};
use dronet_metrics::score::score_candidates;
use dronet_metrics::{normalize_metrics, MetricVector, ScoreWeights};
use dronet_platform::{Platform, PlatformId};

/// Exponent of the paper's measured FPS-vs-size response:
/// `fps(r) = fps(416) * (416/r)^p` with `p = ln(0.81)/ln(352/608)`.
pub const PAPER_FPS_EXPONENT: f64 = 0.3856;

/// How FPS responds to input size in the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FpsResponse {
    /// Pure roofline projection (physically consistent with FLOP scaling).
    Roofline,
    /// The paper's measured, much flatter response (x0.81 over 352→608),
    /// anchored to the roofline projection at 416.
    PaperFlat,
}

/// Sweep configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// Models to evaluate.
    pub models: Vec<ModelId>,
    /// Square input sizes to evaluate.
    pub inputs: Vec<usize>,
    /// Platform whose performance model provides FPS.
    pub platform: PlatformId,
    /// Score weights for ranking (the paper's eq. 3 weights by default).
    pub weights: ScoreWeights,
    /// FPS-vs-resolution response.
    pub fps_response: FpsResponse,
}

impl SweepConfig {
    /// The paper's full Section IV-A sweep: 4 models × sizes 352–608 on
    /// the i5-2520M, with the paper's measured FPS response (reproduces
    /// Figs. 3–4 as published).
    pub fn paper() -> Self {
        SweepConfig {
            models: ModelId::ALL.to_vec(),
            inputs: zoo::input_sizes_sorted(),
            platform: PlatformId::IntelI5_2520M,
            weights: ScoreWeights::paper(),
            fps_response: FpsResponse::PaperFlat,
        }
    }

    /// The same sweep under the physically consistent roofline response.
    pub fn roofline() -> Self {
        SweepConfig {
            fps_response: FpsResponse::Roofline,
            ..SweepConfig::paper()
        }
    }

    /// A reduced sweep (3 sizes) for doctests and quick checks.
    pub fn quick() -> Self {
        SweepConfig {
            models: ModelId::ALL.to_vec(),
            inputs: vec![352, 416, 512],
            platform: PlatformId::IntelI5_2520M,
            weights: ScoreWeights::paper(),
            fps_response: FpsResponse::PaperFlat,
        }
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::paper()
    }
}

/// One point of the design space.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The model evaluated.
    pub model: ModelId,
    /// The square input size.
    pub input: usize,
    /// Raw metrics (FPS per the configured response, accuracy from the
    /// response model).
    pub metrics: MetricVector,
    /// Metrics normalised across the whole sweep (Fig. 3's scheme).
    pub normalized: MetricVector,
    /// The weighted composite score (eq. 3) over the normalised metrics.
    pub score: f64,
    /// Model GFLOPs at this input size.
    pub gflops: f64,
    /// Projected per-frame latency in milliseconds (roofline, regardless
    /// of the FPS response used for scoring).
    pub latency_ms: f64,
}

/// Runs the sweep, returning one result per (model, input) pair in
/// `models`-major order.
///
/// # Panics
///
/// Panics if the zoo fails to build a model (embedded cfgs are
/// compile-time constants, so this indicates a corrupted build).
pub fn cpu_sweep(config: &SweepConfig) -> Vec<SweepResult> {
    let platform = Platform::preset(config.platform);
    let mut points: Vec<(ModelId, usize, MetricVector, f64, f64)> = Vec::new();
    for &model in &config.models {
        // Build once and resize per sweep point (weights are irrelevant to
        // cost accounting, and construction dominates sweep time).
        let mut net = zoo::build(model, response::REFERENCE_INPUT)
            .unwrap_or_else(|e| panic!("embedded cfg for {model} failed to build: {e}"));
        // Anchor for the PaperFlat response: roofline FPS at 416.
        let fps_at_416 = platform.project(&net).fps.0;
        for &input in &config.inputs {
            net.set_input_size(input, input)
                .expect("sweep sizes are positive");
            let cost = dronet_nn::cost::network_cost(&net);
            let projection = platform.project_cost(&cost);
            let fps = match config.fps_response {
                FpsResponse::Roofline => projection.fps.0,
                FpsResponse::PaperFlat => {
                    fps_at_416
                        * (response::REFERENCE_INPUT as f64 / input as f64).powf(PAPER_FPS_EXPONENT)
                }
            };
            let mut metrics = response::predict(model, input);
            metrics.fps = fps;
            points.push((
                model,
                input,
                metrics,
                cost.total_gflops(),
                projection.latency.as_secs_f64() * 1e3,
            ));
        }
    }
    let raw: Vec<MetricVector> = points.iter().map(|p| p.2).collect();
    let normalized = normalize_metrics(&raw);
    let scores = score_candidates(&raw, &config.weights);
    points
        .into_iter()
        .zip(normalized)
        .zip(scores)
        .map(
            |(((model, input, metrics, gflops, latency_ms), norm), score)| SweepResult {
                model,
                input,
                metrics,
                normalized: norm,
                score,
                gflops,
                latency_ms,
            },
        )
        .collect()
}

/// The best-scoring configuration per model (the paper's Fig. 4 bars).
pub fn best_per_model(results: &[SweepResult]) -> Vec<&SweepResult> {
    let mut best: Vec<&SweepResult> = Vec::new();
    let mut models: Vec<ModelId> = results.iter().map(|r| r.model).collect();
    models.dedup();
    for model in models {
        if let Some(b) = results
            .iter()
            .filter(|r| r.model == model)
            .max_by(|a, b| a.score.total_cmp(&b.score))
        {
            best.push(b);
        }
    }
    best
}

/// Finds the result for a specific (model, input) pair.
pub fn find(results: &[SweepResult], model: ModelId, input: usize) -> Option<&SweepResult> {
    results
        .iter()
        .find(|r| r.model == model && r.input == input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn paper_sweep() -> &'static [SweepResult] {
        static CACHE: OnceLock<Vec<SweepResult>> = OnceLock::new();
        CACHE.get_or_init(|| cpu_sweep(&SweepConfig::paper()))
    }

    fn roofline_sweep() -> &'static [SweepResult] {
        static CACHE: OnceLock<Vec<SweepResult>> = OnceLock::new();
        CACHE.get_or_init(|| cpu_sweep(&SweepConfig::roofline()))
    }

    #[test]
    fn sweep_covers_the_grid() {
        let results = paper_sweep();
        assert_eq!(results.len(), 4 * 9);
        assert!(find(results, ModelId::DroNet, 512).is_some());
        assert!(find(results, ModelId::DroNet, 500).is_none());
    }

    #[test]
    fn normalised_metrics_are_unit_bounded() {
        for r in paper_sweep() {
            assert!(r.normalized.fps <= 1.0 + 1e-9);
            assert!(r.normalized.iou <= 1.0 + 1e-6);
            assert!(r.normalized.sensitivity <= 1.0 + 1e-6);
            assert!(r.normalized.precision <= 1.0 + 1e-6);
            assert!(r.score > 0.0 && r.score <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn dronet_512_maximises_score_under_paper_fps_response() {
        // Paper: "a size of 512x512 maximizes the weighted score metric of
        // the DroNet model" — holds under the paper's measured (flat) FPS
        // response.
        let results = paper_sweep();
        let best = results
            .iter()
            .filter(|r| r.model == ModelId::DroNet)
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap();
        // The score surface is a plateau over 480-608 (differences in the
        // 4th decimal); require the optimum to sit in the upper-size
        // region and 512 to be within 0.1% of it.
        assert!(
            best.input >= 448,
            "DroNet best input {} (paper: 512)",
            best.input
        );
        let at_512 = find(results, ModelId::DroNet, 512).unwrap();
        assert!(
            at_512.score >= 0.999 * best.score,
            "512 score {} vs best {} at {}",
            at_512.score,
            best.score,
            best.input
        );
    }

    #[test]
    fn roofline_response_prefers_small_inputs() {
        // Under physically consistent FLOP scaling the FPS term dominates
        // and the score peaks at the smallest input — documenting that the
        // paper's 512 selection hinges on its flat measured FPS response.
        let results = roofline_sweep();
        let best = results
            .iter()
            .filter(|r| r.model == ModelId::DroNet)
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap();
        assert!(best.input <= 416, "roofline best input {}", best.input);
    }

    #[test]
    fn best_per_model_ranks_dronet_first() {
        for results in [paper_sweep(), roofline_sweep()] {
            let best = best_per_model(results);
            assert_eq!(best.len(), 4);
            let winner = best
                .iter()
                .max_by(|a, b| a.score.total_cmp(&b.score))
                .unwrap();
            assert_eq!(winner.model, ModelId::DroNet, "paper: DroNet wins Fig. 4");
        }
    }

    #[test]
    fn dronet_outscores_tinyyolovoc() {
        // Paper reports a 3% score edge; with a shared FPS normalisation
        // and a 30x raw FPS gap our margin is larger (see EXPERIMENTS.md).
        let results = paper_sweep();
        let best = |m: ModelId| {
            results
                .iter()
                .filter(|r| r.model == m)
                .map(|r| r.score)
                .fold(f64::MIN, f64::max)
        };
        assert!(best(ModelId::DroNet) > best(ModelId::TinyYoloVoc));
        // And TinyYoloVoc still beats the accuracy-poor SmallYoloV3 on the
        // accuracy metrics at every size.
        for input in [352usize, 416, 512] {
            let voc = find(results, ModelId::TinyYoloVoc, input).unwrap();
            let small = find(results, ModelId::SmallYoloV3, input).unwrap();
            assert!(voc.metrics.sensitivity > small.metrics.sensitivity);
        }
    }

    #[test]
    fn paper_fps_response_matches_081_over_full_range() {
        let results = paper_sweep();
        for model in ModelId::ALL {
            let lo = find(results, model, 352).unwrap().metrics.fps;
            let hi = find(results, model, 608).unwrap().metrics.fps;
            let ratio = hi / lo;
            assert!(
                (0.78..=0.84).contains(&ratio),
                "{model}: 352->608 FPS ratio {ratio} (paper: 0.81)"
            );
        }
    }

    #[test]
    fn fps_decreases_with_input_size_in_both_responses() {
        for results in [paper_sweep(), roofline_sweep()] {
            for model in ModelId::ALL {
                let mut per_model: Vec<&SweepResult> =
                    results.iter().filter(|r| r.model == model).collect();
                per_model.sort_by_key(|r| r.input);
                for pair in per_model.windows(2) {
                    assert!(
                        pair[0].metrics.fps > pair[1].metrics.fps,
                        "{model}: FPS should fall with input size"
                    );
                    assert!(pair[0].metrics.sensitivity < pair[1].metrics.sensitivity);
                }
            }
        }
    }

    #[test]
    fn latency_tracks_gflops_within_a_model() {
        let results = roofline_sweep();
        for model in ModelId::ALL {
            let mut per_model: Vec<&SweepResult> =
                results.iter().filter(|r| r.model == model).collect();
            per_model.sort_by_key(|r| r.input);
            for pair in per_model.windows(2) {
                assert!(pair[1].gflops > pair[0].gflops);
                assert!(pair[1].latency_ms > pair[0].latency_ms);
            }
        }
    }
}
