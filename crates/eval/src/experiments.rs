//! The top-level experiment runner: regenerates every table, figure and
//! claim of the paper's evaluation section in one call and renders them as
//! terminal text or Markdown (the source of `EXPERIMENTS.md`).

use crate::claims::{check_all, Claim};
use crate::figures;
use crate::sweep::{cpu_sweep, SweepConfig, SweepResult};
use dronet_metrics::report::Table;
use std::fmt::Write as _;

/// Everything the harness reproduces, bundled.
#[derive(Debug)]
pub struct ExperimentSuite {
    /// Fig. 1 / Fig. 2 architecture summaries (rendered).
    pub architectures: Vec<String>,
    /// The full Section IV-A sweep (paper FPS response).
    pub sweep: Vec<SweepResult>,
    /// Fig. 3 table.
    pub fig3: Table,
    /// Fig. 4 table.
    pub fig4: Table,
    /// Fig. 5 / §IV-B deployment table.
    pub fig5: Table,
    /// Every checked claim.
    pub claims: Vec<Claim>,
}

/// Runs the full reproduction suite (pure computation, a few seconds).
pub fn run_all() -> ExperimentSuite {
    let sweep = cpu_sweep(&SweepConfig::paper());
    let mut architectures: Vec<String> = figures::fig1_architectures()
        .iter()
        .map(|s| s.to_string())
        .collect();
    architectures.push(figures::fig2_dronet().to_string());
    ExperimentSuite {
        fig3: figures::fig3_table(&sweep),
        fig4: figures::fig4_table(&sweep),
        fig5: figures::fig5_table(),
        architectures,
        sweep,
        claims: check_all(),
    }
}

impl ExperimentSuite {
    /// Renders the whole suite as plain text (what the
    /// `reproduce_paper` example prints).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== Fig. 1 / Fig. 2: architectures ===\n");
        for a in &self.architectures {
            let _ = writeln!(out, "{a}");
        }
        let _ = writeln!(out, "{}", self.fig3.to_text());
        let _ = writeln!(out, "{}", self.fig4.to_text());
        let _ = writeln!(out, "{}", self.fig5.to_text());
        let _ = writeln!(out, "=== Paper claims ===\n");
        for c in &self.claims {
            let _ = writeln!(out, "{c}");
        }
        out
    }

    /// Writes the regenerated tables as CSV files into `dir` (created if
    /// missing): `fig3.csv`, `fig4.csv`, `fig5.csv`, `claims.csv` — the
    /// machine-readable companions to `EXPERIMENTS.md`, ready for external
    /// plotting tools.
    ///
    /// # Errors
    ///
    /// Returns any filesystem error.
    pub fn write_csv_dir(&self, dir: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join("fig3.csv"), self.fig3.to_csv())?;
        std::fs::write(dir.join("fig4.csv"), self.fig4.to_csv())?;
        std::fs::write(dir.join("fig5.csv"), self.fig5.to_csv())?;
        let mut claims = String::from("id,description,paper,measured,status\n");
        for c in &self.claims {
            use std::fmt::Write as _;
            let esc = |s: &str| {
                if s.contains([',', '"', '\n']) {
                    format!("\"{}\"", s.replace('"', "\"\""))
                } else {
                    s.to_string()
                }
            };
            let _ = writeln!(
                claims,
                "{},{},{},{},{}",
                c.id,
                esc(c.description),
                esc(&c.paper),
                esc(&c.measured),
                c.status
            );
        }
        std::fs::write(dir.join("claims.csv"), claims)?;
        Ok(())
    }

    /// Renders a Markdown summary (claims + tables as fenced blocks).
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## Reproduced tables and figures\n");
        for (title, table) in [
            ("Fig. 3", &self.fig3),
            ("Fig. 4", &self.fig4),
            ("Fig. 5 / IV-B", &self.fig5),
        ] {
            let _ = writeln!(out, "### {title}\n\n```text\n{}```\n", table.to_text());
        }
        let _ = writeln!(out, "## Claim verification\n");
        let _ = writeln!(out, "| id | claim | paper | measured | status |");
        let _ = writeln!(out, "|----|-------|-------|----------|--------|");
        for c in &self.claims {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                c.id, c.description, c.paper, c.measured, c.status
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_runs_and_renders() {
        let suite = run_all();
        assert_eq!(suite.architectures.len(), 5);
        assert_eq!(suite.sweep.len(), 36);
        assert!(!suite.claims.is_empty());
        let text = suite.to_text();
        assert!(text.contains("Fig. 3"));
        assert!(text.contains("Paper claims"));
        let md = suite.to_markdown();
        assert!(md.contains("| IVB-1 |"));
        assert!(md.contains("```text"));
    }

    #[test]
    fn csv_export_writes_all_files() {
        let suite = run_all();
        let dir = std::env::temp_dir().join("dronet-csv-test");
        suite.write_csv_dir(&dir).unwrap();
        for name in ["fig3.csv", "fig4.csv", "fig5.csv", "claims.csv"] {
            let content = std::fs::read_to_string(dir.join(name)).unwrap();
            assert!(content.lines().count() > 1, "{name} is empty");
            std::fs::remove_file(dir.join(name)).ok();
        }
        // Claims CSV carries the one documented divergence.
        // (File already removed; re-generate cheaply from the suite.)
        assert!(suite.claims.iter().any(|c| c.id == "IVA-9"));
    }
}
