//! Regeneration of every figure/table in the paper's evaluation section
//! as text tables (and CSV via [`dronet_metrics::report::Table::to_csv`]).

use crate::response;
use crate::sweep::{best_per_model, SweepResult};
use dronet_core::{zoo, ModelId};
use dronet_metrics::report::{fmt3, Table};
use dronet_nn::summary::NetworkSummary;
use dronet_platform::{Platform, PlatformId};

/// Fig. 1 — "Baseline Network Structures": one architecture summary per
/// model at the canonical 416 input.
pub fn fig1_architectures() -> Vec<NetworkSummary> {
    ModelId::ALL
        .iter()
        .map(|&id| {
            let net = zoo::build(id, 416).expect("embedded cfg");
            NetworkSummary::of(id.name(), &net)
        })
        .collect()
}

/// Fig. 2 — the DroNet architecture at its selected 512 input.
pub fn fig2_dronet() -> NetworkSummary {
    let net = zoo::build(ModelId::DroNet, 512).expect("embedded cfg");
    NetworkSummary::of("DroNet (Fig. 2, input 512)", &net)
}

/// Fig. 3 — normalised metrics for every (model, input size) point of a
/// sweep.
pub fn fig3_table(results: &[SweepResult]) -> Table {
    let mut table = Table::new(
        "Fig. 3 — normalized metrics per model and input size (i5-2520M)",
        &[
            "model",
            "input",
            "FPS",
            "norm FPS",
            "norm IoU",
            "norm Sens",
            "norm Prec",
        ],
    );
    for r in results {
        table.push_row(vec![
            r.model.name().to_string(),
            r.input.to_string(),
            format!("{:.2}", r.metrics.fps),
            fmt3(r.normalized.fps),
            fmt3(f64::from(r.normalized.iou)),
            fmt3(f64::from(r.normalized.sensitivity)),
            fmt3(f64::from(r.normalized.precision)),
        ]);
    }
    table
}

/// Fig. 4 — the weighted composite score of the best configuration per
/// model.
pub fn fig4_table(results: &[SweepResult]) -> Table {
    let mut table = Table::new(
        "Fig. 4 — weighted Score (w = [0.4 FPS, 0.2 IoU, 0.2 Sens, 0.2 Prec]) of best configs",
        &["model", "best input", "FPS", "IoU", "Sens", "Prec", "Score"],
    );
    let mut best = best_per_model(results);
    best.sort_by(|a, b| b.score.total_cmp(&a.score));
    for r in best {
        table.push_row(vec![
            r.model.name().to_string(),
            r.input.to_string(),
            format!("{:.2}", r.metrics.fps),
            fmt3(f64::from(r.metrics.iou)),
            fmt3(f64::from(r.metrics.sensitivity)),
            fmt3(f64::from(r.metrics.precision)),
            fmt3(r.score),
        ]);
    }
    table
}

/// §IV-B / Fig. 5 — the UAV deployment table: DroNet-512 and TinyYoloVoc
/// on every evaluation platform.
pub fn fig5_table() -> Table {
    let mut table = Table::new(
        "Fig. 5 / Section IV-B — UAV platform deployment (projected)",
        &[
            "platform",
            "model",
            "input",
            "latency ms",
            "FPS",
            "sens",
            "accuracy",
        ],
    );
    for platform_id in PlatformId::EVALUATION {
        let platform = Platform::preset(platform_id);
        for (model, input) in [(ModelId::DroNet, 512usize), (ModelId::TinyYoloVoc, 512)] {
            let net = zoo::build(model, input).expect("embedded cfg");
            let projection = platform.project(&net);
            let acc = response::predict(model, input);
            table.push_row(vec![
                platform_id.name().to_string(),
                model.name().to_string(),
                input.to_string(),
                format!("{:.1}", projection.latency.as_secs_f64() * 1e3),
                format!("{:.2}", projection.fps.0),
                fmt3(f64::from(acc.sensitivity)),
                fmt3(f64::from(response::combined_accuracy(&acc))),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{cpu_sweep, SweepConfig};

    #[test]
    fn fig1_has_four_models_with_paper_structure() {
        let summaries = fig1_architectures();
        assert_eq!(summaries.len(), 4);
        for s in &summaries {
            assert_eq!(s.conv_count(), 9, "{}", s.name);
            assert!((4..=6).contains(&s.maxpool_count()));
        }
    }

    #[test]
    fn fig2_is_dronet_at_512() {
        let s = fig2_dronet();
        assert!(s.name.contains("DroNet"));
        assert_eq!(s.input, (3, 512, 512));
        // The text render mentions both 3x3 and 1x1 convolutions (the
        // paper's Fig. 2 caption).
        let text = s.to_string();
        assert!(text.contains("3x3/1"));
        assert!(text.contains("1x1/1"));
    }

    #[test]
    fn fig3_and_fig4_tables_render() {
        let results = cpu_sweep(&SweepConfig::quick());
        let f3 = fig3_table(&results);
        assert_eq!(f3.row_count(), results.len());
        assert!(f3.to_text().contains("DroNet"));
        assert!(f3.to_csv().lines().count() == results.len() + 1);

        let f4 = fig4_table(&results);
        assert_eq!(f4.row_count(), 4);
        // DroNet is the top row (highest score).
        assert!(f4.to_csv().lines().nth(1).unwrap().starts_with("DroNet"));
    }

    #[test]
    fn fig5_covers_three_platforms_and_two_models() {
        let t = fig5_table();
        assert_eq!(t.row_count(), 6);
        let text = t.to_text();
        assert!(text.contains("Odroid-XU4"));
        assert!(text.contains("Raspberry Pi 3"));
        assert!(text.contains("TinyYoloVoc"));
    }
}
