//! The detection-accuracy response model.
//!
//! **What this is.** The paper trains all four architectures on its
//! proprietary 350-image aerial dataset on a Titan Xp and reports their
//! IoU/Sensitivity/Precision. We cannot re-run that training (no dataset,
//! and full-resolution fp32 training in pure Rust exceeds any reasonable
//! budget), so the *figure-generation* pipeline uses this response model:
//! per-model accuracy anchors at the 416 reference resolution, taken from
//! the paper's own reported deltas, combined with resolution-response
//! curves whose exponents are fitted to the paper's two quantitative
//! resolution observations:
//!
//! * average sensitivity gain of ×1.28 going 352 → 608 (across models),
//! * TinyYoloVoc gains ~0.17 IoU over the same range.
//!
//! The *shape* of every figure (who wins, crossovers, how accuracy trades
//! against resolution) then follows from the model. Real, measured
//! accuracy — from actually training our networks on the synthetic data —
//! is produced separately by [`crate::realeval`] and reported alongside in
//! `EXPERIMENTS.md`.
//!
//! Error-space formulation: each metric `m` has a base error
//! `e = 1 - m(416)`; at input size `r` the error is
//! `e * (416 / r)^beta_m`, so accuracy saturates naturally instead of
//! exceeding 1.

use dronet_core::ModelId;
use dronet_metrics::MetricVector;

/// Reference input size at which the anchors are specified.
pub const REFERENCE_INPUT: usize = 416;

/// Resolution-response exponent for sensitivity (fitted to the paper's
/// x1.28 average sensitivity gain from 352 to 608).
pub const SENS_EXPONENT: f32 = 1.1;
/// Resolution-response exponent for IoU (fitted to TinyYoloVoc's +0.17
/// IoU gain over the same range).
pub const IOU_EXPONENT: f32 = 1.15;
/// Resolution-response exponent for precision (weak dependence).
pub const PREC_EXPONENT: f32 = 0.5;

/// Accuracy anchors of one model at [`REFERENCE_INPUT`], expressed as
/// errors (`1 - metric`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyAnchor {
    /// `1 - IoU` at the reference input.
    pub iou_err: f32,
    /// `1 - sensitivity` at the reference input.
    pub sens_err: f32,
    /// `1 - precision` at the reference input.
    pub prec_err: f32,
}

/// The paper-calibrated anchor for a model.
///
/// Derivation from the paper's Section IV-A numbers (all relative to
/// TinyYoloVoc at the same input size):
/// * TinyYoloVoc: the accuracy baseline — sens/prec ≈ 0.95, IoU ≈ 0.70,
///   reaching 97% accuracy at large inputs,
/// * TinyYoloNet: −20% sensitivity, −10% precision, −0.11 IoU,
/// * SmallYoloV3: −53% sensitivity (the paper's disqualifying drop),
/// * DroNet: −2% sensitivity, −6% precision, −0.08 IoU.
pub fn anchor(model: ModelId) -> AccuracyAnchor {
    match model {
        ModelId::TinyYoloVoc => AccuracyAnchor {
            iou_err: 0.30,
            sens_err: 0.05,
            prec_err: 0.05,
        },
        ModelId::TinyYoloNet => AccuracyAnchor {
            iou_err: 0.41,
            sens_err: 0.24,
            prec_err: 0.145,
        },
        ModelId::SmallYoloV3 => AccuracyAnchor {
            iou_err: 0.45,
            sens_err: 0.554,
            prec_err: 0.20,
        },
        ModelId::DroNet => AccuracyAnchor {
            iou_err: 0.38,
            sens_err: 0.07,
            prec_err: 0.107,
        },
    }
}

/// Predicted accuracy metrics for `model` at square input size `input`.
///
/// The FPS component of the returned [`MetricVector`] is zero; the sweep
/// fills it in from the platform projection.
///
/// # Panics
///
/// Panics when `input` is zero.
pub fn predict(model: ModelId, input: usize) -> MetricVector {
    assert!(input > 0, "input size must be positive");
    let a = anchor(model);
    let ratio = REFERENCE_INPUT as f32 / input as f32;
    let iou = 1.0 - a.iou_err * ratio.powf(IOU_EXPONENT);
    let sens = 1.0 - a.sens_err * ratio.powf(SENS_EXPONENT);
    let prec = 1.0 - a.prec_err * ratio.powf(PREC_EXPONENT);
    MetricVector {
        fps: 0.0,
        iou: iou.clamp(0.0, 0.95),
        sensitivity: sens.clamp(0.0, 0.99),
        precision: prec.clamp(0.0, 0.99),
    }
}

/// The combined detection accuracy (F1 of sensitivity and precision) that
/// corresponds to the paper's informal "accuracy" percentages.
pub fn combined_accuracy(m: &MetricVector) -> f32 {
    let s = m.sensitivity;
    let p = m.precision;
    if s + p <= 0.0 {
        0.0
    } else {
        2.0 * s * p / (s + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anchors_reproduce_paper_deltas_at_386() {
        // The paper quotes its model-vs-model deltas "with 386x386 as
        // image size" (Darknet's nearest canonical size is 384).
        let at = |m: ModelId| predict(m, 384);
        let voc = at(ModelId::TinyYoloVoc);
        let dronet = at(ModelId::DroNet);
        let tnet = at(ModelId::TinyYoloNet);
        let small = at(ModelId::SmallYoloV3);

        // DroNet: -2% sens, -6% prec, -0.08 IoU.
        assert!((voc.sensitivity - dronet.sensitivity - 0.02).abs() < 0.01);
        assert!((voc.precision - dronet.precision - 0.06).abs() < 0.015);
        assert!((voc.iou - dronet.iou - 0.08).abs() < 0.02);

        // TinyYoloNet: -20% sens, -10% prec, -0.11 IoU.
        assert!((voc.sensitivity - tnet.sensitivity - 0.20).abs() < 0.03);
        assert!((voc.precision - tnet.precision - 0.10).abs() < 0.02);
        assert!((voc.iou - tnet.iou - 0.11).abs() < 0.025);

        // SmallYoloV3: -53% sens.
        assert!((voc.sensitivity - small.sensitivity - 0.53).abs() < 0.04);
    }

    #[test]
    fn sensitivity_gain_352_to_608_averages_1_28() {
        let mut ratios = Vec::new();
        for m in ModelId::ALL {
            let lo = predict(m, 352).sensitivity;
            let hi = predict(m, 608).sensitivity;
            assert!(hi > lo, "{m}: sensitivity must grow with input size");
            ratios.push(hi / lo);
        }
        let avg: f32 = ratios.iter().sum::<f32>() / ratios.len() as f32;
        assert!(
            (avg - 1.28).abs() < 0.08,
            "average sensitivity gain {avg}, paper reports 1.28"
        );
    }

    #[test]
    fn tiny_yolo_voc_iou_gain_matches_paper() {
        let lo = predict(ModelId::TinyYoloVoc, 352).iou;
        let hi = predict(ModelId::TinyYoloVoc, 608).iou;
        assert!(
            ((hi - lo) - 0.17).abs() < 0.03,
            "IoU gain {} (paper: 0.17)",
            hi - lo
        );
    }

    #[test]
    fn tiny_yolo_voc_peaks_near_97_percent() {
        let m = predict(ModelId::TinyYoloVoc, 608);
        let acc = combined_accuracy(&m);
        assert!(
            (0.945..=0.985).contains(&acc),
            "TinyYoloVoc@608 combined accuracy {acc} (paper: 97%)"
        );
    }

    #[test]
    fn dronet_maintains_around_95_percent_sensitivity_at_512() {
        let m = predict(ModelId::DroNet, 512);
        assert!(
            (0.92..=0.97).contains(&m.sensitivity),
            "DroNet-512 sensitivity {}",
            m.sensitivity
        );
        let acc = combined_accuracy(&m);
        // The paper's "~95% accuracy"; our F1 formalisation gives ~0.92
        // (the paper's own -2%/-6% deltas imply the same, see
        // EXPERIMENTS.md discussion).
        assert!((0.90..=0.96).contains(&acc), "combined accuracy {acc}");
    }

    #[test]
    fn accuracy_ordering_is_stable_across_sizes() {
        for input in [352usize, 416, 512, 608] {
            let voc = predict(ModelId::TinyYoloVoc, input);
            let dronet = predict(ModelId::DroNet, input);
            let tnet = predict(ModelId::TinyYoloNet, input);
            let small = predict(ModelId::SmallYoloV3, input);
            assert!(voc.sensitivity > dronet.sensitivity);
            assert!(dronet.sensitivity > tnet.sensitivity);
            assert!(tnet.sensitivity > small.sensitivity);
            assert!(voc.iou > dronet.iou && dronet.iou > tnet.iou);
        }
    }

    #[test]
    fn metrics_stay_in_bounds_at_extremes() {
        for m in ModelId::ALL {
            for input in [64usize, 128, 2048] {
                let v = predict(m, input);
                assert!((0.0..=0.95).contains(&v.iou));
                assert!((0.0..=0.99).contains(&v.sensitivity));
                assert!((0.0..=0.99).contains(&v.precision));
            }
        }
    }

    #[test]
    #[should_panic(expected = "input size")]
    fn zero_input_panics() {
        predict(ModelId::DroNet, 0);
    }
}
