//! # dronet-eval
//!
//! The experiment harness: everything needed to regenerate the DroNet
//! paper's evaluation section (tables, figures, and headline claims) from
//! this workspace's own components.
//!
//! * [`response`] — the detection-accuracy response model: per-model
//!   accuracy anchors (calibrated once against the paper's reported
//!   deltas, see `DESIGN.md` §4.2) combined with resolution response
//!   curves, standing in for full-scale training on the paper's
//!   proprietary dataset,
//! * [`sweep`] — the Section IV-A design-space sweep: models × input
//!   sizes × platforms, combining real FLOP counts, platform projections
//!   and the response model,
//! * [`figures`] — regenerates Fig. 1/2 (architecture tables), Fig. 3
//!   (normalised metrics), Fig. 4 (weighted score) and the Fig. 5 / §IV-B
//!   deployment table,
//! * [`claims`] — extracts the paper's quantitative claims from the sweep
//!   and checks each one (who wins, by what factor),
//! * [`realeval`] — *measured* (not modelled) evaluation: runs a trained
//!   detector over synthetic scenes and computes IoU/sensitivity/precision
//!   with real matching, used by the end-to-end examples and tests,
//! * [`experiments`] — the top-level runner producing the contents of
//!   `EXPERIMENTS.md`.
//!
//! # Example
//!
//! ```
//! use dronet_eval::sweep::{cpu_sweep, SweepConfig};
//!
//! let results = cpu_sweep(&SweepConfig::quick());
//! // DroNet at some size must outscore TinyYoloVoc at every size
//! // under the paper's weights (the paper's Fig. 4 conclusion).
//! let best = |name: &str| {
//!     results.iter().filter(|r| r.model.name() == name)
//!         .map(|r| r.score).fold(f64::MIN, f64::max)
//! };
//! assert!(best("DroNet") > best("TinyYoloVoc"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod claims;
pub mod experiments;
pub mod figures;
pub mod realeval;
pub mod response;
pub mod sweep;
