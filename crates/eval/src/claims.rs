//! Extraction and verification of the paper's quantitative claims.
//!
//! Every number the paper states in Section IV is re-derived from this
//! workspace's components and compared. A claim can *hold*, hold *within
//! tolerance* (right direction and rough magnitude), or *diverge* (we can
//! reproduce the direction but not the magnitude — each divergence is
//! explained in `EXPERIMENTS.md`).

use crate::response;
use crate::sweep::{best_per_model, cpu_sweep, find, SweepConfig};
use dronet_core::{zoo, ModelId};
use dronet_platform::{Platform, PlatformId};
use std::fmt;

/// Verification status of one claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimStatus {
    /// Measured value matches the paper's within its stated precision.
    Held,
    /// Direction and rough magnitude match.
    HeldWithinTolerance,
    /// Direction matches but the magnitude differs materially.
    Diverges,
}

impl fmt::Display for ClaimStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ClaimStatus::Held => "HELD",
            ClaimStatus::HeldWithinTolerance => "HELD (tolerance)",
            ClaimStatus::Diverges => "DIVERGES",
        })
    }
}

/// One verified paper claim.
#[derive(Debug, Clone)]
pub struct Claim {
    /// Stable identifier (used in `EXPERIMENTS.md`).
    pub id: &'static str,
    /// What the paper asserts.
    pub description: &'static str,
    /// The paper's value, as printed.
    pub paper: String,
    /// Our measured/projected value.
    pub measured: String,
    /// Verification outcome.
    pub status: ClaimStatus,
}

impl fmt::Display for Claim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: paper {} | measured {} => {}",
            self.id, self.description, self.paper, self.measured, self.status
        )
    }
}

fn status_by_ratio(measured: f64, paper: f64, tight: f64, loose: f64) -> ClaimStatus {
    let ratio = if paper != 0.0 { measured / paper } else { 0.0 };
    if (1.0 - tight..=1.0 + tight).contains(&ratio) {
        ClaimStatus::Held
    } else if (1.0 - loose..=1.0 + loose).contains(&ratio) {
        ClaimStatus::HeldWithinTolerance
    } else {
        ClaimStatus::Diverges
    }
}

/// Runs every claim check. Pure computation, no I/O.
pub fn check_all() -> Vec<Claim> {
    let paper_sweep = cpu_sweep(&SweepConfig::paper());
    let roofline = cpu_sweep(&SweepConfig::roofline());
    let mut claims = Vec::new();

    let fps_at = |model: ModelId, input: usize| -> f64 {
        find(&roofline, model, input).unwrap().metrics.fps
    };
    let acc_at = |model: ModelId, input: usize| find(&paper_sweep, model, input).unwrap().metrics;

    // --- Section IV-A, model-vs-model at "386" (nearest canonical 384) ---
    {
        let r = fps_at(ModelId::TinyYoloNet, 384) / fps_at(ModelId::TinyYoloVoc, 384);
        claims.push(Claim {
            id: "IVA-1",
            description: "TinyYoloNet is ~10x faster than TinyYoloVoc @386 (CPU)",
            paper: "10x".into(),
            measured: format!("{r:.1}x"),
            status: status_by_ratio(r, 10.0, 0.15, 0.40),
        });
    }
    {
        let voc = acc_at(ModelId::TinyYoloVoc, 384);
        let tnet = acc_at(ModelId::TinyYoloNet, 384);
        let sens_drop = voc.sensitivity - tnet.sensitivity;
        let prec_drop = voc.precision - tnet.precision;
        let iou_drop = voc.iou - tnet.iou;
        claims.push(Claim {
            id: "IVA-2",
            description: "TinyYoloNet: -20% sens, -10% prec, -0.11 IoU vs TinyYoloVoc",
            paper: "-0.20 / -0.10 / -0.11".into(),
            measured: format!(
                "{:-.3} / {:-.3} / {:-.3}",
                -sens_drop, -prec_drop, -iou_drop
            ),
            status: if (sens_drop - 0.20).abs() < 0.04
                && (prec_drop - 0.10).abs() < 0.03
                && (iou_drop - 0.11).abs() < 0.03
            {
                ClaimStatus::Held
            } else {
                ClaimStatus::HeldWithinTolerance
            },
        });
    }
    {
        let fps = fps_at(ModelId::SmallYoloV3, 384);
        claims.push(Claim {
            id: "IVA-3",
            description: "SmallYoloV3 is the fastest model, ~23 FPS @386 (CPU)",
            paper: "23 FPS".into(),
            measured: format!("{fps:.1} FPS"),
            status: status_by_ratio(fps, 23.0, 0.10, 0.30),
        });
    }
    {
        let voc = acc_at(ModelId::TinyYoloVoc, 384);
        let small = acc_at(ModelId::SmallYoloV3, 384);
        let drop = voc.sensitivity - small.sensitivity;
        claims.push(Claim {
            id: "IVA-4",
            description: "SmallYoloV3 sensitivity is 53% lower than TinyYoloVoc",
            paper: "-0.53".into(),
            measured: format!("{:-.3}", -drop),
            status: status_by_ratio(drop as f64, 0.53, 0.08, 0.20),
        });
    }
    {
        let r = fps_at(ModelId::DroNet, 384) / fps_at(ModelId::TinyYoloVoc, 384);
        claims.push(Claim {
            id: "IVA-5",
            description: "DroNet is ~30x faster than TinyYoloVoc @386 (CPU)",
            paper: "30x".into(),
            measured: format!("{r:.1}x"),
            status: status_by_ratio(r, 30.0, 0.15, 0.40),
        });
    }
    {
        let voc = acc_at(ModelId::TinyYoloVoc, 384);
        let dronet = acc_at(ModelId::DroNet, 384);
        let sens_drop = voc.sensitivity - dronet.sensitivity;
        let prec_drop = voc.precision - dronet.precision;
        let iou_drop = voc.iou - dronet.iou;
        claims.push(Claim {
            id: "IVA-6",
            description: "DroNet: -0.08 IoU, -2% sens, -6% prec vs TinyYoloVoc",
            paper: "-0.08 / -0.02 / -0.06".into(),
            measured: format!(
                "{:-.3} / {:-.3} / {:-.3}",
                -iou_drop, -sens_drop, -prec_drop
            ),
            status: if (iou_drop - 0.08).abs() < 0.025
                && (sens_drop - 0.02).abs() < 0.015
                && (prec_drop - 0.06).abs() < 0.02
            {
                ClaimStatus::Held
            } else {
                ClaimStatus::HeldWithinTolerance
            },
        });
    }
    {
        let m = acc_at(ModelId::TinyYoloVoc, 608);
        let acc = response::combined_accuracy(&m);
        claims.push(Claim {
            id: "IVA-7",
            description: "TinyYoloVoc with large inputs is the most accurate (~97%)",
            paper: "0.97".into(),
            measured: format!("{acc:.3}"),
            status: status_by_ratio(acc as f64, 0.97, 0.015, 0.05),
        });
    }
    {
        let mut ratios = Vec::new();
        for m in ModelId::ALL {
            ratios.push(acc_at(m, 608).sensitivity as f64 / acc_at(m, 352).sensitivity as f64);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        claims.push(Claim {
            id: "IVA-8",
            description: "Larger inputs raise sensitivity by x1.28 on average (352->608)",
            paper: "1.28x".into(),
            measured: format!("{avg:.2}x"),
            status: status_by_ratio(avg, 1.28, 0.05, 0.15),
        });
    }
    {
        // Paper-flat response reproduces 0.81 by construction; the
        // physically consistent roofline response does not — we report
        // the roofline number and flag the paper's measurement as the
        // source of the difference.
        let mut ratios = Vec::new();
        for m in ModelId::ALL {
            ratios.push(fps_at(m, 608) / fps_at(m, 352));
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
        claims.push(Claim {
            id: "IVA-9",
            description: "Larger inputs cut FPS by x0.81 on average (352->608, roofline says more)",
            paper: "0.81x".into(),
            measured: format!("{avg:.2}x (roofline)"),
            status: status_by_ratio(avg, 0.81, 0.07, 0.25),
        });
    }
    {
        let best = paper_sweep
            .iter()
            .filter(|r| r.model == ModelId::DroNet)
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap();
        let at_512 = find(&paper_sweep, ModelId::DroNet, 512).unwrap();
        claims.push(Claim {
            id: "IVA-10",
            description: "Input 512 maximizes DroNet's weighted score",
            paper: "512".into(),
            measured: format!(
                "{} (512 within {:.2}% of best)",
                best.input,
                100.0 * (1.0 - at_512.score / best.score)
            ),
            status: if best.input == 512 {
                ClaimStatus::Held
            } else if at_512.score >= 0.999 * best.score {
                ClaimStatus::HeldWithinTolerance
            } else {
                ClaimStatus::Diverges
            },
        });
    }
    {
        let best = best_per_model(&paper_sweep);
        let winner = best
            .iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap();
        let voc_best = best
            .iter()
            .find(|r| r.model == ModelId::TinyYoloVoc)
            .unwrap();
        let edge = (winner.score - voc_best.score) / voc_best.score;
        claims.push(Claim {
            id: "FIG4-1",
            description: "DroNet achieves the best weighted score (paper: +3% over TinyYoloVoc)",
            paper: "DroNet wins, +3%".into(),
            measured: format!("{} wins, +{:.0}%", winner.model, edge * 100.0),
            status: if winner.model == ModelId::DroNet {
                // The win reproduces; the margin is larger because the raw
                // 30x FPS gap dominates a shared normalisation.
                ClaimStatus::HeldWithinTolerance
            } else {
                ClaimStatus::Diverges
            },
        });
    }

    // --- Section IV-B: UAV platform deployment ---
    let odroid = Platform::preset(PlatformId::OdroidXu4);
    let rpi = Platform::preset(PlatformId::RaspberryPi3);
    let dronet_512 = zoo::build(ModelId::DroNet, 512).expect("embedded cfg");
    let voc_512 = zoo::build(ModelId::TinyYoloVoc, 512).expect("embedded cfg");
    {
        let fps = odroid.project(&dronet_512).fps.0;
        claims.push(Claim {
            id: "IVB-1",
            description: "DroNet-512 runs at 8-10 FPS on the Odroid-XU4",
            paper: "8-10 FPS".into(),
            measured: format!("{fps:.1} FPS"),
            status: if (8.0..=10.0).contains(&fps) {
                ClaimStatus::Held
            } else if (6.0..=13.0).contains(&fps) {
                ClaimStatus::HeldWithinTolerance
            } else {
                ClaimStatus::Diverges
            },
        });
    }
    {
        let voc_fps = odroid.project(&voc_512).fps.0;
        claims.push(Claim {
            id: "IVB-2",
            description: "TinyYoloVoc achieves only ~0.1 FPS on the Odroid-XU4",
            paper: "0.1 FPS".into(),
            measured: format!("{voc_fps:.2} FPS"),
            status: status_by_ratio(voc_fps, 0.1, 0.3, 1.0),
        });
    }
    {
        let ratio = odroid.project(&dronet_512).fps.0 / odroid.project(&voc_512).fps.0;
        claims.push(Claim {
            id: "IVB-3",
            description: "DroNet is ~40x faster than TinyYoloVoc on the Odroid (the paper's own 8-10 vs 0.1 FPS implies 80-100x)",
            paper: "40x (text) / 80-100x (numbers)".into(),
            measured: format!("{ratio:.0}x"),
            status: if (35.0..=110.0).contains(&ratio) {
                ClaimStatus::HeldWithinTolerance
            } else {
                ClaimStatus::Diverges
            },
        });
    }
    {
        let m = response::predict(ModelId::DroNet, 512);
        claims.push(Claim {
            id: "IVB-4",
            description: "Accuracy maintained around 95% on the UAV platforms",
            paper: "~0.95".into(),
            measured: format!(
                "sens {:.3} / combined {:.3}",
                m.sensitivity,
                response::combined_accuracy(&m)
            ),
            status: if m.sensitivity >= 0.93 {
                ClaimStatus::HeldWithinTolerance
            } else {
                ClaimStatus::Diverges
            },
        });
    }
    {
        let fps = rpi.project(&dronet_512).fps.0;
        claims.push(Claim {
            id: "IVB-5",
            description: "DroNet-512 runs at 5-6 FPS on the Raspberry Pi 3",
            paper: "5-6 FPS".into(),
            measured: format!("{fps:.1} FPS"),
            status: if (5.0..=6.0).contains(&fps) {
                ClaimStatus::Held
            } else if (4.0..=8.0).contains(&fps) {
                ClaimStatus::HeldWithinTolerance
            } else {
                ClaimStatus::Diverges
            },
        });
    }
    {
        // Conclusion: 5-18 FPS across platforms.
        let i5 = Platform::preset(PlatformId::IntelI5_2520M);
        let lo = rpi.project(&dronet_512).fps.0;
        let dronet_384 = zoo::build(ModelId::DroNet, 384).expect("embedded cfg");
        let hi = i5.project(&dronet_384).fps.0;
        claims.push(Claim {
            id: "CONCL-1",
            description: "DroNet spans 5-18 FPS across the evaluated platforms",
            paper: "5-18 FPS".into(),
            measured: format!("{lo:.1}-{hi:.1} FPS"),
            status: if lo >= 4.0 && (13.0..=24.0).contains(&hi) {
                ClaimStatus::HeldWithinTolerance
            } else {
                ClaimStatus::Diverges
            },
        });
    }
    claims
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn claims() -> &'static [Claim] {
        static CACHE: OnceLock<Vec<Claim>> = OnceLock::new();
        CACHE.get_or_init(check_all)
    }

    #[test]
    fn all_claims_are_checked() {
        assert_eq!(claims().len(), 17);
        let mut ids: Vec<&str> = claims().iter().map(|c| c.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 17, "claim ids must be unique");
    }

    #[test]
    fn only_the_fps_response_claim_diverges() {
        // IVA-9 is the one *documented* divergence: the paper measured a
        // x0.81 FPS penalty over 352->608, which no FLOP-proportional
        // runtime can reproduce (compute grows x2.98 over that range).
        // EXPERIMENTS.md discusses it; everything else must hold.
        for claim in claims() {
            if claim.id == "IVA-9" {
                continue;
            }
            assert_ne!(
                claim.status,
                ClaimStatus::Diverges,
                "claim diverged: {claim}"
            );
        }
    }

    #[test]
    fn headline_claims_hold_exactly() {
        let exact: &[&str] = &[
            "IVA-1", "IVA-2", "IVA-3", "IVA-4", "IVA-5", "IVA-6", "IVA-7", "IVA-8", "IVB-1",
            "IVB-2", "IVB-5",
        ];
        for id in exact {
            let claim = claims().iter().find(|c| c.id == *id).unwrap();
            assert_eq!(claim.status, ClaimStatus::Held, "{claim}");
        }
    }

    #[test]
    fn claims_render_readably() {
        for claim in claims() {
            let text = claim.to_string();
            assert!(text.contains(claim.id));
            assert!(text.contains("paper"));
        }
    }
}
