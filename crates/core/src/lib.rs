//! # dronet-core
//!
//! The paper's primary contribution: the **DroNet** single-shot vehicle
//! detector and the design-space of baseline architectures it was selected
//! from (Figs. 1–2 of *DroNet: Efficient Convolutional Neural Network
//! Detector for Real-Time UAV Applications*, DATE 2018).
//!
//! * [`ModelId`] / [`zoo`] — the four explored architectures
//!   (**TinyYoloVoc**, **TinyYoloNet**, **SmallYoloV3**, **DroNet**) as
//!   Darknet-style cfg files plus programmatic builders, parameterisable
//!   by input resolution (the paper sweeps 352–608),
//! * [`quant`] — INT8 post-training quantization of convolution layers,
//!   implementing the "reduce bitwidth precisions" optimisation the paper
//!   lists as future work (§V), with accuracy-vs-compression analysis
//!   support.
//!
//! # Example
//!
//! ```
//! use dronet_core::{ModelId, zoo};
//!
//! # fn main() -> Result<(), dronet_nn::NnError> {
//! let net = zoo::build(ModelId::DroNet, 512)?;
//! let (c, h, w) = net.input_chw();
//! assert_eq!((c, h, w), (3, 512, 512));
//! // DroNet keeps 9 convolutions and 5 max pools at every input size.
//! let summary = dronet_nn::summary::NetworkSummary::of("DroNet", &net);
//! assert_eq!(summary.conv_count(), 9);
//! assert_eq!(summary.maxpool_count(), 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod quant;
pub mod zoo;

pub use zoo::ModelId;
