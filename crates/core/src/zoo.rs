//! The model zoo: the four architectures of the paper's design-space
//! exploration, shipped as Darknet-style cfg files (embedded at compile
//! time) and built through the `dronet-nn` cfg parser.
//!
//! All four models detect one class (top-view vehicles) with 5 anchors and
//! follow the paper's structural constraints: 9 convolutional layers each,
//! 4–6 max-pooling layers, filter counts growing with depth.

use dronet_nn::{cfg, Network, NnError, Result};
use std::fmt;
use std::str::FromStr;

/// Identifier of one of the paper's four explored architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelId {
    /// The paper's proposed model (Fig. 2): cheapest accurate detector.
    DroNet,
    /// Tiny-YOLO-VOC adapted to one class: the accuracy baseline.
    TinyYoloVoc,
    /// Filter-halved Tiny-YOLO: the paper's mid-range trade-off point.
    TinyYoloNet,
    /// The thinnest exploration point: fastest, much lower sensitivity.
    SmallYoloV3,
}

impl ModelId {
    /// All four models, in the order the paper's figures list them.
    pub const ALL: [ModelId; 4] = [
        ModelId::TinyYoloVoc,
        ModelId::TinyYoloNet,
        ModelId::SmallYoloV3,
        ModelId::DroNet,
    ];

    /// The model's display name, matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ModelId::DroNet => "DroNet",
            ModelId::TinyYoloVoc => "TinyYoloVoc",
            ModelId::TinyYoloNet => "TinyYoloNet",
            ModelId::SmallYoloV3 => "SmallYoloV3",
        }
    }

    /// The embedded Darknet-style cfg text describing this model.
    pub fn cfg_text(self) -> &'static str {
        match self {
            ModelId::DroNet => include_str!("../cfgs/dronet.cfg"),
            ModelId::TinyYoloVoc => include_str!("../cfgs/tiny-yolo-voc.cfg"),
            ModelId::TinyYoloNet => include_str!("../cfgs/tiny-yolo-net.cfg"),
            ModelId::SmallYoloV3 => include_str!("../cfgs/small-yolo-v3.cfg"),
        }
    }

    /// The input size the paper ultimately selects for this model on the
    /// UAV platform (512 for DroNet via the Fig. 4 score maximisation; the
    /// baselines default to YOLO's canonical 416).
    pub fn default_input(self) -> usize {
        match self {
            ModelId::DroNet => 512,
            _ => 416,
        }
    }
}

impl fmt::Display for ModelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown model name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseModelIdError {
    name: String,
}

impl fmt::Display for ParseModelIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown model {:?} (expected one of DroNet, TinyYoloVoc, TinyYoloNet, SmallYoloV3)",
            self.name
        )
    }
}

impl std::error::Error for ParseModelIdError {}

impl FromStr for ModelId {
    type Err = ParseModelIdError;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "dronet" => Ok(ModelId::DroNet),
            "tinyyolovoc" | "tiny-yolo-voc" => Ok(ModelId::TinyYoloVoc),
            "tinyyolonet" | "tiny-yolo-net" => Ok(ModelId::TinyYoloNet),
            "smallyolov3" | "small-yolo-v3" => Ok(ModelId::SmallYoloV3),
            other => Err(ParseModelIdError {
                name: other.to_string(),
            }),
        }
    }
}

/// Builds a model at the given square input resolution.
///
/// The paper sweeps input sizes from 352 to 608; any positive multiple of
/// the model's total downsampling factor (32 for most, 16 for SmallYoloV3)
/// works, and other sizes simply yield a truncated final grid exactly as
/// Darknet would.
///
/// # Errors
///
/// Returns [`NnError::BadLayerConfig`] for a zero input size and propagates
/// cfg-parse errors (which would indicate a corrupted embedded cfg).
pub fn build(id: ModelId, input: usize) -> Result<Network> {
    if input == 0 {
        return Err(NnError::BadLayerConfig {
            layer: "net",
            msg: "input size must be positive".to_string(),
        });
    }
    let mut net = cfg::parse(id.cfg_text())?;
    net.set_input_size(input, input)?;
    Ok(net)
}

/// Builds a model at its paper-selected default input size.
///
/// # Errors
///
/// See [`build`].
pub fn build_default(id: ModelId) -> Result<Network> {
    build(id, id.default_input())
}

/// Builds **MicroDroNet**: a proportionally scaled-down DroNet for
/// laptop-scale end-to-end training on the synthetic dataset.
///
/// Same design rules as DroNet (3×3 backbone with a 1×1 bottleneck,
/// filters doubling with depth, batch-norm + leaky everywhere, linear 1×1
/// prediction head) but with 3 max-pools (8× downsampling — a 64-pixel
/// input yields an 8×8 grid) and a configurable anchor set, typically
/// estimated from the dataset with
/// `dronet_eval::realeval::estimate_anchors`. This is the model the
/// repository actually *trains* to produce measured accuracy numbers; the
/// full-size zoo models are used for cost/performance reproduction.
///
/// # Errors
///
/// Returns [`NnError::BadLayerConfig`] for a zero input size or an empty
/// anchor list.
pub fn micro_dronet(input: usize, anchors: Vec<(f32, f32)>) -> Result<Network> {
    micro_dronet_with_width(input, anchors, 1)
}

/// [`micro_dronet`] with a channel-width multiplier (1 = the default thin
/// model, 2 = four times the compute and markedly better localisation on
/// the synthetic benchmark).
///
/// # Errors
///
/// Returns [`NnError::BadLayerConfig`] for a zero input size, zero width
/// or an empty anchor list.
pub fn micro_dronet_with_width(
    input: usize,
    anchors: Vec<(f32, f32)>,
    width: usize,
) -> Result<Network> {
    micro_detector(input, anchors, 1, width)
}

/// The fully general MicroDroNet constructor: configurable class count
/// (the paper's §V future work adds pedestrians/motorbikes as extra
/// classes) and channel width.
///
/// # Errors
///
/// Returns [`NnError::BadLayerConfig`] for a zero input size, zero width,
/// zero classes or an empty anchor list.
pub fn micro_detector(
    input: usize,
    anchors: Vec<(f32, f32)>,
    classes: usize,
    width: usize,
) -> Result<Network> {
    use dronet_nn::{Activation, Conv2d, Layer, MaxPool2d, RegionConfig, RegionLayer};
    if input == 0 || width == 0 || classes == 0 {
        return Err(NnError::BadLayerConfig {
            layer: "net",
            msg: format!(
                "input size ({input}), width ({width}) and classes ({classes}) must be positive"
            ),
        });
    }
    let head = anchors.len() * (5 + classes);
    let w = |c: usize| c * width;
    let mut net = Network::new(3, input, input);
    net.push(Layer::conv(Conv2d::new(
        3,
        w(8),
        3,
        1,
        1,
        Activation::Leaky,
        true,
    )?));
    net.push(Layer::max_pool(MaxPool2d::new(2, 2)?));
    net.push(Layer::conv(Conv2d::new(
        w(8),
        w(16),
        3,
        1,
        1,
        Activation::Leaky,
        true,
    )?));
    net.push(Layer::max_pool(MaxPool2d::new(2, 2)?));
    net.push(Layer::conv(Conv2d::new(
        w(16),
        w(32),
        3,
        1,
        1,
        Activation::Leaky,
        true,
    )?));
    net.push(Layer::max_pool(MaxPool2d::new(2, 2)?));
    net.push(Layer::conv(Conv2d::new(
        w(32),
        w(32),
        3,
        1,
        1,
        Activation::Leaky,
        true,
    )?));
    net.push(Layer::conv(Conv2d::new(
        w(32),
        w(16),
        1,
        1,
        0,
        Activation::Leaky,
        true,
    )?));
    net.push(Layer::conv(Conv2d::new(
        w(16),
        w(32),
        3,
        1,
        1,
        Activation::Leaky,
        true,
    )?));
    net.push(Layer::conv(Conv2d::new(
        w(32),
        head,
        1,
        1,
        0,
        Activation::Linear,
        false,
    )?));
    net.push(Layer::region(RegionLayer::new(RegionConfig {
        anchors,
        classes,
    })?));
    Ok(net)
}

/// The input sizes the paper's Section IV sweep covers (352–608 in
/// Darknet's canonical 32-pixel steps).
pub const PAPER_INPUT_SIZES: [usize; 9] = [352, 384, 416, 448, 480, 512, 544, 608, 576];

/// Input sizes in ascending order (the unsorted constant preserves the
/// paper's table ordering quirk; use this for sweeps).
pub fn input_sizes_sorted() -> Vec<usize> {
    let mut sizes = PAPER_INPUT_SIZES.to_vec();
    sizes.sort_unstable();
    sizes
}

/// The paper's Section IV resolution sweep as a runtime degradation
/// ladder: ascending input sizes an overloaded deployment can walk down
/// (608 → … → 352) trading accuracy for throughput, and back up once the
/// load clears. This is the ladder `dronet-detect`'s degradation
/// controller shifts along.
pub fn resolution_ladder() -> Vec<usize> {
    input_sizes_sorted()
}

/// The next rung *below* `input` on the paper ladder, or `None` when
/// already at (or below) the 352-pixel floor.
pub fn step_down(input: usize) -> Option<usize> {
    resolution_ladder().into_iter().rev().find(|&s| s < input)
}

/// The next rung *above* `input` on the paper ladder, or `None` when
/// already at (or above) the 608-pixel ceiling.
pub fn step_up(input: usize) -> Option<usize> {
    resolution_ladder().into_iter().find(|&s| s > input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_nn::summary::NetworkSummary;

    #[test]
    fn all_models_build_and_have_nine_convs() {
        for id in ModelId::ALL {
            let net = build(id, 416).unwrap();
            let summary = NetworkSummary::of(id.name(), &net);
            assert_eq!(summary.conv_count(), 9, "{id}");
            let pools = summary.maxpool_count();
            assert!(
                (4..=6).contains(&pools),
                "{id} has {pools} maxpools, paper says 4-6"
            );
        }
    }

    #[test]
    fn flop_ratios_match_paper_shape() {
        let gflops = |id: ModelId| {
            let net = build(id, 416).unwrap();
            dronet_nn::cost::network_cost(&net).total_gflops()
        };
        let voc = gflops(ModelId::TinyYoloVoc);
        let net = gflops(ModelId::TinyYoloNet);
        let small = gflops(ModelId::SmallYoloV3);
        let dronet = gflops(ModelId::DroNet);

        // Tiny-YOLO-VOC is the published ~6.9 GFLOP model.
        assert!((voc - 6.9).abs() < 0.6, "TinyYoloVoc {voc} GFLOPs");
        // Paper: TinyYoloNet ~10x faster than TinyYoloVoc (we accept 6-12x
        // in pure FLOPs; fixed per-layer overheads push wall-clock higher).
        let r_net = voc / net;
        assert!((5.0..=13.0).contains(&r_net), "voc/net = {r_net}");
        // Paper: DroNet ~30x faster than TinyYoloVoc.
        let r_dronet = voc / dronet;
        assert!((20.0..=40.0).contains(&r_dronet), "voc/dronet = {r_dronet}");
        // SmallYoloV3 is the fastest model.
        assert!(small < dronet, "small {small} vs dronet {dronet}");
        // Ordering: voc > net > dronet > small.
        assert!(voc > net && net > dronet && dronet > small);
    }

    #[test]
    fn output_grids_at_paper_sizes() {
        // DroNet downsamples 32x: 512 -> 16x16 grid with 30 channels.
        let net = build(ModelId::DroNet, 512).unwrap();
        assert_eq!(net.output_chw(), (30, 16, 16));
        // SmallYoloV3 downsamples 16x: 416 -> 26x26.
        let net = build(ModelId::SmallYoloV3, 416).unwrap();
        assert_eq!(net.output_chw(), (30, 26, 26));
        // TinyYoloVoc at 416 gives the classic 13x13.
        let net = build(ModelId::TinyYoloVoc, 416).unwrap();
        assert_eq!(net.output_chw(), (30, 13, 13));
    }

    #[test]
    fn input_size_sweep_changes_cost_quadratically() {
        let g352 =
            dronet_nn::cost::network_cost(&build(ModelId::DroNet, 352).unwrap()).total_gflops();
        let g608 =
            dronet_nn::cost::network_cost(&build(ModelId::DroNet, 608).unwrap()).total_gflops();
        let ratio = g608 / g352;
        let expected = (608.0f64 / 352.0).powi(2);
        assert!(
            (ratio / expected - 1.0).abs() < 0.1,
            "ratio {ratio} vs {expected}"
        );
    }

    #[test]
    fn names_parse_roundtrip() {
        for id in ModelId::ALL {
            assert_eq!(id.name().parse::<ModelId>().unwrap(), id);
        }
        assert!("yolo9000".parse::<ModelId>().is_err());
        assert_eq!(
            "tiny-yolo-voc".parse::<ModelId>().unwrap(),
            ModelId::TinyYoloVoc
        );
    }

    #[test]
    fn defaults_match_paper_selection() {
        assert_eq!(ModelId::DroNet.default_input(), 512);
        let net = build_default(ModelId::DroNet).unwrap();
        assert_eq!(net.input_chw(), (3, 512, 512));
    }

    #[test]
    fn zero_input_is_rejected() {
        assert!(build(ModelId::DroNet, 0).is_err());
    }

    #[test]
    fn paper_sweep_sizes_are_canonical() {
        let sorted = input_sizes_sorted();
        assert_eq!(sorted.first(), Some(&352));
        assert_eq!(sorted.last(), Some(&608));
        assert!(sorted.windows(2).all(|w| w[1] - w[0] == 32));
    }

    #[test]
    fn ladder_steps_walk_the_sweep() {
        assert_eq!(resolution_ladder(), input_sizes_sorted());
        assert_eq!(step_down(608), Some(576));
        assert_eq!(step_down(416), Some(384));
        assert_eq!(step_down(352), None, "floor of the ladder");
        assert_eq!(step_up(352), Some(384));
        assert_eq!(step_up(608), None, "ceiling of the ladder");
        // Off-ladder sizes snap to the nearest rung in the step direction.
        assert_eq!(step_down(500), Some(480));
        assert_eq!(step_up(500), Some(512));
        // Walking down from the top visits every rung exactly once.
        let mut s = 608;
        let mut visited = vec![s];
        while let Some(next) = step_down(s) {
            visited.push(next);
            s = next;
        }
        visited.reverse();
        assert_eq!(visited, resolution_ladder());
    }

    #[test]
    fn all_models_run_a_forward_pass_at_small_size() {
        use dronet_tensor::{Shape, Tensor};
        for id in ModelId::ALL {
            let mut net = build(id, 96).unwrap();
            let y = net
                .forward(&Tensor::zeros(Shape::nchw(1, 3, 96, 96)))
                .unwrap();
            assert_eq!(y.shape().channels(), 30, "{id}");
        }
    }
}
