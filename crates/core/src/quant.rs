//! INT8 post-training quantization — the paper's §V future-work item
//! ("applying finer-level optimizations to reduce bitwidth precisions"),
//! built out as a usable extension.
//!
//! The scheme is standard symmetric post-training quantization:
//!
//! * batch-norm parameters are **folded** into the convolution weights and
//!   bias (inference-only transform),
//! * weights are quantized per output channel to `i8`
//!   (`scale = max_abs / 127`),
//! * activations are quantized per tensor, dynamically, at each layer
//!   input,
//! * accumulation happens in `i32`, then results are rescaled to `f32`.
//!
//! [`QuantizedNetwork`] runs inference only; training stays in fp32.

use dronet_nn::{Activation, Conv2d, Layer, MaxPool2d, Network, NnError, RegionLayer, Result};
use dronet_tensor::im2col::{im2col, ConvGeometry};
use dronet_tensor::{Shape, Tensor};

/// A convolution whose weights are stored as per-output-channel symmetric
/// `i8` with batch norm pre-folded.
#[derive(Debug, Clone)]
pub struct QuantizedConv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    pad: usize,
    activation: Activation,
    /// `i8` weights, `[out_c][in_c*k*k]` row-major.
    qweights: Vec<i8>,
    /// Per-output-channel dequantization scales.
    wscales: Vec<f32>,
    /// Folded fp32 bias.
    bias: Vec<f32>,
}

impl QuantizedConv2d {
    /// Quantizes a trained fp32 convolution, folding its batch norm.
    pub fn from_conv(conv: &Conv2d) -> Self {
        let out_c = conv.out_channels();
        let fan = conv.in_channels() * conv.kernel() * conv.kernel();
        let w = conv.weights().as_slice();

        // Fold BN: w' = w * gamma / sqrt(var + eps); b' = bias - gamma*mean/sqrt(var+eps)
        // (conv bias plays the role of BN beta in the Darknet layout).
        let mut folded_w = vec![0.0f32; w.len()];
        let mut folded_b = conv.bias().to_vec();
        if let Some(bn) = conv.batch_norm() {
            for oc in 0..out_c {
                let inv_std = 1.0 / (bn.rolling_var()[oc] + dronet_nn::BatchNorm::EPS).sqrt();
                let g = bn.scales()[oc] * inv_std;
                for i in 0..fan {
                    folded_w[oc * fan + i] = w[oc * fan + i] * g;
                }
                folded_b[oc] -= bn.scales()[oc] * bn.rolling_mean()[oc] * inv_std;
            }
        } else {
            folded_w.copy_from_slice(w);
        }

        // Per-channel symmetric quantization.
        let mut qweights = vec![0i8; w.len()];
        let mut wscales = vec![1.0f32; out_c];
        for oc in 0..out_c {
            let row = &folded_w[oc * fan..(oc + 1) * fan];
            let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let scale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            wscales[oc] = scale;
            for (i, &v) in row.iter().enumerate() {
                qweights[oc * fan + i] = (v / scale).round().clamp(-127.0, 127.0) as i8;
            }
        }

        QuantizedConv2d {
            in_channels: conv.in_channels(),
            out_channels: out_c,
            kernel: conv.kernel(),
            stride: conv.stride(),
            pad: conv.pad(),
            activation: conv.activation(),
            qweights,
            wscales,
            bias: folded_b,
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Weight storage size in bytes (1 per weight instead of 4).
    pub fn weight_bytes(&self) -> usize {
        self.qweights.len() + 4 * (self.wscales.len() + self.bias.len())
    }

    /// Worst-case weight quantization error per channel:
    /// `max |w - dequant(quant(w))| <= scale / 2`.
    pub fn max_weight_error(&self) -> f32 {
        self.wscales.iter().fold(0.0f32, |m, &s| m.max(s / 2.0))
    }

    /// Integer-arithmetic forward pass over an NCHW batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on channel mismatch.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let s = x.shape();
        if s.rank() != 4 || s.channels() != self.in_channels {
            return Err(NnError::BadInput {
                expected: vec![0, self.in_channels, 0, 0],
                actual: s.dims().to_vec(),
            });
        }
        let (n, h, w) = (s.batch(), s.height(), s.width());
        let geom = ConvGeometry {
            channels: self.in_channels,
            height: h,
            width: w,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        };
        geom.validate().map_err(NnError::from)?;
        let (oh, ow) = (geom.out_height(), geom.out_width());
        let plane = oh * ow;
        let fan = geom.col_rows();
        let mut out = Tensor::zeros(Shape::nchw(n, self.out_channels, oh, ow));

        for b in 0..n {
            let item = x.batch_item(b)?;
            // Dynamic per-tensor activation quantization.
            let max_abs = item.as_slice().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let xscale = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            let cols = im2col(&item, &geom)?;
            let qcols: Vec<i8> = cols
                .as_slice()
                .iter()
                .map(|&v| (v / xscale).round().clamp(-127.0, 127.0) as i8)
                .collect();

            let dst = out.as_mut_slice();
            let base = b * self.out_channels * plane;
            for oc in 0..self.out_channels {
                let wrow = &self.qweights[oc * fan..(oc + 1) * fan];
                let deq = self.wscales[oc] * xscale;
                let bias = self.bias[oc];
                for col in 0..plane {
                    // i32 accumulation over the receptive field.
                    let mut acc = 0i32;
                    for (k, &wv) in wrow.iter().enumerate() {
                        acc += wv as i32 * qcols[k * plane + col] as i32;
                    }
                    let v = acc as f32 * deq + bias;
                    dst[base + oc * plane + col] = self.activation.apply(v);
                }
            }
        }
        Ok(out)
    }
}

/// An inference-only network with quantized convolutions.
#[derive(Debug, Clone)]
pub struct QuantizedNetwork {
    input_chw: (usize, usize, usize),
    layers: Vec<QuantLayer>,
}

#[derive(Debug, Clone)]
enum QuantLayer {
    Conv(QuantizedConv2d),
    MaxPool(MaxPool2d),
    Region(RegionLayer),
}

impl QuantizedNetwork {
    /// Quantizes every convolution of a trained fp32 network.
    pub fn from_network(net: &Network) -> Self {
        let layers = net
            .layers()
            .iter()
            .map(|layer| match layer {
                Layer::Conv(c) => QuantLayer::Conv(QuantizedConv2d::from_conv(c)),
                Layer::MaxPool(p) => QuantLayer::MaxPool(p.clone()),
                Layer::Region(r) => QuantLayer::Region(r.clone()),
            })
            .collect();
        QuantizedNetwork {
            input_chw: net.input_chw(),
            layers,
        }
    }

    /// Nominal input `(channels, height, width)`.
    pub fn input_chw(&self) -> (usize, usize, usize) {
        self.input_chw
    }

    /// Inference forward pass.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; see [`QuantizedConv2d::forward`].
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = match layer {
                QuantLayer::Conv(c) => c.forward(&cur)?,
                QuantLayer::MaxPool(p) => p.forward(&cur)?,
                QuantLayer::Region(r) => r.forward(&cur)?,
            };
        }
        Ok(cur)
    }

    /// Total weight bytes of the quantized model.
    pub fn weight_bytes(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                QuantLayer::Conv(c) => c.weight_bytes(),
                _ => 0,
            })
            .sum()
    }

    /// Compression ratio relative to the fp32 original.
    pub fn compression_vs(&self, fp32: &Network) -> f64 {
        let fp32_bytes = dronet_nn::cost::network_cost(fp32).weight_bytes();
        if fp32_bytes > 0.0 {
            fp32_bytes / self.weight_bytes() as f64
        } else {
            1.0
        }
    }
}

/// Mean absolute difference between fp32 and quantized network outputs on
/// an input batch — the headline accuracy-degradation figure of the
/// quantization ablation.
///
/// # Errors
///
/// Propagates forward errors from either network.
pub fn output_divergence(
    fp32: &mut Network,
    quantized: &mut QuantizedNetwork,
    x: &Tensor,
) -> Result<f32> {
    let a = fp32.forward(x)?;
    let b = quantized.forward(x)?;
    let diff = a.sub(&b).map_err(NnError::from)?;
    Ok(diff.as_slice().iter().map(|v| v.abs()).sum::<f32>() / diff.len().max(1) as f32)
}

/// Relative L2 error between fp32 and quantized outputs.
///
/// # Errors
///
/// Propagates forward errors from either network.
pub fn relative_output_error(
    fp32: &mut Network,
    quantized: &mut QuantizedNetwork,
    x: &Tensor,
) -> Result<f32> {
    let a = fp32.forward(x)?;
    let b = quantized.forward(x)?;
    let diff = a.sub(&b).map_err(NnError::from)?;
    let denom = a.norm().max(1e-9);
    Ok(diff.norm() / denom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_nn::RegionConfig;
    use dronet_tensor::init;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(seed)
    }

    fn small_net(bn: bool) -> Network {
        let mut net = Network::new(3, 32, 32);
        net.push(Layer::conv(
            Conv2d::new(3, 8, 3, 1, 1, Activation::Leaky, bn).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(8, 12, 1, 1, 0, Activation::Linear, false).unwrap(),
        ));
        net.push(Layer::region(
            RegionLayer::new(RegionConfig {
                anchors: vec![(1.0, 1.0), (2.0, 2.0)],
                classes: 1,
            })
            .unwrap(),
        ));
        let mut r = rng(3);
        net.init_weights(&mut r);
        net
    }

    #[test]
    fn quantized_output_tracks_fp32() {
        for bn in [false, true] {
            let mut net = small_net(bn);
            // Put realistic values in biases/BN so folding is exercised.
            if let Some(conv) = net.layers_mut()[0].as_conv_mut() {
                for (i, b) in conv.bias_mut().iter_mut().enumerate() {
                    *b = 0.05 * i as f32;
                }
                if let Some(bn) = conv.batch_norm_mut() {
                    for (i, s) in bn.scales_mut().iter_mut().enumerate() {
                        *s = 0.8 + 0.1 * i as f32;
                    }
                    for m in bn.rolling_mean_mut() {
                        *m = 0.1;
                    }
                    for v in bn.rolling_var_mut() {
                        *v = 0.5;
                    }
                }
            }
            let mut q = QuantizedNetwork::from_network(&net);
            let mut r = rng(9);
            let x = init::uniform(Shape::nchw(2, 3, 32, 32), 0.0, 1.0, &mut r);
            let rel = relative_output_error(&mut net, &mut q, &x).unwrap();
            assert!(rel < 0.08, "bn={bn}: relative error {rel}");
        }
    }

    #[test]
    fn compression_is_near_4x() {
        let net = small_net(true);
        let q = QuantizedNetwork::from_network(&net);
        // Tiny layers carry proportionally more fp32 side data (scales,
        // biases), so the ratio sits below the asymptotic 4x.
        let ratio = q.compression_vs(&net);
        assert!(
            (2.5..=4.5).contains(&ratio),
            "compression ratio {ratio} out of expected band"
        );
    }

    #[test]
    fn weight_error_bounded_by_half_scale() {
        let conv = Conv2d::new(3, 4, 3, 1, 1, Activation::Leaky, false).unwrap();
        let q = QuantizedConv2d::from_conv(&conv);
        let fan = 27;
        for oc in 0..4 {
            for i in 0..fan {
                let orig = conv.weights().as_slice()[oc * fan + i];
                let deq = q.qweights[oc * fan + i] as f32 * q.wscales[oc];
                assert!(
                    (orig - deq).abs() <= q.wscales[oc] / 2.0 + 1e-6,
                    "oc={oc} i={i}: {orig} vs {deq}"
                );
            }
        }
        assert!(q.max_weight_error() > 0.0);
    }

    #[test]
    fn zero_weights_quantize_cleanly() {
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, Activation::Linear, false).unwrap();
        conv.weights_mut().fill(0.0);
        let q = QuantizedConv2d::from_conv(&conv);
        let x = Tensor::ones(Shape::nchw(1, 1, 2, 2));
        let y = q.forward(&x).unwrap();
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn wrong_input_is_rejected() {
        let conv = Conv2d::new(3, 4, 3, 1, 1, Activation::Leaky, false).unwrap();
        let q = QuantizedConv2d::from_conv(&conv);
        assert!(q.forward(&Tensor::zeros(Shape::nchw(1, 2, 8, 8))).is_err());
    }

    #[test]
    fn quantized_detection_grid_matches() {
        let mut net = small_net(true);
        let mut q = QuantizedNetwork::from_network(&net);
        let x = Tensor::zeros(Shape::nchw(1, 3, 32, 32));
        let a = net.forward(&x).unwrap();
        let b = q.forward(&x).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert_eq!(q.input_chw(), net.input_chw());
    }
}
