use crate::http::HttpError;
use dronet_detect::DetectError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the detection server.
#[derive(Debug)]
pub enum ServeError {
    /// Binding, accepting, or socket I/O failed.
    Io(io::Error),
    /// The request bytes violated the HTTP grammar or a hard limit.
    Http(HttpError),
    /// The detection pipeline rejected or failed on the frame.
    Detect(DetectError),
    /// The request body was not a decodable PPM frame.
    BadFrame(String),
    /// The admission queue is full; the client should retry later.
    Overloaded,
    /// The server is draining and no longer admits work.
    Draining,
    /// A worker crashed (or its response channel died) while the request
    /// was in flight.
    WorkerFailed(String),
    /// The watchdog declared the worker processing this request wedged
    /// (stuck past its deadline) and failed its in-flight batch.
    WorkerWedged(String),
    /// The server is halted: every worker is dead and the rebuild budget
    /// is exhausted. Terminal until restart.
    Halted,
    /// The server did not produce a response within the deadline.
    ResponseTimeout,
    /// The [`crate::ServeConfig`] was invalid (zero workers, zero batch…).
    Config(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "I/O failure: {e}"),
            ServeError::Http(e) => write!(f, "bad request: {e}"),
            ServeError::Detect(e) => write!(f, "detection failure: {e}"),
            ServeError::BadFrame(msg) => write!(f, "bad frame: {msg}"),
            ServeError::Overloaded => write!(f, "admission queue full"),
            ServeError::Draining => write!(f, "server draining"),
            ServeError::WorkerFailed(msg) => write!(f, "worker failed: {msg}"),
            ServeError::WorkerWedged(msg) => write!(f, "worker wedged: {msg}"),
            ServeError::Halted => write!(f, "server halted: no live workers remain"),
            ServeError::ResponseTimeout => write!(f, "response deadline exceeded"),
            ServeError::Config(msg) => write!(f, "bad server config: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Http(e) => Some(e),
            ServeError::Detect(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<HttpError> for ServeError {
    fn from(e: HttpError) -> Self {
        ServeError::Http(e)
    }
}

impl From<DetectError> for ServeError {
    fn from(e: DetectError) -> Self {
        ServeError::Detect(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bounds_display_and_sources() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<ServeError>();
        assert!(ServeError::Overloaded.to_string().contains("queue full"));
        assert!(ServeError::Draining.to_string().contains("draining"));
        let e = ServeError::from(io::Error::other("x"));
        assert!(e.source().is_some());
        let e = ServeError::from(HttpError::TooManyHeaders { limit: 4 });
        assert!(e.source().is_some());
        let e = ServeError::from(DetectError::MissingRegionHead);
        assert!(e.source().is_some());
        assert!(ServeError::Overloaded.source().is_none());
    }
}
