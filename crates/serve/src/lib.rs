//! # dronet-serve
//!
//! A zero-dependency (std-only) HTTP/1.1 detection server, turning the
//! in-process [`dronet_detect::Detector`] into a network service — the
//! ROADMAP's "heavy traffic" deployment story for the paper's detector.
//!
//! Four layers, bottom up:
//!
//! * [`http`] — a hand-rolled, hardened HTTP parser: bounded head/body
//!   sizes, typed [`HttpError`]s, incremental feeding, the same
//!   hostile-input discipline as `data::ppm`. No input may panic.
//! * admission control — a strictly bounded queue ([`batcher::BatchQueue`]);
//!   when it is full the server sheds load with `503` + `Retry-After`
//!   instead of queueing unbounded latency, and every connection carries
//!   read/write deadlines.
//! * dynamic micro-batching — workers coalesce queued frames into one NCHW
//!   batch (dispatch when `max_batch` fills or `max_wait` expires,
//!   whichever first), run a single shared `Network::forward`, and
//!   de-multiplex per-image decode + NMS back to each waiting connection.
//!   Batch-1 traffic pays full per-request setup; coalesced traffic
//!   amortizes it — `BENCH_PR4.json` measures the curve.
//! * endpoints — `POST /detect` (binary P6 PPM body → JSON detections),
//!   `GET /metrics` (Prometheus text exposition of queue depth, batch-size
//!   histogram, admission drops, latency percentiles), `GET /healthz`
//!   (the supervisor's Healthy/Degraded/Halted machine), plus graceful
//!   drain on [`Server::shutdown`].
//!
//! Requests are traced end to end when a `Tracer` is attached: each frame
//! shows up as `serve.parse → serve.queue → serve.batch(n) → nn.forward →
//! detect.decode → detect.nms` spans under its own frame id.
//!
//! # Example
//!
//! ```
//! use dronet_serve::{Server, ServeConfig};
//! use dronet_detect::DetectorBuilder;
//! use dronet_obs::{Registry, Tracer};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), dronet_serve::ServeError> {
//! let factory: dronet_serve::DetectorFactory = Arc::new(|| {
//!     let net = dronet_core::zoo::build(dronet_core::ModelId::DroNet, 96)?;
//!     DetectorBuilder::new(net).build()
//! });
//! let server = Server::start(
//!     factory,
//!     ServeConfig::default(),
//!     &Registry::new(),
//!     &Tracer::noop(),
//! )?;
//! println!("listening on {}", server.addr());
//! let report = server.shutdown();
//! assert!(report.drained);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
mod error;
pub mod http;
pub mod json;
mod server;

pub use error::ServeError;
pub use http::{HttpError, HttpLimits, Method, Request, Response};
pub use server::{DetectorFactory, DrainReport, ServeConfig, Server};

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
