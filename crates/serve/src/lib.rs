//! # dronet-serve
//!
//! A zero-dependency (std-only) HTTP/1.1 detection server, turning the
//! in-process [`dronet_detect::Detector`] into a network service — the
//! ROADMAP's "heavy traffic" deployment story for the paper's detector.
//!
//! Four layers, bottom up:
//!
//! * [`http`] — a hand-rolled, hardened HTTP parser: bounded head/body
//!   sizes, typed [`HttpError`]s, incremental feeding, the same
//!   hostile-input discipline as `data::ppm`. No input may panic.
//! * admission control — a strictly bounded queue ([`batcher::BatchQueue`]);
//!   when it is full the server sheds load with `503` + `Retry-After`
//!   instead of queueing unbounded latency, and every connection carries
//!   read/write deadlines.
//! * dynamic micro-batching — workers coalesce queued frames into one NCHW
//!   batch (dispatch when `max_batch` fills or `max_wait` expires,
//!   whichever first), run a single shared `Network::forward`, and
//!   de-multiplex per-image decode + NMS back to each waiting connection.
//!   Batch-1 traffic pays full per-request setup; coalesced traffic
//!   amortizes it — `BENCH_PR4.json` measures the curve.
//! * endpoints — `POST /detect` (binary P6 PPM body → JSON detections),
//!   `GET /metrics` (Prometheus text exposition — `# HELP`/`# TYPE`,
//!   cumulative series, and rolling 10-second `_window_rate` /
//!   `_window_p99_seconds` gauges), `GET /healthz` (JSON body with the
//!   supervisor's Healthy/Degraded/Halted state and live queue depth;
//!   `503` when halted), plus graceful drain on [`Server::shutdown`].
//!
//! A live debug surface rides alongside, bounded by its own admission
//! budget (at most 2 in flight, excess shed with `503` + `Retry-After`):
//!
//! * `GET /debug/vars` — one JSON object holding the full metric
//!   registry, the rolling-window view, the SLO verdicts, and
//!   instrumented-allocator stats.
//! * `GET /debug/slo` — the declared service-level objectives (default:
//!   p99 detect latency and detect availability) with multi-window burn
//!   rates and breach verdicts, computed over the same rolling windows
//!   that feed `/metrics`.
//! * `GET /debug/alloc` — the allocator's human-readable report
//!   (live/peak bytes, size-class histogram, mmap-threshold count).
//! * `GET /debug/trace?ms=N` — arm the flight recorder for `N` ms
//!   (default 100, capped at 2000) and return Chrome `trace.json`,
//!   ready for Perfetto / `chrome://tracing`. Worker threads are
//!   labelled `serve-worker-N` via trace metadata events.
//!
//! Requests are traced end to end when a `Tracer` is attached: each frame
//! shows up as `serve.parse → serve.queue → serve.batch(n) → nn.forward →
//! detect.decode → detect.nms` spans under its own frame id.
//!
//! # Self-healing
//!
//! The serve path supervises itself the way the detect pipeline does:
//!
//! * **Connection hardening** — keep-alive with idle reaping, a header
//!   deadline (slowloris defense), a body deadline, write timeouts, and
//!   a global connection cap shedding `503` + `Retry-After` at accept.
//! * **Wedge watchdog** ([`watchdog`]) — workers stamp heartbeats around
//!   each batch; a worker stuck past `wedge_timeout` has its jobs failed
//!   with typed `500`s, its trace tail captured as a [`ServeBlackBox`]
//!   (also served at `GET /debug/blackbox`), and a replacement spawned
//!   under a bounded restart budget. Losing the last worker flips health
//!   to Halted and fails the backlog — never a hang, never a panic.
//! * **Brownout** ([`Server::start_scalable`] + [`BrownoutConfig`]) —
//!   sustained queue pressure walks the input-resolution ladder down
//!   (the paper's 608→352 accuracy-vs-FPS sweep as a runtime knob) and
//!   back up after calm, tracked by the `serve.input_resolution` gauge.
//! * **Chaos harness** ([`chaos`]) — seeded, deterministic adversarial
//!   TCP clients for proving all of the above from the wire.
//!
//! # SLOs and load shedding
//!
//! Every `POST /detect` outcome feeds a set of declared objectives
//! ([`ServeConfig::slos`], a [`dronet_obs::SloSet`]): a latency SLO
//! (p-fraction of successful requests under a threshold) and an
//! availability SLO (non-5xx fraction). Burn rates over a short and a
//! long rolling window are exported as `slo.*` gauges on `/metrics`, and
//! `GET /debug/slo` returns the full verdicts as JSON. Breach requires
//! *both* windows to burn, so a one-second blip doesn't page anyone and
//! a sustained burn can't hide behind an old, healthy average.
//!
//! Sheds are taxonomized (`serve.shed.queue_full` / `.draining` /
//! `.halted` / `.debug_busy`, plus `serve.timeout.*` and
//! `serve.error.worker`), and every `503` carries a *load-aware*
//! `Retry-After`: backlog depth over the queue's recent drain rate,
//! clamped to `[retry_after_secs, retry_after_max_secs]` — clients are
//! told to come back when the queue will plausibly have space, not after
//! a constant guess.
//!
//! # Example
//!
//! ```
//! use dronet_serve::{Server, ServeConfig};
//! use dronet_detect::DetectorBuilder;
//! use dronet_obs::{Registry, Tracer};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), dronet_serve::ServeError> {
//! let factory: dronet_serve::DetectorFactory = Arc::new(|| {
//!     let net = dronet_core::zoo::build(dronet_core::ModelId::DroNet, 96)?;
//!     DetectorBuilder::new(net).build()
//! });
//! let server = Server::start(
//!     factory,
//!     ServeConfig::default(),
//!     &Registry::new(),
//!     &Tracer::noop(),
//! )?;
//! println!("listening on {}", server.addr());
//! let report = server.shutdown();
//! assert!(report.drained);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod chaos;
mod error;
pub mod http;
pub mod json;
mod replica;
mod server;
pub mod watchdog;

pub use batcher::{HedgeState, WedgePlan, HEDGE_LEG, PRIMARY_LEG};
pub use chaos::{ReplicaChaosPlan, ReplicaKill, ReplicaKillKind};
pub use error::ServeError;
pub use http::{HttpError, HttpLimits, Method, Request, Response, Version};
pub use server::{
    BrownoutConfig, DetectorFactory, DrainReport, ServeConfig, Server, SizedDetectorFactory,
};
pub use watchdog::ServeBlackBox;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, ServeError>;
