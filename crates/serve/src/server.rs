//! The HTTP front end: accept loop, admission control, routing, drain.
//!
//! Threading model — deliberately boring: one accept thread, one OS thread
//! per connection (keep-alive, bounded requests per connection), a small
//! worker pool that owns the detectors, and one watchdog thread
//! supervising the pool ([`crate::watchdog`]). Connections never touch a
//! detector; they parse, enqueue, and block on a reply channel. All
//! batching cleverness lives in the [`crate::batcher`].
//!
//! The front door defends itself: a global connection cap sheds at accept
//! time with `503` + `Retry-After`, per-connection deadlines bound the
//! header crawl (slowloris), the body read, and keep-alive idleness, and
//! write timeouts stop a never-reading client from pinning a thread.

use crate::batcher::{HedgeState, Job, WedgePlan, HEDGE_LEG, PRIMARY_LEG};
use crate::chaos::ReplicaChaosPlan;
use crate::error::ServeError;
use crate::http::{parse_request, HttpError, HttpLimits, Method, Request, Response};
use crate::json::detections_json;
use crate::replica::{spawn_supervisor, ReplicaBuilder, ReplicaCore, ReplicaPolicy, ReplicaSet};
use crate::watchdog::{ServeBlackBox, WatchdogConfig};
use dronet_detect::{conform_frame, Detection, Detector, Health};
use dronet_obs::{ChromeTrace, JsonExporter, PromExporter, Registry, SloSet, SloSpec, Tracer};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// A detector constructor: each worker builds (and after a panic, rebuilds)
/// its own [`Detector`] from this.
pub type DetectorFactory = Arc<dyn Fn() -> dronet_detect::Result<Detector> + Send + Sync>;

/// A resolution-aware detector constructor: builds a detector at the given
/// square input size. Required for brownout, which rebuilds workers at
/// smaller ladder rungs under sustained load.
pub type SizedDetectorFactory = Arc<dyn Fn(usize) -> dronet_detect::Result<Detector> + Send + Sync>;

/// Brownout (adaptive-resolution) tuning. The ladder is the paper's
/// 352–608 sweep; under sustained queue pressure the server walks down
/// one rung at a time — answering every request a little coarser beats
/// shedding them — and walks back up after a calm cooldown.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Ascending input-size ladder; serving starts at the top rung.
    pub ladder: Vec<usize>,
    /// Queue depth at or above which a watchdog tick counts as overloaded.
    pub overload_queue: f64,
    /// Watchdog ticks per observation window.
    pub window_ticks: u32,
    /// Consecutive overloaded windows before a downshift.
    pub overload_windows: u32,
    /// Consecutive calm windows before an upshift.
    pub calm_windows: u32,
    /// Windows to hold still after any shift.
    pub cooldown_windows: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            ladder: vec![352, 416, 480, 544, 608],
            overload_queue: 1.0,
            window_ticks: 4,
            overload_windows: 2,
            calm_windows: 4,
            cooldown_windows: 1,
        }
    }
}

/// Server tuning knobs. The defaults favour a small embedded host: tight
/// limits, a short coalescing window, shallow queue.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one detector).
    pub workers: usize,
    /// Largest batch a single forward pass may carry.
    pub max_batch: usize,
    /// How long a batch head waits for stragglers before dispatch.
    pub max_wait: Duration,
    /// Admission queue capacity; beyond it requests are shed with `503`.
    pub queue_capacity: usize,
    /// Deadline for completing a request's body once its header is in.
    pub read_timeout: Duration,
    /// Per-connection socket write deadline (slow-reader defense).
    pub write_timeout: Duration,
    /// Deadline for receiving a complete request *header* (slowloris
    /// defense: a drip-feeding client gets `408`, not a parked thread).
    pub header_timeout: Duration,
    /// How long an idle keep-alive connection is held before reaping.
    pub keep_alive_timeout: Duration,
    /// Requests served per connection before `Connection: close`.
    pub max_requests_per_connection: usize,
    /// Simultaneous connections; beyond this, accept sheds with `503` +
    /// `Retry-After` before spawning a thread.
    pub max_connections: usize,
    /// How long a connection waits for its detections before giving up.
    pub response_timeout: Duration,
    /// Floor (and cold-start fallback) for the `Retry-After` advertised
    /// when shedding load. The actual hint is load-aware: derived from the
    /// queue's recent drain rate and backlog depth, clamped to
    /// `[retry_after_secs, retry_after_max_secs]`.
    pub retry_after_secs: u64,
    /// Upper bound for the load-aware `Retry-After` hint.
    pub retry_after_max_secs: u64,
    /// Service-level objectives evaluated over `POST /detect` outcomes and
    /// surfaced on `/metrics` (burn-rate gauges) and `GET /debug/slo`.
    /// Empty disables the SLO layer.
    pub slos: Vec<SloSpec>,
    /// HTTP parser limits.
    pub limits: HttpLimits,
    /// Artificial pre-forward worker delay — test/chaos knob that holds the
    /// queue full so `503` paths can be driven deterministically.
    pub dispatch_delay: Duration,
    /// Upper bound on waiting for in-flight connections during shutdown.
    pub drain_timeout: Duration,
    /// Watchdog tick period.
    pub watchdog_interval: Duration,
    /// A worker busy past this is declared wedged: its jobs fail with
    /// typed `500`s and a replacement is spawned.
    pub wedge_timeout: Duration,
    /// Replacement workers the watchdog may spawn over the server's life;
    /// exhausting the budget with no worker left halts the server.
    pub max_worker_restarts: usize,
    /// Quiet watchdog ticks before Degraded health recovers to Healthy.
    pub recovery_ticks: u32,
    /// Flight-recorder events retained per crash black box.
    pub black_box_events: usize,
    /// Adaptive-resolution brownout; requires [`Server::start_scalable`].
    /// With multiple replicas, each replica runs its *own* controller —
    /// an overloaded replica browns out alone.
    pub brownout: Option<BrownoutConfig>,
    /// Deterministic wedge injection — chaos/test knob.
    pub wedge_chaos: Option<WedgePlan>,
    /// Independent detector replicas. `1` (the default) keeps the
    /// original single-pool behaviour exactly; more adds health-aware
    /// dispatch, hedging, and quarantine with canary re-admission.
    pub replicas: usize,
    /// Hedged dispatch: when a `/detect` reply is still outstanding
    /// after this long, the frame is re-enqueued on the least-loaded
    /// healthy peer and the first success wins. `None` disables hedging.
    pub hedge_delay: Option<Duration>,
    /// Fault events (panics + deaths + wedges) accumulated over
    /// consecutive supervisor ticks at which a replica is quarantined.
    pub quarantine_faults: u64,
    /// Factory failures tolerated per quarantined slot before the slot
    /// is abandoned; all slots abandoned ⇒ service Halted.
    pub max_rebuild_failures: usize,
    /// Chaos knob: force this many canary probes to fail before
    /// re-admission succeeds (proves the canary gate gates).
    pub canary_chaos_failures: usize,
    /// Seeded replica-kill schedule — chaos/test knob.
    pub replica_chaos: Option<ReplicaChaosPlan>,
    /// How long a chaos-wedged batch holds (replica-kill `Wedge` events).
    pub chaos_wedge_hold: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            header_timeout: Duration::from_secs(2),
            keep_alive_timeout: Duration::from_secs(2),
            max_requests_per_connection: 64,
            max_connections: 256,
            response_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            retry_after_max_secs: 30,
            slos: vec![
                SloSpec::latency("detect_latency", Duration::from_millis(250), 0.99),
                SloSpec::availability("detect_availability", 0.999),
            ],
            limits: HttpLimits::default(),
            dispatch_delay: Duration::ZERO,
            drain_timeout: Duration::from_secs(10),
            watchdog_interval: Duration::from_millis(25),
            wedge_timeout: Duration::from_secs(10),
            max_worker_restarts: 4,
            recovery_ticks: 20,
            black_box_events: 64,
            brownout: None,
            wedge_chaos: None,
            replicas: 1,
            hedge_delay: None,
            quarantine_faults: 3,
            max_rebuild_failures: 8,
            canary_chaos_failures: 0,
            replica_chaos: None,
            chaos_wedge_hold: Duration::from_secs(30),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("workers", self.workers),
            ("max_batch", self.max_batch),
            ("queue_capacity", self.queue_capacity),
            ("max_connections", self.max_connections),
            (
                "max_requests_per_connection",
                self.max_requests_per_connection,
            ),
            ("replicas", self.replicas),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be >= 1")));
            }
        }
        if let Some(b) = &self.brownout {
            if b.ladder.is_empty() {
                return Err(ServeError::Config(
                    "brownout ladder must not be empty".to_string(),
                ));
            }
        }
        Ok(())
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    /// The replicated detector pools and their supervisor-facing state.
    replicas: Arc<ReplicaSet>,
    shutdown: Arc<AtomicBool>,
    active_connections: AtomicUsize,
    next_frame_id: AtomicU64,
    /// The detector's native input `(c, h, w)` at the ladder top.
    base_chw: (usize, usize, usize),
    obs: Registry,
    tracer: Tracer,
    config: ServeConfig,
    /// Declared objectives, fed from `POST /detect` outcomes.
    slo: SloSet,
    /// In-flight `/debug/*` requests; bounded so a slow trace capture
    /// cannot pile up connection threads.
    debug_inflight: AtomicUsize,
}

impl Shared {
    /// Load-aware `Retry-After` for every 503 this server hands out.
    fn retry_after(&self) -> u64 {
        self.replicas.retry_after_hint(
            self.config.retry_after_secs,
            self.config.retry_after_max_secs,
        )
    }
}

/// Most `/debug/*` requests served concurrently; the rest are shed with
/// `503` + `Retry-After` like any other overload.
const DEBUG_MAX_INFLIGHT: usize = 2;

/// Longest `/debug/trace` capture window accepted, milliseconds.
const DEBUG_TRACE_MAX_MS: u64 = 2_000;

/// RAII slot in the debug-endpoint admission budget.
struct DebugPermit<'a>(&'a AtomicUsize);

impl Drop for DebugPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn acquire_debug(shared: &Shared) -> Option<DebugPermit<'_>> {
    if shared.debug_inflight.fetch_add(1, Ordering::SeqCst) < DEBUG_MAX_INFLIGHT {
        Some(DebugPermit(&shared.debug_inflight))
    } else {
        shared.debug_inflight.fetch_sub(1, Ordering::SeqCst);
        None
    }
}

/// Handle to a running server; dropping it does NOT stop the server — call
/// [`Server::shutdown`] for a graceful drain.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: thread::JoinHandle<()>,
    supervisor_handle: thread::JoinHandle<()>,
}

/// What a graceful shutdown accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every in-flight connection completed inside the timeout.
    pub drained: bool,
    /// Connections still open when the drain timed out (0 when `drained`).
    pub abandoned_connections: usize,
}

impl Server {
    /// Binds, builds one detector per worker (failing fast on a broken
    /// factory), and starts the accept loop, worker pool, and watchdog.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for nonsensical knobs (including a brownout
    /// config, which needs [`Server::start_scalable`]),
    /// [`ServeError::Detect`] when the factory cannot build a detector, and
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn start(
        factory: DetectorFactory,
        config: ServeConfig,
        obs: &Registry,
        tracer: &Tracer,
    ) -> Result<Server, ServeError> {
        Server::start_inner(factory, None, config, obs, tracer)
    }

    /// Like [`Server::start`], but with a resolution-aware factory so the
    /// brownout controller can rebuild workers at smaller ladder rungs
    /// under load. Requires `config.brownout`; serving starts at the
    /// ladder's top rung.
    ///
    /// # Errors
    ///
    /// Everything [`Server::start`] returns, plus [`ServeError::Config`]
    /// when `config.brownout` is missing or its ladder is invalid.
    pub fn start_scalable(
        sized: SizedDetectorFactory,
        config: ServeConfig,
        obs: &Registry,
        tracer: &Tracer,
    ) -> Result<Server, ServeError> {
        let Some(brownout) = &config.brownout else {
            return Err(ServeError::Config(
                "start_scalable requires ServeConfig::brownout".to_string(),
            ));
        };
        let Some(&initial) = brownout.ladder.last() else {
            return Err(ServeError::Config(
                "brownout ladder must not be empty".to_string(),
            ));
        };
        let sized_for_plain = Arc::clone(&sized);
        let factory: DetectorFactory = Arc::new(move || sized_for_plain(initial));
        Server::start_inner(factory, Some(sized), config, obs, tracer)
    }

    fn start_inner(
        factory: DetectorFactory,
        sized: Option<SizedDetectorFactory>,
        config: ServeConfig,
        obs: &Registry,
        tracer: &Tracer,
    ) -> Result<Server, ServeError> {
        config.validate()?;
        if config.brownout.is_some() && sized.is_none() {
            return Err(ServeError::Config(
                "brownout requires a resolution-aware factory; start the server with \
                 Server::start_scalable"
                    .to_string(),
            ));
        }
        if obs.is_enabled() {
            // Rolling 10-second windows next to every cumulative series
            // (`/metrics` gains `_window_rate` / `_window_p99_seconds`
            // gauges), and `# HELP` text for the scrape-facing metrics.
            obs.enable_windows(Duration::from_secs(10), 10);
            for (name, help) in [
                ("serve.requests", "HTTP requests accepted since start"),
                ("serve.request", "End-to-end request latency"),
                ("serve.queue_wait", "Time jobs spend in the admission queue"),
                ("serve.queue_depth", "Jobs waiting in the admission queue"),
                (
                    "serve.batch_size",
                    "Coalesced batch sizes (count encoded as ns)",
                ),
                (
                    "serve.admission_drops",
                    "Requests shed because the queue was full",
                ),
                (
                    "serve.worker_panics",
                    "Worker panics survived by detector rebuild",
                ),
                (
                    "serve.worker_wedges",
                    "Workers declared stuck by the watchdog",
                ),
                (
                    "serve.worker_restarts",
                    "Replacement workers spawned by the watchdog",
                ),
                (
                    "serve.worker_deaths",
                    "Workers retired after unrecoverable failures",
                ),
                (
                    "serve.health",
                    "Server health: 0 healthy, 1 degraded, 2 halted",
                ),
                ("serve.connections", "Connections currently open"),
                (
                    "serve.conn_rejected",
                    "Connections shed at accept by the connection cap",
                ),
                (
                    "serve.keepalive_reaped",
                    "Idle keep-alive connections reaped by their deadline",
                ),
                (
                    "serve.input_resolution",
                    "Current detector input size (brownout ladder rung)",
                ),
                (
                    "serve.brownout_downshifts",
                    "Brownout resolution downshifts under load",
                ),
                (
                    "serve.brownout_upshifts",
                    "Brownout resolution recoveries after calm",
                ),
                (
                    "serve.black_box_captures",
                    "Crash black boxes captured by the watchdog",
                ),
                ("serve.http_errors", "Malformed or oversized HTTP requests"),
                (
                    "serve.forward",
                    "Batch forward wall time, recorded per request",
                ),
                (
                    "serve.write",
                    "Response serialization + socket write latency",
                ),
                (
                    "serve.shed.queue_full",
                    "Detect requests shed with 503: admission queue full",
                ),
                (
                    "serve.shed.draining",
                    "Detect requests shed with 503: server draining",
                ),
                (
                    "serve.shed.halted",
                    "Detect requests shed with 503: no workers left",
                ),
                (
                    "serve.shed.debug_busy",
                    "Debug requests shed with 503: debug budget exhausted",
                ),
                (
                    "serve.timeout.response",
                    "Detect requests that timed out waiting for a worker (504)",
                ),
                (
                    "serve.timeout.request",
                    "Requests that missed a header/body deadline (408)",
                ),
                (
                    "serve.error.worker",
                    "Detect requests failed by a worker error (500)",
                ),
                ("serve.responses.2xx", "Responses by status class: success"),
                ("serve.responses.3xx", "Responses by status class: redirect"),
                (
                    "serve.responses.4xx",
                    "Responses by status class: client error",
                ),
                (
                    "serve.responses.5xx",
                    "Responses by status class: server error",
                ),
                (
                    "serve.replicas_active",
                    "Replicas currently in rotation and serviceable",
                ),
                (
                    "serve.hedge.issued",
                    "Hedged dispatches issued to a peer replica",
                ),
                (
                    "serve.hedge.won",
                    "Hedged dispatches whose hedge leg answered first",
                ),
                (
                    "serve.hedge.wasted",
                    "Hedged dispatches whose primary leg still won",
                ),
                (
                    "serve.quarantine.entered",
                    "Replicas pulled out of rotation by the supervisor",
                ),
                (
                    "serve.quarantine.readmitted",
                    "Replicas re-admitted after passing the canary",
                ),
                (
                    "serve.quarantine.canary_failed",
                    "Rebuilt replicas rejected by the canary gate",
                ),
                ("detect.forward", "Network forward-pass latency"),
                ("detect.decode", "Region decode latency per image"),
                ("detect.nms", "Non-max-suppression latency per image"),
            ] {
                obs.describe(name, help);
            }
        }
        let builder = ReplicaBuilder {
            factory,
            sized_factory: sized,
            workers: config.workers,
            max_batch: config.max_batch,
            max_wait: config.max_wait,
            dispatch_delay: config.dispatch_delay,
            queue_capacity: config.queue_capacity,
            black_box_events: config.black_box_events,
            wedge_chaos: config.wedge_chaos.clone(),
            chaos_wedge_hold: config.chaos_wedge_hold,
            watchdog_cfg: WatchdogConfig {
                interval: config.watchdog_interval,
                wedge_timeout: config.wedge_timeout,
                max_restarts: config.max_worker_restarts,
                recovery_ticks: config.recovery_ticks,
            },
            brownout: config.brownout.clone(),
            obs: obs.clone(),
            tracer: tracer.clone(),
        };
        let policy = ReplicaPolicy {
            replicas: config.replicas,
            quarantine_faults: config.quarantine_faults,
            max_rebuild_failures: config.max_rebuild_failures,
            canary_chaos: AtomicUsize::new(config.canary_chaos_failures),
        };
        let replicas = ReplicaSet::new(builder, policy, config.replica_chaos.clone())?;
        let base_chw = replicas.base_chw;

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let shutdown = Arc::new(AtomicBool::new(false));
        let supervisor_handle = spawn_supervisor(
            Arc::clone(&replicas),
            config.watchdog_interval,
            Arc::clone(&shutdown),
        );

        let slo = SloSet::new(config.slos.clone());
        let shared = Arc::new(Shared {
            replicas,
            shutdown,
            active_connections: AtomicUsize::new(0),
            next_frame_id: AtomicU64::new(0),
            base_chw,
            obs: obs.clone(),
            tracer: tracer.clone(),
            config,
            slo,
            debug_inflight: AtomicUsize::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");

        Ok(Server {
            shared,
            local_addr,
            accept_handle,
            supervisor_handle,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Current service health (the `serve.health` gauge's source of
    /// truth). With replicas this is the *service* view: replica loss
    /// reads Degraded, total loss Halted.
    pub fn health(&self) -> Health {
        self.shared.replicas.service_health.get()
    }

    /// Crash black boxes captured so far, in replica order.
    pub fn black_boxes(&self) -> Vec<ServeBlackBox> {
        self.shared.replicas.black_boxes()
    }

    /// Graceful drain: stop accepting, let every in-flight connection
    /// finish (bounded by `drain_timeout`), flush the queue through the
    /// workers, then join them.
    pub fn shutdown(self) -> DrainReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.accept_handle.join();

        // In-flight connections may still be enqueueing; keep the queue
        // open for them and wait for the connection count to hit zero.
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(1));
        }
        let abandoned = self.shared.active_connections.load(Ordering::SeqCst);

        // Stop the replica supervisor before tearing down the cores so it
        // cannot quarantine or rebuild mid-teardown.
        let _ = self.supervisor_handle.join();

        // No connection can enqueue any more (or we stopped waiting for
        // it): drain every replica's backlog and retire its workers.
        self.shared.replicas.shutdown();
        DrainReport {
            drained: abandoned == 0,
            abandoned_connections: abandoned,
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let connections = shared.obs.gauge("serve.connections");
    let rejected = shared.obs.counter("serve.conn_rejected");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drops the listener → port closes
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.active_connections.load(Ordering::SeqCst) >= shared.config.max_connections
                {
                    rejected.inc();
                    shed_connection(stream, &shared);
                    continue;
                }
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                connections.set(shared.active_connections.load(Ordering::SeqCst) as f64);
                let conn_shared = Arc::clone(&shared);
                let conn_gauge = connections.clone();
                let spawned =
                    thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, &conn_shared);
                            conn_shared
                                .active_connections
                                .fetch_sub(1, Ordering::SeqCst);
                            conn_gauge
                                .set(conn_shared.active_connections.load(Ordering::SeqCst) as f64);
                        });
                if spawned.is_err() {
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                    connections.set(shared.active_connections.load(Ordering::SeqCst) as f64);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Sheds a connection at accept time: best-effort `503` + `Retry-After`
/// written without blocking the accept loop, then close.
fn shed_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    let response = Response::overloaded(shared.retry_after());
    let _ = response.write_to(&mut stream);
}

/// What one attempt to read a request off the wire produced.
enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Box<Request>),
    /// The peer closed (or errored) — nothing to answer.
    Closed,
    /// An idle keep-alive connection outlived its deadline.
    IdleReaped,
    /// Malformed/oversized/slow input, with the response to send.
    Error(Box<Response>),
}

/// Reads requests off the socket in a keep-alive loop: parse, route,
/// respond, repeat — until the peer closes, a deadline fires, the
/// request budget is spent, or the client asks to close.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let cfg = &shared.config;
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    // Residual buffer across requests: pipelined bytes after one request
    // are the start of the next.
    let mut buf: Vec<u8> = Vec::with_capacity(4096);
    let mut served = 0usize;
    loop {
        let request = match read_request(&mut stream, shared, &mut buf, served == 0) {
            ReadOutcome::Request(req) => req,
            ReadOutcome::Closed => return,
            ReadOutcome::IdleReaped => {
                shared.obs.counter("serve.keepalive_reaped").inc();
                return;
            }
            ReadOutcome::Error(response) => {
                shared.obs.counter("serve.http_errors").inc();
                if response.status == 408 {
                    shared.obs.counter("serve.timeout.request").inc();
                }
                let _ = response.write_to(&mut stream);
                return;
            }
        };
        let started = Instant::now();
        shared.obs.counter("serve.requests").inc();
        served += 1;
        let mut response = route(&request, shared);
        let close = request.wants_close()
            || served >= cfg.max_requests_per_connection
            || shared.shutdown.load(Ordering::SeqCst);
        response.close = close;
        let status = response.status;
        let write_started = Instant::now();
        if response.write_to(&mut stream).is_err() {
            return;
        }
        let _ = stream.flush();
        shared
            .obs
            .histogram("serve.write")
            .record(write_started.elapsed());
        let latency = started.elapsed();
        shared.obs.histogram("serve.request").record(latency);
        record_outcome(shared, &request.target, status, latency);
        if close {
            return;
        }
    }
}

/// Per-endpoint and per-status-class response accounting, plus the SLO
/// feed. Only `/detect` outcomes count against the declared objectives;
/// a shed (`503`) or worker failure burns availability budget, while
/// client errors (`4xx`) do not — a malformed PPM is not our outage.
fn record_outcome(shared: &Shared, target: &str, status: u16, latency: Duration) {
    let class = match status {
        200..=299 => "2xx",
        300..=399 => "3xx",
        400..=499 => "4xx",
        _ => "5xx",
    };
    let endpoint = endpoint_label(target);
    shared
        .obs
        .counter(&format!("serve.responses.{class}"))
        .inc();
    shared
        .obs
        .counter(&format!("serve.endpoint.{endpoint}.{class}"))
        .inc();
    if endpoint == "detect" {
        shared.slo.record(latency, status < 500);
    }
}

/// Collapses a request target into a bounded endpoint label so the
/// per-endpoint counter space cannot be grown by arbitrary paths.
fn endpoint_label(target: &str) -> &'static str {
    let path = target.split('?').next().unwrap_or(target);
    match path {
        "/detect" => "detect",
        "/metrics" => "metrics",
        "/healthz" => "healthz",
        p if p.starts_with("/debug/") => "debug",
        _ => "other",
    }
}

/// Drives the incremental parser against the socket under the deadline
/// ladder: keep-alive idle → reap; header crawl → `408` after
/// `header_timeout`; body crawl → `408` after `read_timeout` past the
/// header. Reads poll in short slices so shutdown is noticed promptly.
fn read_request(
    stream: &mut TcpStream,
    shared: &Shared,
    buf: &mut Vec<u8>,
    first: bool,
) -> ReadOutcome {
    let cfg = &shared.config;
    let conn_start = Instant::now();
    let mut first_byte_at: Option<Instant> = if buf.is_empty() {
        None
    } else {
        Some(conn_start)
    };
    let mut head_done_at: Option<Instant> = None;
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match parse_request(buf, &cfg.limits) {
            Ok(Some((req, consumed))) => {
                buf.drain(..consumed);
                return ReadOutcome::Request(Box::new(req));
            }
            Ok(None) => {}
            Err(e) => {
                // Transfer-Encoding is a capability we genuinely lack, not
                // a malformed request: RFC 9112 §6.1 says an origin server
                // that does not understand the transfer coding responds
                // 501, which also tells smugglers the framing is dead on
                // arrival rather than inviting a reformatted retry.
                let (status, reason) = match e {
                    HttpError::UnsupportedTransferEncoding => (501, "Not Implemented"),
                    _ => (400, "Bad Request"),
                };
                return ReadOutcome::Error(Box::new(Response::text(
                    status,
                    reason,
                    format!("{e}\n"),
                )));
            }
        }
        if head_done_at.is_none() && buf.windows(4).any(|w| w == b"\r\n\r\n") {
            head_done_at = Some(Instant::now());
        }
        // The deadline ladder, most-advanced state first.
        let (deadline, idle) = if let Some(t) = head_done_at {
            (t + cfg.read_timeout, false)
        } else if let Some(t) = first_byte_at {
            (t + cfg.header_timeout, false)
        } else if first {
            (conn_start + cfg.header_timeout, false)
        } else {
            (conn_start + cfg.keep_alive_timeout, true)
        };
        let now = Instant::now();
        if now >= deadline {
            return if idle {
                ReadOutcome::IdleReaped
            } else {
                ReadOutcome::Error(Box::new(Response::text(
                    408,
                    "Request Timeout",
                    "request not completed in time\n".to_string(),
                )))
            };
        }
        if idle && shared.shutdown.load(Ordering::SeqCst) {
            // Drain in progress and nothing started on this connection.
            return ReadOutcome::Closed;
        }
        let slice = (deadline - now).min(Duration::from_millis(100));
        let _ = stream.set_read_timeout(Some(slice.max(Duration::from_millis(1))));
        match stream.read(&mut chunk) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(n) => {
                if first_byte_at.is_none() {
                    first_byte_at = Some(Instant::now());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Poll slice elapsed; loop re-checks deadlines/shutdown.
            }
            Err(_) => return ReadOutcome::Closed,
        }
    }
}

fn route(request: &Request, shared: &Shared) -> Response {
    let (path, query) = match request.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.target.as_str(), ""),
    };
    match (&request.method, path) {
        (Method::Post, "/detect") => handle_detect(request, shared),
        (Method::Get, "/metrics") => {
            // Burn-rate gauges are computed on demand: a scrape sees the
            // rolling windows as of this instant, not a stale publish.
            shared.slo.publish(&shared.obs);
            let text = PromExporter::render(
                &shared.obs.snapshot(),
                &shared.obs.descriptions(),
                &shared.obs.window_snapshot(),
            );
            Response::new(200, "OK", PromExporter::CONTENT_TYPE, &text)
        }
        (Method::Get, "/healthz") => handle_healthz(shared),
        (Method::Get, "/debug/vars") => handle_debug_vars(shared),
        (Method::Get, "/debug/slo") => handle_debug_slo(shared),
        (Method::Get, "/debug/alloc") => handle_debug_alloc(shared),
        (Method::Get, "/debug/trace") => handle_debug_trace(shared, query),
        (Method::Get, "/debug/blackbox") => handle_debug_blackbox(shared),
        (Method::Get, "/debug/replicas") => handle_debug_replicas(shared),
        (
            _,
            "/detect" | "/metrics" | "/healthz" | "/debug/vars" | "/debug/slo" | "/debug/alloc"
            | "/debug/trace" | "/debug/blackbox" | "/debug/replicas",
        ) => Response::text(
            405,
            "Method Not Allowed",
            "method not allowed\n".to_string(),
        ),
        _ => Response::text(404, "Not Found", "no such endpoint\n".to_string()),
    }
}

fn handle_healthz(shared: &Shared) -> Response {
    let (status, reason, state) = match shared.replicas.service_health.get() {
        Health::Healthy => (200, "OK", "healthy"),
        Health::Degraded => (200, "OK", "degraded"),
        Health::Halted => (503, "Service Unavailable", "halted"),
    };
    let body = format!(
        "{{\"health\": \"{state}\", \"queue_depth\": {}, \"workers_alive\": {}, \
         \"input_resolution\": {}, \"black_boxes\": {}, \
         \"replicas_active\": {}, \"replicas_total\": {}}}\n",
        shared.replicas.queue_depth_total(),
        shared.replicas.workers_alive_total(),
        shared.replicas.current_input(),
        shared.replicas.black_boxes().len(),
        shared.replicas.active_count(),
        shared.config.replicas,
    );
    Response::new(status, reason, "application/json", &body)
}

/// `503` + `Retry-After` handed out when the debug admission budget
/// ([`DEBUG_MAX_INFLIGHT`]) is exhausted.
fn debug_busy(shared: &Shared) -> Response {
    shared.obs.counter("serve.shed.debug_busy").inc();
    let mut r = Response::text(
        503,
        "Service Unavailable",
        "too many debug requests in flight\n".to_string(),
    );
    r.retry_after = Some(shared.retry_after());
    r
}

/// `GET /debug/vars` — one JSON object with everything the process knows
/// about itself: the full metric registry, the rolling-window view, and
/// the allocator report.
fn handle_debug_vars(shared: &Shared) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    shared.slo.publish(&shared.obs);
    let metrics = JsonExporter::to_string(&shared.obs.snapshot());
    let windows = shared.obs.window_snapshot().to_json();
    let slo = shared.slo.to_json();
    let alloc = dronet_obs::alloc::stats_json();
    let body = format!(
        "{{\n\"metrics\": {metrics},\n\"windows\": {windows},\n\"slo\": {slo},\n\"alloc\": {alloc}\n}}\n"
    );
    Response::json(body)
}

/// `GET /debug/slo` — every declared objective with its target, error
/// budget, short/long burn-rate windows, and breach verdict as JSON
/// (booleans encoded as `0`/`1` — the in-tree parser has no literals).
/// Also refreshes the `slo.*` gauges so a scrape right after sees the
/// same numbers.
fn handle_debug_slo(shared: &Shared) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    shared.slo.publish(&shared.obs);
    let mut body = shared.slo.to_json();
    body.push('\n');
    Response::json(body)
}

/// `GET /debug/alloc` — the instrumented allocator's human-readable
/// report (or a one-line note when the counting allocator is not
/// installed in this binary).
fn handle_debug_alloc(shared: &Shared) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    Response::text(200, "OK", dronet_obs::alloc::report())
}

/// `GET /debug/blackbox` — every crash black box the watchdog has
/// captured, rendered as plain text (`404` when none exist — the happy
/// case).
fn handle_debug_blackbox(shared: &Shared) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    let boxes = shared.replicas.black_boxes();
    if boxes.is_empty() {
        return Response::text(404, "Not Found", "no black boxes captured\n".to_string());
    }
    let mut body = String::new();
    for b in &boxes {
        body.push_str(&b.to_text());
        body.push('\n');
    }
    Response::text(200, "OK", body)
}

/// `GET /debug/replicas` — per-replica rotation status, health, queue
/// depth, rolling p99, and quarantine history as JSON.
fn handle_debug_replicas(shared: &Shared) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    Response::json(shared.replicas.debug_json())
}

/// `GET /debug/trace?ms=N` — hold the connection for `N` milliseconds
/// (default 100, capped at [`DEBUG_TRACE_MAX_MS`]) while the flight
/// recorder keeps running, then return the tracer's ring as Chrome
/// `trace.json`. Requires the server to have been started with an
/// enabled [`Tracer`].
fn handle_debug_trace(shared: &Shared, query: &str) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    if !shared.tracer.is_enabled() {
        return Response::text(
            503,
            "Service Unavailable",
            "tracing is not enabled on this server\n".to_string(),
        );
    }
    let mut ms: u64 = 100;
    for pair in query.split('&') {
        if let Some(v) = pair.strip_prefix("ms=") {
            match v.parse::<u64>() {
                Ok(n) => ms = n.min(DEBUG_TRACE_MAX_MS),
                Err(_) => {
                    return Response::text(400, "Bad Request", format!("bad ms value: {v:?}\n"));
                }
            }
        }
    }
    thread::sleep(Duration::from_millis(ms));
    Response::json(ChromeTrace::to_string(&shared.tracer.snapshot()))
}

fn handle_detect(request: &Request, shared: &Shared) -> Response {
    // Health-aware dispatch: shallowest active queue, p99 tie-break. No
    // serviceable replica at all means the service is down.
    let Some(primary) = shared.replicas.pick_primary() else {
        shared.obs.counter("serve.shed.halted").inc();
        let mut r = Response::text(
            503,
            "Service Unavailable",
            format!("{}\n", ServeError::Halted),
        );
        r.retry_after = Some(shared.retry_after());
        return r;
    };
    let frame_id = shared.next_frame_id.fetch_add(1, Ordering::SeqCst) + 1;

    // serve.parse: body bytes → validated, conformed [1, c, h, w] frame.
    let parse_span = shared.tracer.frame_span("serve.parse", frame_id);
    let image = match dronet_data::ppm::read(request.body.as_slice()) {
        Ok(img) => img,
        Err(e) => {
            drop(parse_span);
            return Response::text(400, "Bad Request", format!("bad PPM body: {e}\n"));
        }
    };
    // Conform to the primary's brownout rung (workers re-resize
    // stragglers if the ladder moves between here and dispatch).
    let size = primary.current_input(shared.base_chw.1);
    let chw = (shared.base_chw.0, size, size);
    let frame = match conform_frame(image.to_tensor(), chw, frame_id as usize) {
        Ok(t) => t,
        Err(e) => {
            drop(parse_span);
            return Response::text(400, "Bad Request", format!("bad frame: {e}\n"));
        }
    };
    drop(parse_span);

    // Hedging is worth arming only when a peer exists to hedge onto.
    let can_hedge = shared.config.hedge_delay.is_some() && shared.replicas.active_count() > 1;
    let hedge_state = if can_hedge {
        Some(HedgeState::new())
    } else {
        None
    };
    let mut hedge_frame = if can_hedge { Some(frame.clone()) } else { None };

    // serve.queue: admission → detections handed back by a worker.
    let queue_span = shared.tracer.frame_span("serve.queue", frame_id);
    let (reply, receiver) = mpsc::channel();
    let started = Instant::now();
    let job = Job {
        frame_id,
        frame,
        enqueued: started,
        reply: reply.clone(),
        hedge: hedge_state.clone(),
        leg: PRIMARY_LEG,
    };
    match primary.queue.push(job) {
        Ok(()) => {}
        Err(ServeError::Overloaded) => {
            drop(queue_span);
            shared.obs.counter("serve.shed.queue_full").inc();
            return Response::overloaded(shared.retry_after());
        }
        Err(_) => {
            drop(queue_span);
            shared.obs.counter("serve.shed.draining").inc();
            let mut r = Response::text(
                503,
                "Service Unavailable",
                "server is draining\n".to_string(),
            );
            r.retry_after = Some(shared.retry_after());
            return r;
        }
    }

    // Wait for the first winning answer, firing at most one hedge when
    // the primary is at deadline risk. The connection keeps one sender
    // alive, so the receiver never disconnects spuriously.
    let deadline = started + shared.config.response_timeout;
    let hedge_at = shared.config.hedge_delay.map(|d| started + d);
    let mut hedged_to: Option<Arc<ReplicaCore>> = None;
    let mut hedge_spent = !can_hedge;
    let mut errors: Vec<ServeError> = Vec::new();
    let mut outcome: Option<Result<Vec<Detection>, ServeError>> = None;
    loop {
        let now = Instant::now();
        if now >= deadline {
            break;
        }
        let wait_until = match hedge_at {
            Some(h) if !hedge_spent && h < deadline => h.max(now),
            _ => deadline,
        };
        match receiver.recv_timeout(wait_until - now) {
            Ok(Ok(dets)) => {
                outcome = Some(Ok(dets));
                break;
            }
            Ok(Err(e)) => {
                // A leg failed with a typed error. With another leg still
                // in flight, hold out for it; otherwise this is the
                // answer.
                errors.push(e);
                let legs = if hedged_to.is_some() { 2 } else { 1 };
                if errors.len() >= legs {
                    outcome = Some(Err(errors.swap_remove(0)));
                    break;
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !hedge_spent && hedge_at.is_some_and(|h| Instant::now() >= h) {
                    hedge_spent = true;
                    if let (Some(peer), Some(hf)) =
                        (shared.replicas.pick_hedge(primary.id), hedge_frame.take())
                    {
                        let hedge_job = Job {
                            frame_id,
                            frame: hf,
                            enqueued: Instant::now(),
                            reply: reply.clone(),
                            hedge: hedge_state.clone(),
                            leg: HEDGE_LEG,
                        };
                        if peer.queue.push(hedge_job).is_ok() {
                            shared.replicas.hedge_issued.inc();
                            hedged_to = Some(peer);
                        }
                    }
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                outcome = Some(Err(ServeError::Halted));
                break;
            }
        }
    }
    drop(queue_span);
    // Settle the request: a still-queued losing leg is dropped at the
    // batcher's door instead of burning a forward.
    if let Some(hs) = &hedge_state {
        hs.settle();
        if hedged_to.is_some() {
            if hs.winner() == HEDGE_LEG {
                shared.replicas.hedge_won.inc();
            } else {
                shared.replicas.hedge_wasted.inc();
            }
        }
    }
    let elapsed = started.elapsed();
    match outcome {
        Some(Ok(detections)) => {
            // Credit the leg that actually answered, so the dispatcher's
            // p99 view tracks per-replica reality.
            let winner = match (&hedge_state, &hedged_to) {
                (Some(hs), Some(peer)) if hs.winner() == HEDGE_LEG => peer,
                _ => &primary,
            };
            winner.latency.record(elapsed);
            Response::json(detections_json(frame_id, &detections))
        }
        Some(Err(e @ (ServeError::Halted | ServeError::Overloaded | ServeError::Draining))) => {
            let reason = match e {
                ServeError::Halted => "halted",
                ServeError::Overloaded => "queue_full",
                _ => "draining",
            };
            shared.obs.counter(&format!("serve.shed.{reason}")).inc();
            let mut r = Response::text(503, "Service Unavailable", format!("{e}\n"));
            r.retry_after = Some(shared.retry_after());
            r
        }
        Some(Err(e)) => {
            shared.obs.counter("serve.error.worker").inc();
            Response::text(500, "Internal Server Error", format!("{e}\n"))
        }
        None => {
            // Deadline passed with no answer: charge the timeout to the
            // primary so routing steers away from it.
            primary.latency.record(elapsed);
            shared.obs.counter("serve.timeout.response").inc();
            Response::text(
                504,
                "Gateway Timeout",
                "detection did not complete in time\n".to_string(),
            )
        }
    }
}
