//! The HTTP front end: accept loop, admission control, routing, drain.
//!
//! Threading model — deliberately boring: one accept thread, one OS thread
//! per connection (each strictly one request, `Connection: close`), and a
//! small worker pool that owns the detectors. Connections never touch a
//! network; they parse, enqueue, and block on a reply channel. All
//! cleverness lives in the [`crate::batcher`].

use crate::batcher::{spawn_worker, BatchQueue, Job, WorkerContext};
use crate::error::ServeError;
use crate::http::{parse_request, HttpLimits, Method, Request, Response};
use crate::json::detections_json;
use dronet_detect::{conform_frame, Detector, Health};
use dronet_obs::{ChromeTrace, JsonExporter, PromExporter, Registry, Tracer};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// A detector constructor: each worker builds (and after a panic, rebuilds)
/// its own [`Detector`] from this.
pub type DetectorFactory = Arc<dyn Fn() -> dronet_detect::Result<Detector> + Send + Sync>;

/// Server tuning knobs. The defaults favour a small embedded host: tight
/// limits, a short coalescing window, shallow queue.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port `0` picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each owns one detector).
    pub workers: usize,
    /// Largest batch a single forward pass may carry.
    pub max_batch: usize,
    /// How long a batch head waits for stragglers before dispatch.
    pub max_wait: Duration,
    /// Admission queue capacity; beyond it requests are shed with `503`.
    pub queue_capacity: usize,
    /// Per-connection socket read deadline.
    pub read_timeout: Duration,
    /// Per-connection socket write deadline.
    pub write_timeout: Duration,
    /// How long a connection waits for its detections before giving up.
    pub response_timeout: Duration,
    /// `Retry-After` seconds advertised when shedding load.
    pub retry_after_secs: u64,
    /// HTTP parser limits.
    pub limits: HttpLimits,
    /// Artificial pre-forward worker delay — test/chaos knob that holds the
    /// queue full so `503` paths can be driven deterministically.
    pub dispatch_delay: Duration,
    /// Upper bound on waiting for in-flight connections during shutdown.
    pub drain_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_batch: 8,
            max_wait: Duration::from_millis(2),
            queue_capacity: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            response_timeout: Duration::from_secs(30),
            retry_after_secs: 1,
            limits: HttpLimits::default(),
            dispatch_delay: Duration::ZERO,
            drain_timeout: Duration::from_secs(10),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("workers", self.workers),
            ("max_batch", self.max_batch),
            ("queue_capacity", self.queue_capacity),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be >= 1")));
            }
        }
        Ok(())
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    queue: Arc<BatchQueue>,
    shutdown: AtomicBool,
    active_connections: AtomicUsize,
    health: Arc<AtomicU8>,
    next_frame_id: AtomicU64,
    input_chw: (usize, usize, usize),
    obs: Registry,
    tracer: Tracer,
    config: ServeConfig,
    /// In-flight `/debug/*` requests; bounded so a slow trace capture
    /// cannot pile up connection threads.
    debug_inflight: AtomicUsize,
}

/// Most `/debug/*` requests served concurrently; the rest are shed with
/// `503` + `Retry-After` like any other overload.
const DEBUG_MAX_INFLIGHT: usize = 2;

/// Longest `/debug/trace` capture window accepted, milliseconds.
const DEBUG_TRACE_MAX_MS: u64 = 2_000;

/// RAII slot in the debug-endpoint admission budget.
struct DebugPermit<'a>(&'a AtomicUsize);

impl Drop for DebugPermit<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn acquire_debug(shared: &Shared) -> Option<DebugPermit<'_>> {
    if shared.debug_inflight.fetch_add(1, Ordering::SeqCst) < DEBUG_MAX_INFLIGHT {
        Some(DebugPermit(&shared.debug_inflight))
    } else {
        shared.debug_inflight.fetch_sub(1, Ordering::SeqCst);
        None
    }
}

/// Handle to a running server; dropping it does NOT stop the server — call
/// [`Server::shutdown`] for a graceful drain.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_handle: thread::JoinHandle<()>,
    worker_handles: Vec<thread::JoinHandle<()>>,
}

/// What a graceful shutdown accomplished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether every in-flight connection completed inside the timeout.
    pub drained: bool,
    /// Connections still open when the drain timed out (0 when `drained`).
    pub abandoned_connections: usize,
}

impl Server {
    /// Binds, builds one detector per worker (failing fast on a broken
    /// factory), and starts the accept loop.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for nonsensical knobs,
    /// [`ServeError::Detect`] when the factory cannot build a detector, and
    /// [`ServeError::Io`] when the address cannot be bound.
    pub fn start(
        factory: DetectorFactory,
        config: ServeConfig,
        obs: &Registry,
        tracer: &Tracer,
    ) -> Result<Server, ServeError> {
        config.validate()?;
        if obs.is_enabled() {
            // Rolling 10-second windows next to every cumulative series
            // (`/metrics` gains `_window_rate` / `_window_p99_seconds`
            // gauges), and `# HELP` text for the scrape-facing metrics.
            obs.enable_windows(Duration::from_secs(10), 10);
            for (name, help) in [
                ("serve.requests", "HTTP requests accepted since start"),
                ("serve.request", "End-to-end request latency"),
                ("serve.queue_wait", "Time jobs spend in the admission queue"),
                ("serve.queue_depth", "Jobs waiting in the admission queue"),
                (
                    "serve.batch_size",
                    "Coalesced batch sizes (count encoded as ns)",
                ),
                (
                    "serve.admission_drops",
                    "Requests shed because the queue was full",
                ),
                (
                    "serve.worker_panics",
                    "Worker panics survived by detector rebuild",
                ),
                (
                    "serve.health",
                    "Server health: 0 healthy, 1 degraded, 2 halted",
                ),
                ("serve.http_errors", "Malformed or oversized HTTP requests"),
                ("detect.forward", "Network forward-pass latency"),
                ("detect.decode", "Region decode latency per image"),
                ("detect.nms", "Non-max-suppression latency per image"),
            ] {
                obs.describe(name, help);
            }
        }
        let mut detectors = Vec::with_capacity(config.workers);
        for _ in 0..config.workers {
            let mut det = factory()?;
            // The server's registry and tracer win over whatever the
            // factory attached: /metrics and the flight recorder must see
            // every worker's detect.* stages.
            if obs.is_enabled() {
                det.set_observability(obs);
            }
            if tracer.is_enabled() {
                det.set_tracing(tracer);
            }
            detectors.push(det);
        }
        let input_chw = detectors[0].input_chw();

        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let queue = BatchQueue::new(config.queue_capacity, obs);
        let health = Arc::new(AtomicU8::new(Health::Healthy.as_metric() as u8));
        let health_gauge = obs.gauge("serve.health");
        health_gauge.set(Health::Healthy.as_metric());

        let worker_handles = detectors
            .into_iter()
            .enumerate()
            .map(|(i, det)| {
                spawn_worker(
                    i,
                    det,
                    WorkerContext {
                        queue: Arc::clone(&queue),
                        factory: Arc::clone(&factory),
                        max_batch: config.max_batch,
                        max_wait: config.max_wait,
                        dispatch_delay: config.dispatch_delay,
                        health: Arc::clone(&health),
                        health_gauge: health_gauge.clone(),
                        batch_size_hist: obs.histogram("serve.batch_size"),
                        queue_wait_hist: obs.histogram("serve.queue_wait"),
                        panics: obs.counter("serve.worker_panics"),
                        obs: obs.clone(),
                        tracer: tracer.clone(),
                    },
                )
            })
            .collect();

        let shared = Arc::new(Shared {
            queue,
            shutdown: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            health,
            next_frame_id: AtomicU64::new(0),
            input_chw,
            obs: obs.clone(),
            tracer: tracer.clone(),
            config,
            debug_inflight: AtomicUsize::new(0),
        });

        let accept_shared = Arc::clone(&shared);
        let accept_handle = thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, accept_shared))
            .expect("spawn accept thread");

        Ok(Server {
            shared,
            local_addr,
            accept_handle,
            worker_handles,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Graceful drain: stop accepting, let every in-flight connection
    /// finish (bounded by `drain_timeout`), flush the queue through the
    /// workers, then join them.
    pub fn shutdown(self) -> DrainReport {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = self.accept_handle.join();

        // In-flight connections may still be enqueueing; keep the queue
        // open for them and wait for the connection count to hit zero.
        let deadline = Instant::now() + self.shared.config.drain_timeout;
        while self.shared.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(1));
        }
        let abandoned = self.shared.active_connections.load(Ordering::SeqCst);

        // No connection can enqueue any more (or we stopped waiting for
        // it): drain the backlog and retire the workers.
        self.shared.queue.close();
        for h in self.worker_handles {
            let _ = h.join();
        }
        self.shared
            .health
            .store(Health::Halted.as_metric() as u8, Ordering::SeqCst);
        self.shared
            .obs
            .gauge("serve.health")
            .set(Health::Halted.as_metric());
        DrainReport {
            drained: abandoned == 0,
            abandoned_connections: abandoned,
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // drops the listener → port closes
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.active_connections.fetch_add(1, Ordering::SeqCst);
                let conn_shared = Arc::clone(&shared);
                let spawned =
                    thread::Builder::new()
                        .name("serve-conn".to_string())
                        .spawn(move || {
                            handle_connection(stream, &conn_shared);
                            conn_shared
                                .active_connections
                                .fetch_sub(1, Ordering::SeqCst);
                        });
                if spawned.is_err() {
                    shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Reads one request off the socket (incremental parse under the limits),
/// routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let started = Instant::now();
    let cfg = &shared.config;
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    shared.obs.counter("serve.requests").inc();

    let request = match read_request(&mut stream, &cfg.limits, cfg.read_timeout) {
        Ok(Some(req)) => req,
        Ok(None) => return, // peer closed before completing a request
        Err(response) => {
            shared.obs.counter("serve.http_errors").inc();
            let _ = response.write_to(&mut stream);
            return;
        }
    };

    let response = route(&request, shared);
    let _ = response.write_to(&mut stream);
    let _ = stream.flush();
    shared
        .obs
        .histogram("serve.request")
        .record(started.elapsed());
}

/// Drives the incremental parser against the socket. Returns `Ok(None)`
/// when the peer hangs up cleanly before a full request, and a ready-made
/// error [`Response`] for malformed or oversized input.
fn read_request(
    stream: &mut TcpStream,
    limits: &HttpLimits,
    read_timeout: Duration,
) -> Result<Option<Request>, Box<Response>> {
    let mut buf = Vec::with_capacity(4096);
    let mut chunk = [0u8; 16 * 1024];
    let deadline = Instant::now() + read_timeout;
    loop {
        match parse_request(&buf, limits) {
            Ok(Some((req, _consumed))) => return Ok(Some(req)),
            Ok(None) => {}
            Err(e) => {
                return Err(Box::new(Response::text(
                    400,
                    "Bad Request",
                    format!("{e}\n"),
                )));
            }
        }
        if Instant::now() >= deadline {
            return Err(Box::new(Response::text(
                408,
                "Request Timeout",
                "request not completed in time\n".to_string(),
            )));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(None),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(Box::new(Response::text(
                    408,
                    "Request Timeout",
                    "request not completed in time\n".to_string(),
                )));
            }
            Err(_) => return Ok(None),
        }
    }
}

fn route(request: &Request, shared: &Shared) -> Response {
    let (path, query) = match request.target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (request.target.as_str(), ""),
    };
    match (&request.method, path) {
        (Method::Post, "/detect") => handle_detect(request, shared),
        (Method::Get, "/metrics") => {
            let text = PromExporter::render(
                &shared.obs.snapshot(),
                &shared.obs.descriptions(),
                &shared.obs.window_snapshot(),
            );
            Response::new(200, "OK", PromExporter::CONTENT_TYPE, &text)
        }
        (Method::Get, "/healthz") => handle_healthz(shared),
        (Method::Get, "/debug/vars") => handle_debug_vars(shared),
        (Method::Get, "/debug/alloc") => handle_debug_alloc(shared),
        (Method::Get, "/debug/trace") => handle_debug_trace(shared, query),
        (
            _,
            "/detect" | "/metrics" | "/healthz" | "/debug/vars" | "/debug/alloc" | "/debug/trace",
        ) => Response::text(
            405,
            "Method Not Allowed",
            "method not allowed\n".to_string(),
        ),
        _ => Response::text(404, "Not Found", "no such endpoint\n".to_string()),
    }
}

fn handle_healthz(shared: &Shared) -> Response {
    let health = shared.health.load(Ordering::SeqCst);
    let (status, reason, state) = match health {
        h if h == Health::Healthy.as_metric() as u8 => (200, "OK", "healthy"),
        h if h == Health::Degraded.as_metric() as u8 => (200, "OK", "degraded"),
        _ => (503, "Service Unavailable", "halted"),
    };
    let body = format!(
        "{{\"health\": \"{state}\", \"queue_depth\": {}}}\n",
        shared.queue.len()
    );
    Response::new(status, reason, "application/json", &body)
}

/// `503` + `Retry-After` handed out when the debug admission budget
/// ([`DEBUG_MAX_INFLIGHT`]) is exhausted.
fn debug_busy(shared: &Shared) -> Response {
    let mut r = Response::text(
        503,
        "Service Unavailable",
        "too many debug requests in flight\n".to_string(),
    );
    r.retry_after = Some(shared.config.retry_after_secs);
    r
}

/// `GET /debug/vars` — one JSON object with everything the process knows
/// about itself: the full metric registry, the rolling-window view, and
/// the allocator report.
fn handle_debug_vars(shared: &Shared) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    let metrics = JsonExporter::to_string(&shared.obs.snapshot());
    let windows = shared.obs.window_snapshot().to_json();
    let alloc = dronet_obs::alloc::stats_json();
    let body =
        format!("{{\n\"metrics\": {metrics},\n\"windows\": {windows},\n\"alloc\": {alloc}\n}}\n");
    Response::json(body)
}

/// `GET /debug/alloc` — the instrumented allocator's human-readable
/// report (or a one-line note when the counting allocator is not
/// installed in this binary).
fn handle_debug_alloc(shared: &Shared) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    Response::text(200, "OK", dronet_obs::alloc::report())
}

/// `GET /debug/trace?ms=N` — hold the connection for `N` milliseconds
/// (default 100, capped at [`DEBUG_TRACE_MAX_MS`]) while the flight
/// recorder keeps running, then return the tracer's ring as Chrome
/// `trace.json`. Requires the server to have been started with an
/// enabled [`Tracer`].
fn handle_debug_trace(shared: &Shared, query: &str) -> Response {
    let Some(_permit) = acquire_debug(shared) else {
        return debug_busy(shared);
    };
    if !shared.tracer.is_enabled() {
        return Response::text(
            503,
            "Service Unavailable",
            "tracing is not enabled on this server\n".to_string(),
        );
    }
    let mut ms: u64 = 100;
    for pair in query.split('&') {
        if let Some(v) = pair.strip_prefix("ms=") {
            match v.parse::<u64>() {
                Ok(n) => ms = n.min(DEBUG_TRACE_MAX_MS),
                Err(_) => {
                    return Response::text(400, "Bad Request", format!("bad ms value: {v:?}\n"));
                }
            }
        }
    }
    thread::sleep(Duration::from_millis(ms));
    Response::json(ChromeTrace::to_string(&shared.tracer.snapshot()))
}

fn handle_detect(request: &Request, shared: &Shared) -> Response {
    let frame_id = shared.next_frame_id.fetch_add(1, Ordering::SeqCst) + 1;

    // serve.parse: body bytes → validated, conformed [1, c, h, w] frame.
    let parse_span = shared.tracer.frame_span("serve.parse", frame_id);
    let image = match dronet_data::ppm::read(request.body.as_slice()) {
        Ok(img) => img,
        Err(e) => {
            drop(parse_span);
            return Response::text(400, "Bad Request", format!("bad PPM body: {e}\n"));
        }
    };
    let frame = match conform_frame(image.to_tensor(), shared.input_chw, frame_id as usize) {
        Ok(t) => t,
        Err(e) => {
            drop(parse_span);
            return Response::text(400, "Bad Request", format!("bad frame: {e}\n"));
        }
    };
    drop(parse_span);

    // serve.queue: admission → detections handed back by a worker.
    let queue_span = shared.tracer.frame_span("serve.queue", frame_id);
    let (reply, receiver) = mpsc::channel();
    let job = Job {
        frame_id,
        frame,
        enqueued: Instant::now(),
        reply,
    };
    match shared.queue.push(job) {
        Ok(()) => {}
        Err(ServeError::Overloaded) => {
            drop(queue_span);
            return Response::overloaded(shared.config.retry_after_secs);
        }
        Err(_) => {
            drop(queue_span);
            let mut r = Response::text(
                503,
                "Service Unavailable",
                "server is draining\n".to_string(),
            );
            r.retry_after = Some(shared.config.retry_after_secs);
            return r;
        }
    }
    let outcome = receiver.recv_timeout(shared.config.response_timeout);
    drop(queue_span);
    match outcome {
        Ok(Ok(detections)) => Response::json(detections_json(frame_id, &detections)),
        Ok(Err(e)) => Response::text(500, "Internal Server Error", format!("{e}\n")),
        Err(_) => Response::text(
            504,
            "Gateway Timeout",
            "detection did not complete in time\n".to_string(),
        ),
    }
}
