//! Hand-written JSON rendering for detection responses.
//!
//! The workspace is zero-dependency, so responses are assembled with the
//! same discipline as `bench_report`'s JSON emitter: a small `num`
//! formatter plus string building, self-checked in tests by round-tripping
//! through `obs::JsonValue::parse`.

use dronet_detect::Detection;
use std::fmt::Write as _;

/// Renders a finite float as a JSON number; non-finite values (an untrained
/// or NaN-poisoned network) degrade to `0.0` rather than emitting invalid
/// JSON — the in-tree `JsonValue` reader, like strict JSON, has no NaN, and
/// the workspace schema convention avoids `null`.
fn num(v: f32) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` omits the decimal point for integral floats; keep it so
        // readers see a float-typed field.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

/// Renders the `POST /detect` response body for one frame.
pub fn detections_json(frame_id: u64, detections: &[Detection]) -> String {
    let mut out = String::with_capacity(64 + detections.len() * 160);
    let _ = write!(
        out,
        "{{\"frame_id\":{frame_id},\"count\":{},\"detections\":[",
        detections.len()
    );
    for (i, d) in detections.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"cx\":{},\"cy\":{},\"w\":{},\"h\":{},\"objectness\":{},\"class\":{},\"class_prob\":{},\"score\":{}}}",
            num(d.bbox.cx),
            num(d.bbox.cy),
            num(d.bbox.w),
            num(d.bbox.h),
            num(d.objectness),
            d.class,
            num(d.class_prob),
            num(d.score()),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_metrics::BBox;
    use dronet_obs::JsonValue;

    fn det(cx: f32, score: f32) -> Detection {
        Detection {
            bbox: BBox::new(cx, 0.5, 0.25, 0.125),
            objectness: score,
            class: 0,
            class_prob: 1.0,
        }
    }

    #[test]
    fn renders_valid_json_round_trip() {
        let body = detections_json(42, &[det(0.5, 0.9), det(0.75, 0.8)]);
        let v = JsonValue::parse(&body).expect("valid JSON");
        assert_eq!(v.get("frame_id").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(v.get("count").and_then(JsonValue::as_f64), Some(2.0));
        let dets = v.get("detections").and_then(JsonValue::as_array).unwrap();
        assert_eq!(dets.len(), 2);
        assert_eq!(dets[0].get("cx").and_then(JsonValue::as_f64), Some(0.5));
        assert_eq!(dets[1].get("cx").and_then(JsonValue::as_f64), Some(0.75));
        assert_eq!(dets[0].get("class").and_then(JsonValue::as_f64), Some(0.0));
    }

    #[test]
    fn empty_detection_list_is_valid() {
        let body = detections_json(0, &[]);
        let v = JsonValue::parse(&body).expect("valid JSON");
        assert_eq!(v.get("count").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(
            v.get("detections")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn non_finite_values_degrade_to_zero() {
        let mut d = det(0.5, 0.9);
        d.objectness = f32::NAN;
        let body = detections_json(1, &[d]);
        assert!(body.contains("\"objectness\":0.0"));
        JsonValue::parse(&body).expect("still valid JSON");
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(num(1.0), "1.0");
        assert_eq!(num(0.5), "0.5");
        assert_eq!(num(-2.0), "-2.0");
    }
}
