//! Hand-rolled, hardened HTTP/1.1 request parsing and response writing.
//!
//! The parser follows the same hostile-input discipline as `data::ppm`:
//! every limit is enforced with checked arithmetic, every malformed byte
//! maps to a typed [`HttpError`], and no input — garbage, truncated, or
//! adversarial — may panic. Parsing is incremental: the caller feeds the
//! bytes read so far and gets back either a complete request (plus how many
//! bytes it consumed), "need more data", or a typed error.
//!
//! Only the subset the detection server needs is implemented: `GET`/`POST`
//! with `Content-Length` bodies. `Transfer-Encoding` is rejected outright
//! (typed, not ignored — request smuggling hinges on ambiguity between the
//! two framings).

use std::error::Error;
use std::fmt;
use std::io::{self, Write};

/// Request method. Unknown-but-grammatical tokens are preserved so the
/// router can answer `405` rather than the parser guessing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// Any other valid token (e.g. `PUT`, `DELETE`).
    Other(String),
}

impl Method {
    fn from_token(token: &str) -> Method {
        match token {
            "GET" => Method::Get,
            "POST" => Method::Post,
            other => Method::Other(other.to_string()),
        }
    }
}

/// HTTP version of a parsed request. Only the two 1.x versions are
/// accepted; they differ in their keep-alive default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0` — connections close by default.
    Http10,
    /// `HTTP/1.1` — connections persist by default.
    Http11,
}

/// A parsed request: method, target path, headers, raw body.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method.
    pub method: Method,
    /// The request target as sent (e.g. `/detect`).
    pub target: String,
    /// The HTTP version (governs the keep-alive default).
    pub version: Version,
    /// Header name/value pairs in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, looked up case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        let lower = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == lower)
            .map(|(_, v)| v.as_str())
    }

    /// Whether this request asks the connection to close after the
    /// response: an explicit `Connection: close` token, or HTTP/1.0
    /// without an explicit `keep-alive`.
    pub fn wants_close(&self) -> bool {
        let token = |t: &str| {
            self.header("connection")
                .is_some_and(|v| v.split(',').any(|part| part.trim().eq_ignore_ascii_case(t)))
        };
        match self.version {
            Version::Http11 => token("close"),
            Version::Http10 => !token("keep-alive"),
        }
    }
}

/// Hard limits the parser enforces. Defaults are deliberately small — this
/// serves detection frames, not arbitrary uploads.
#[derive(Debug, Clone)]
pub struct HttpLimits {
    /// Maximum bytes of request line + headers (before the blank line).
    pub max_head_bytes: usize,
    /// Maximum number of header fields.
    pub max_headers: usize,
    /// Maximum `Content-Length` the server will buffer.
    pub max_body_bytes: usize,
    /// Maximum request-target length.
    pub max_target_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits {
            max_head_bytes: 16 * 1024,
            max_headers: 64,
            // A 608x608 P6 frame is ~1.1 MiB; 8 MiB leaves generous slack.
            max_body_bytes: 8 * 1024 * 1024,
            max_target_bytes: 1024,
        }
    }
}

/// Typed HTTP parse failures. Each maps to a `400`-class response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Request line + headers exceeded [`HttpLimits::max_head_bytes`].
    HeadTooLarge {
        /// The configured limit.
        limit: usize,
    },
    /// The request line was not `METHOD SP target SP HTTP/1.x`.
    BadRequestLine,
    /// The method token was empty, overlong, or not a valid token.
    BadMethod,
    /// The target was empty, overlong, not origin-form, or carried
    /// non-visible bytes.
    BadTarget,
    /// The version was not `HTTP/1.0` or `HTTP/1.1`.
    BadVersion,
    /// More header fields than [`HttpLimits::max_headers`].
    TooManyHeaders {
        /// The configured limit.
        limit: usize,
    },
    /// A header line was malformed (no colon, illegal name or value bytes).
    BadHeader {
        /// Zero-based index of the offending header line.
        line: usize,
    },
    /// `Content-Length` was not a plain decimal integer.
    BadContentLength,
    /// Multiple `Content-Length` headers disagreed (or repeated).
    ConflictingContentLength,
    /// The declared body exceeds [`HttpLimits::max_body_bytes`].
    BodyTooLarge {
        /// The declared length.
        declared: u64,
        /// The configured limit.
        limit: usize,
    },
    /// A `Transfer-Encoding` header was present; chunked framing is
    /// unsupported and rejecting it closes the smuggling ambiguity.
    UnsupportedTransferEncoding,
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::HeadTooLarge { limit } => {
                write!(f, "request head exceeds {limit} bytes")
            }
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadMethod => write!(f, "malformed method token"),
            HttpError::BadTarget => write!(f, "malformed request target"),
            HttpError::BadVersion => write!(f, "unsupported HTTP version"),
            HttpError::TooManyHeaders { limit } => {
                write!(f, "more than {limit} header fields")
            }
            HttpError::BadHeader { line } => write!(f, "malformed header at line {line}"),
            HttpError::BadContentLength => write!(f, "malformed Content-Length"),
            HttpError::ConflictingContentLength => {
                write!(f, "conflicting Content-Length headers")
            }
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "declared body of {declared} bytes exceeds {limit}")
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "Transfer-Encoding is not supported")
            }
        }
    }
}

impl Error for HttpError {}

/// `tchar` per RFC 9110 §5.6.2 — the legal token alphabet for methods and
/// header names.
fn is_token_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)
}

fn is_target_byte(b: u8) -> bool {
    // Visible ASCII, no spaces: enough for origin-form targets.
    (0x21..=0x7e).contains(&b)
}

fn is_header_value_byte(b: u8) -> bool {
    b == b'\t' || (0x20..=0x7e).contains(&b)
}

/// Attempts to parse one request from the start of `buf`.
///
/// Returns `Ok(Some((request, consumed)))` when a full request (head and
/// declared body) is present, `Ok(None)` when more bytes are needed, and a
/// typed [`HttpError`] the moment the input is provably malformed — the
/// connection should then answer `400` and close.
///
/// # Errors
///
/// See [`HttpError`] for every rejection class.
pub fn parse_request(
    buf: &[u8],
    limits: &HttpLimits,
) -> Result<Option<(Request, usize)>, HttpError> {
    // Locate the end of the head (the CRLFCRLF terminator).
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n");
    let head_end = match head_end {
        Some(i) => {
            if i > limits.max_head_bytes {
                return Err(HttpError::HeadTooLarge {
                    limit: limits.max_head_bytes,
                });
            }
            i
        }
        None => {
            // No terminator yet: either wait for more bytes or give up once
            // the head could no longer fit under the limit.
            if buf.len() > limits.max_head_bytes.saturating_add(3) {
                return Err(HttpError::HeadTooLarge {
                    limit: limits.max_head_bytes,
                });
            }
            return Ok(None);
        }
    };

    let head = &buf[..head_end];
    let mut lines = head.split(|&b| b == b'\n').map(|l| match l.last() {
        Some(b'\r') => &l[..l.len() - 1],
        _ => l,
    });

    // Request line: METHOD SP target SP HTTP/1.x
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split(|&b| b == b' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if method.is_empty() || method.len() > 16 || !method.iter().all(|&b| is_token_byte(b)) {
        return Err(HttpError::BadMethod);
    }
    if target.is_empty()
        || target.len() > limits.max_target_bytes
        || target[0] != b'/'
        || !target.iter().all(|&b| is_target_byte(b))
    {
        return Err(HttpError::BadTarget);
    }
    let version = match version {
        b"HTTP/1.1" => Version::Http11,
        b"HTTP/1.0" => Version::Http10,
        _ => return Err(HttpError::BadVersion),
    };

    // Header fields.
    let mut headers = Vec::new();
    let mut content_length: Option<u64> = None;
    for (i, line) in lines.enumerate() {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let colon = line
            .iter()
            .position(|&b| b == b':')
            .ok_or(HttpError::BadHeader { line: i })?;
        let (name, rest) = line.split_at(colon);
        let value = &rest[1..];
        if name.is_empty() || !name.iter().all(|&b| is_token_byte(b)) {
            return Err(HttpError::BadHeader { line: i });
        }
        if !value.iter().all(|&b| is_header_value_byte(b)) {
            return Err(HttpError::BadHeader { line: i });
        }
        let name = String::from_utf8_lossy(name).to_ascii_lowercase();
        let value = String::from_utf8_lossy(value).trim().to_string();
        if name == "transfer-encoding" {
            return Err(HttpError::UnsupportedTransferEncoding);
        }
        if name == "content-length" {
            let parsed: u64 = if !value.is_empty() && value.bytes().all(|b| b.is_ascii_digit()) {
                value.parse().map_err(|_| HttpError::BadContentLength)?
            } else {
                return Err(HttpError::BadContentLength);
            };
            if content_length.is_some() {
                // Even agreeing duplicates are rejected: repetition is the
                // raw material of framing attacks.
                return Err(HttpError::ConflictingContentLength);
            }
            content_length = Some(parsed);
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > limits.max_body_bytes as u64 {
        return Err(HttpError::BodyTooLarge {
            declared: body_len,
            limit: limits.max_body_bytes,
        });
    }
    let body_len = body_len as usize;
    let total = head_end + 4 + body_len;
    if buf.len() < total {
        return Ok(None);
    }

    let request = Request {
        method: Method::from_token(&String::from_utf8_lossy(method)),
        target: String::from_utf8_lossy(target).to_string(),
        version,
        headers,
        body: buf[head_end + 4..total].to_vec(),
    };
    Ok(Some((request, total)))
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code, e.g. `200`.
    pub status: u16,
    /// Reason phrase, e.g. `OK`.
    pub reason: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` header (seconds), for `503` load shedding.
    pub retry_after: Option<u64>,
    /// Whether the connection closes after this response. Defaults to
    /// `true`; the connection loop clears it when the request (and the
    /// server's keep-alive budget) allow the connection to persist.
    pub close: bool,
}

impl Response {
    /// A response with the given status, reason, and body.
    pub fn new(status: u16, reason: &'static str, content_type: &'static str, body: &str) -> Self {
        Response {
            status,
            reason,
            content_type,
            body: body.as_bytes().to_vec(),
            retry_after: None,
            close: true,
        }
    }

    /// A `200 OK` JSON response.
    pub fn json(body: String) -> Self {
        Response {
            status: 200,
            reason: "OK",
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
            close: true,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, reason: &'static str, body: String) -> Self {
        Response {
            status,
            reason,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
            close: true,
        }
    }

    /// The `503` load-shedding response with a `Retry-After` hint.
    pub fn overloaded(retry_after_secs: u64) -> Self {
        let mut r = Response::text(
            503,
            "Service Unavailable",
            "admission queue full; retry later\n".to_string(),
        );
        r.retry_after = Some(retry_after_secs);
        r
    }

    /// Serializes the response, always with an explicit `Content-Length`
    /// and `Connection` header — framing is never left ambiguous. The
    /// connection header follows [`Response::close`]: `close` (the
    /// default, and forced on every error path) or `keep-alive`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_to(&self, writer: &mut dyn Write) -> io::Result<()> {
        write!(
            writer,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            self.reason,
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        )?;
        if let Some(secs) = self.retry_after {
            write!(writer, "Retry-After: {secs}\r\n")?;
        }
        writer.write_all(b"\r\n")?;
        writer.write_all(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(bytes: &[u8]) -> (Request, usize) {
        parse_request(bytes, &HttpLimits::default())
            .expect("parse")
            .expect("complete")
    }

    #[test]
    fn parses_get_without_body() {
        let (req, used) = parse_ok(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.target, "/metrics");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.body.is_empty());
        assert_eq!(used, b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n".len());
    }

    #[test]
    fn parses_post_with_body_and_reports_consumed() {
        let raw = b"POST /detect HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloEXTRA";
        let (req, used) = parse_ok(raw);
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"hello");
        assert_eq!(used, raw.len() - 5, "EXTRA is not consumed");
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        let limits = HttpLimits::default();
        assert!(matches!(parse_request(b"", &limits), Ok(None)));
        assert!(matches!(parse_request(b"GET / HT", &limits), Ok(None)));
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", &limits),
            Ok(None)
        ));
    }

    #[test]
    fn rejects_malformed_inputs_with_typed_errors() {
        let limits = HttpLimits::default();
        let cases: &[(&[u8], HttpError)] = &[
            (b"GET\r\n\r\n", HttpError::BadRequestLine),
            (b"GET / HTTP/1.1 extra\r\n\r\n", HttpError::BadRequestLine),
            (b"G@T / HTTP/1.1\r\n\r\n", HttpError::BadMethod),
            (b"GET nope HTTP/1.1\r\n\r\n", HttpError::BadTarget),
            (b"GET / HTTP/2.0\r\n\r\n", HttpError::BadVersion),
            (
                b"GET / HTTP/1.1\r\nno-colon\r\n\r\n",
                HttpError::BadHeader { line: 0 },
            ),
            (
                b"GET / HTTP/1.1\r\n: v\r\n\r\n",
                HttpError::BadHeader { line: 0 },
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
                HttpError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 1e3\r\n\r\n",
                HttpError::BadContentLength,
            ),
            // Smuggling raw material: sign prefixes, embedded lists, hex.
            (
                b"POST / HTTP/1.1\r\nContent-Length: +5\r\n\r\n",
                HttpError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 4, 4\r\n\r\n",
                HttpError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 0x10\r\n\r\n",
                HttpError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length:\r\n\r\n",
                HttpError::BadContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
                HttpError::ConflictingContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 9\r\n\r\n",
                HttpError::ConflictingContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\ncontent-length: 2\r\nCONTENT-LENGTH: 2\r\n\r\n",
                HttpError::ConflictingContentLength,
            ),
            (
                b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                HttpError::UnsupportedTransferEncoding,
            ),
        ];
        for (bytes, want) in cases {
            match parse_request(bytes, &limits) {
                Err(e) => assert_eq!(&e, want, "input {:?}", String::from_utf8_lossy(bytes)),
                other => panic!(
                    "input {:?}: expected {want:?}, got {other:?}",
                    String::from_utf8_lossy(bytes)
                ),
            }
        }
    }

    #[test]
    fn enforces_size_limits() {
        let limits = HttpLimits {
            max_head_bytes: 64,
            max_headers: 2,
            max_body_bytes: 10,
            max_target_bytes: 8,
        };
        // Head that can never fit.
        let huge = vec![b'A'; 200];
        assert!(matches!(
            parse_request(&huge, &limits),
            Err(HttpError::HeadTooLarge { .. })
        ));
        // Declared body over the cap is rejected before buffering it.
        assert!(matches!(
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\n", &limits),
            Err(HttpError::BodyTooLarge { declared: 11, .. })
        ));
        assert!(matches!(
            parse_request(b"GET /0123456789abcdef HTTP/1.1\r\n\r\n", &limits),
            Err(HttpError::BadTarget)
        ));
        assert!(matches!(
            parse_request(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n", &limits),
            Err(HttpError::TooManyHeaders { limit: 2 })
        ));
    }

    #[test]
    fn keep_alive_follows_version_and_connection_header() {
        let close: &[(&[u8], bool)] = &[
            (b"GET / HTTP/1.1\r\n\r\n", false),
            (b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: TE, Close\r\n\r\n", true),
            (b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n", false),
            (b"GET / HTTP/1.0\r\n\r\n", true),
            (b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", false),
        ];
        for (bytes, want) in close {
            let (req, _) = parse_ok(bytes);
            assert_eq!(
                req.wants_close(),
                *want,
                "input {:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn response_serialization_is_locked() {
        let mut out = Vec::new();
        Response::json("{\"ok\":true}".to_string())
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));

        let mut out = Vec::new();
        Response::overloaded(1).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));

        // Clearing `close` switches the connection header, nothing else.
        let mut keep = Response::json("{}".to_string());
        keep.close = false;
        let mut out = Vec::new();
        keep.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close"));
    }
}
