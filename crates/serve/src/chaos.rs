//! Seeded socket-level chaos: deterministic adversarial client schedules
//! for hammering a live server over real TCP.
//!
//! The unit-level fault machinery (`detect::fault`, the batcher's
//! `dispatch_delay`, [`crate::batcher::WedgePlan`]) injects failures
//! *inside* the process; this module attacks from the *wire*, the way a
//! hostile or broken network peer would: byte-at-a-time header drips
//! (slowloris), torn half-written bodies, mid-body disconnects, garbage
//! bytes, pipelined request bursts, and clients that send but never
//! read. A [`ChaosPlan`] is generated from a seed — same seed, same
//! plan, byte for byte — so a failing storm replays exactly under
//! `RUST_BACKTRACE=1`.
//!
//! The invariants the storm asserts live in `tests/serve_chaos.rs`: no
//! panic, every accepted request is answered with a well-formed response
//! or the connection is closed cleanly, metrics stay consistent, and the
//! server returns to Healthy once the storm passes.

use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// SplitMix64 — the repo's standard tiny deterministic generator (same
/// recurrence the trainer uses for shuffling). Not cryptographic; just
/// stable across platforms and dependency-free.
#[derive(Debug, Clone)]
pub struct ChaosRng(u64);

impl ChaosRng {
    /// A generator seeded for one plan.
    pub fn new(seed: u64) -> Self {
        ChaosRng(seed)
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn gen_range(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// One step of an adversarial client's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOp {
    /// Write these bytes in one call.
    Send(Vec<u8>),
    /// Write these bytes one at a time, pausing between each.
    Drip {
        /// The bytes to drip.
        bytes: Vec<u8>,
        /// Pause between consecutive bytes.
        pause: Duration,
    },
    /// Do nothing for a while (mid-request stall).
    Sleep(Duration),
    /// Half-close: shut down the write side, leaving reads open.
    CloseWrite,
    /// Drain whatever the server sends until EOF or the timeout.
    ReadToEnd {
        /// Give up reading after this long.
        timeout: Duration,
    },
    /// Keep the socket open without reading or writing, then drop it.
    HoldOpen(Duration),
}

/// A named adversarial client: a connection plus its schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientScript {
    /// Scenario label (drives artifact naming and assertions).
    pub name: String,
    /// The steps, run in order over one TCP connection.
    pub ops: Vec<ChaosOp>,
}

/// Knobs for plan generation.
#[derive(Debug, Clone)]
pub struct ChaosPlanConfig {
    /// Clients generated per scenario.
    pub clients_per_scenario: usize,
    /// A valid PPM frame body for well-formed `POST /detect` requests.
    pub frame: Vec<u8>,
    /// Pause between dripped bytes (slowloris cadence).
    pub drip_pause: Duration,
    /// Mid-body stall length (should exceed the server's `read_timeout`
    /// to exercise the `408` path).
    pub body_stall: Duration,
    /// How long never-reading clients hold their socket open.
    pub hold: Duration,
    /// Read budget for clients that drain responses.
    pub read_timeout: Duration,
    /// Requests per pipelined burst.
    pub burst: usize,
}

impl Default for ChaosPlanConfig {
    fn default() -> Self {
        ChaosPlanConfig {
            clients_per_scenario: 2,
            frame: Vec::new(),
            drip_pause: Duration::from_millis(2),
            body_stall: Duration::from_millis(400),
            hold: Duration::from_millis(300),
            read_timeout: Duration::from_secs(5),
            burst: 4,
        }
    }
}

/// A full storm: every scenario's clients, generated deterministically
/// from `seed`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosPlan {
    /// The seed that produced this plan (replay key).
    pub seed: u64,
    /// Every client schedule in the storm.
    pub clients: Vec<ClientScript>,
}

/// A well-formed `POST /detect` request carrying `frame` as its body.
pub fn detect_request(frame: &[u8], close: bool) -> Vec<u8> {
    let connection = if close { "close" } else { "keep-alive" };
    let mut req = format!(
        "POST /detect HTTP/1.1\r\nHost: chaos\r\nConnection: {connection}\r\nContent-Length: {}\r\n\r\n",
        frame.len()
    )
    .into_bytes();
    req.extend_from_slice(frame);
    req
}

impl ChaosPlan {
    /// Generates the storm for `seed`: seven scenario families, each
    /// contributing `clients_per_scenario` clients with seeded
    /// per-client variation. Same seed + config → identical plan.
    pub fn generate(seed: u64, cfg: &ChaosPlanConfig) -> ChaosPlan {
        let mut rng = ChaosRng::new(seed);
        let mut clients = Vec::new();
        let request = detect_request(&cfg.frame, true);
        for i in 0..cfg.clients_per_scenario {
            // 1. Slowloris: drip the whole request one byte at a time.
            clients.push(ClientScript {
                name: format!("drip_header_{i}"),
                ops: vec![
                    ChaosOp::Drip {
                        bytes: request.clone(),
                        pause: cfg.drip_pause,
                    },
                    ChaosOp::ReadToEnd {
                        timeout: cfg.read_timeout,
                    },
                ],
            });
            // 2. Torn write: most of the body, then half-close.
            let keep =
                request.len() - 1 - rng.gen_range(cfg.frame.len().max(2) as u64 / 2) as usize;
            clients.push(ClientScript {
                name: format!("torn_write_{i}"),
                ops: vec![
                    ChaosOp::Send(request[..keep].to_vec()),
                    ChaosOp::CloseWrite,
                    ChaosOp::ReadToEnd {
                        timeout: cfg.read_timeout,
                    },
                ],
            });
            // 3. Mid-body disconnect: partial request, then vanish.
            let cut = request.len() / 2 + rng.gen_range((request.len() / 4).max(1) as u64) as usize;
            clients.push(ClientScript {
                name: format!("mid_body_disconnect_{i}"),
                ops: vec![ChaosOp::Send(request[..cut].to_vec())],
            });
            // 4. Garbage: random bytes that are not HTTP.
            let mut garbage = vec![0u8; 64 + rng.gen_range(192) as usize];
            rng.fill(&mut garbage);
            garbage[0] = 0x01; // never a valid method byte
            clients.push(ClientScript {
                name: format!("garbage_{i}"),
                ops: vec![
                    ChaosOp::Send(garbage),
                    ChaosOp::ReadToEnd {
                        timeout: cfg.read_timeout,
                    },
                ],
            });
            // 5. Pipelined burst: back-to-back health checks on one
            // connection, last one asking to close.
            let mut burst = Vec::new();
            for k in 0..cfg.burst {
                let connection = if k + 1 == cfg.burst {
                    "close"
                } else {
                    "keep-alive"
                };
                burst.extend_from_slice(
                    format!(
                        "GET /healthz HTTP/1.1\r\nHost: chaos\r\nConnection: {connection}\r\n\r\n"
                    )
                    .as_bytes(),
                );
            }
            clients.push(ClientScript {
                name: format!("pipelined_burst_{i}"),
                ops: vec![
                    ChaosOp::Send(burst),
                    ChaosOp::ReadToEnd {
                        timeout: cfg.read_timeout,
                    },
                ],
            });
            // 6. Never-reading receiver: full request, then silence.
            clients.push(ClientScript {
                name: format!("never_read_{i}"),
                ops: vec![ChaosOp::Send(request.clone()), ChaosOp::HoldOpen(cfg.hold)],
            });
            // 7. Slow body: header fast, then stall past the body
            // deadline before finishing.
            let split = request.len() - cfg.frame.len().min(request.len()) / 2 - 1;
            clients.push(ClientScript {
                name: format!("slow_body_{i}"),
                ops: vec![
                    ChaosOp::Send(request[..split].to_vec()),
                    ChaosOp::Sleep(cfg.body_stall),
                    ChaosOp::Send(request[split..].to_vec()),
                    ChaosOp::ReadToEnd {
                        timeout: cfg.read_timeout,
                    },
                ],
            });
        }
        ChaosPlan { seed, clients }
    }
}

/// What a replica-kill event does to its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaKillKind {
    /// Every batch forward on the replica wedges (stuck-kernel model);
    /// the watchdog eventually declares the workers wedged, or — with a
    /// hold below the wedge timeout — the replica just turns slow and
    /// brownout pressure builds.
    Wedge,
    /// Every batch forward on the replica panics inside the worker's
    /// `catch_unwind` boundary (poisoned-detector model).
    Panic,
    /// Clears any active injection on the replica (storm passes).
    Heal,
}

/// One scheduled replica-kill event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaKill {
    /// When the event fires, measured from serving start.
    pub at: Duration,
    /// Which replica it targets.
    pub replica: usize,
    /// What it does.
    pub kind: ReplicaKillKind,
}

/// A seeded schedule of replica-kill events, applied by the replica
/// supervisor. Same seed → same schedule, so a failing kill storm
/// replays exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaChaosPlan {
    /// The events, sorted by fire time.
    pub kills: Vec<ReplicaKill>,
}

impl ReplicaChaosPlan {
    /// A fixed schedule (tests that need precise timing).
    pub fn from_events(mut kills: Vec<ReplicaKill>) -> ReplicaChaosPlan {
        kills.sort_by_key(|k| k.at);
        ReplicaChaosPlan { kills }
    }

    /// Generates `count` kill events over `window`, targeting replicas
    /// `0..replicas` uniformly, each Wedge or Panic followed by a Heal
    /// halfway to the window's end. Deterministic in `seed`.
    pub fn generate(
        seed: u64,
        replicas: usize,
        count: usize,
        window: Duration,
    ) -> ReplicaChaosPlan {
        let mut rng = ChaosRng::new(seed);
        let mut kills = Vec::with_capacity(count * 2);
        let window_ms = window.as_millis().max(2) as u64;
        for _ in 0..count {
            let at_ms = rng.gen_range(window_ms / 2);
            let replica = rng.gen_range(replicas.max(1) as u64) as usize;
            let kind = if rng.gen_range(2) == 0 {
                ReplicaKillKind::Wedge
            } else {
                ReplicaKillKind::Panic
            };
            kills.push(ReplicaKill {
                at: Duration::from_millis(at_ms),
                replica,
                kind,
            });
            // Heal in the second half so the storm always passes.
            let heal_ms = window_ms / 2 + rng.gen_range(window_ms / 2);
            kills.push(ReplicaKill {
                at: Duration::from_millis(heal_ms),
                replica,
                kind: ReplicaKillKind::Heal,
            });
        }
        Self::from_events(kills)
    }
}

/// What one chaos client observed.
#[derive(Debug, Clone)]
pub struct ClientOutcome {
    /// The scenario label.
    pub name: String,
    /// Status codes of every well-formed response received.
    pub statuses: Vec<u16>,
    /// Total bytes read off the socket.
    pub bytes_read: usize,
    /// Whether everything read parsed as complete HTTP responses (an
    /// empty read is clean: a close with no bytes is a legal outcome
    /// for a client that never completed a request).
    pub clean: bool,
    /// Parse failure or I/O note, for diagnostics.
    pub detail: String,
}

/// Runs one client schedule against `addr`, collecting everything the
/// server sent back. I/O errors mid-schedule are expected (the server
/// may close on us — that is the point) and end the schedule early.
pub fn run_script(addr: SocketAddr, script: &ClientScript) -> ClientOutcome {
    let mut received = Vec::new();
    let mut detail = String::new();
    match TcpStream::connect(addr) {
        Ok(mut stream) => {
            let _ = stream.set_nodelay(true);
            for op in &script.ops {
                match op {
                    ChaosOp::Send(bytes) => {
                        if let Err(e) = stream.write_all(bytes) {
                            detail = format!("send ended early: {e}");
                            break;
                        }
                    }
                    ChaosOp::Drip { bytes, pause } => {
                        let mut failed = false;
                        for b in bytes {
                            if stream.write_all(std::slice::from_ref(b)).is_err() {
                                detail = "drip ended early".to_string();
                                failed = true;
                                break;
                            }
                            thread::sleep(*pause);
                        }
                        if failed {
                            break;
                        }
                    }
                    ChaosOp::Sleep(d) => thread::sleep(*d),
                    ChaosOp::CloseWrite => {
                        let _ = stream.shutdown(Shutdown::Write);
                    }
                    ChaosOp::ReadToEnd { timeout } => {
                        read_until_close(&mut stream, *timeout, &mut received);
                    }
                    ChaosOp::HoldOpen(d) => thread::sleep(*d),
                }
            }
        }
        Err(e) => detail = format!("connect failed: {e}"),
    }
    let (statuses, clean) = match parse_responses(&received) {
        Ok(statuses) => (statuses, true),
        Err(e) => {
            detail = e;
            (Vec::new(), false)
        }
    };
    ClientOutcome {
        name: script.name.clone(),
        statuses,
        bytes_read: received.len(),
        clean,
        detail,
    }
}

fn read_until_close(stream: &mut TcpStream, timeout: Duration, out: &mut Vec<u8>) {
    let deadline = Instant::now() + timeout;
    let mut chunk = [0u8; 4096];
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        let slice = (deadline - now).min(Duration::from_millis(100));
        let _ = stream.set_read_timeout(Some(slice));
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => return,
        }
    }
}

/// Walks a byte stream of concatenated HTTP/1.1 responses, returning
/// their status codes. Responses must be `Content-Length`-framed (ours
/// always are).
///
/// # Errors
///
/// A human-readable description of the first framing violation: a
/// non-HTTP prefix, a missing `Content-Length`, or a truncated head or
/// body. A trailing *partial* response is an error too — the server
/// must never half-write.
pub fn parse_responses(bytes: &[u8]) -> Result<Vec<u16>, String> {
    let mut statuses = Vec::new();
    let mut rest = bytes;
    while !rest.is_empty() {
        match parse_one_response(rest)? {
            Some((code, consumed)) => {
                statuses.push(code);
                rest = &rest[consumed..];
            }
            None => {
                // Incomplete trailing data: reconstruct the precise
                // truncation diagnosis for the report.
                return Err(match rest.windows(4).position(|w| w == b"\r\n\r\n") {
                    None => format!("truncated response head: {} bytes left", rest.len()),
                    Some(head_end) => {
                        let (_, len) = parse_response_head(&rest[..head_end])?;
                        format!(
                            "truncated response body: want {len}, have {}",
                            rest.len() - head_end - 4
                        )
                    }
                });
            }
        }
    }
    Ok(statuses)
}

/// Tries to split one complete `Content-Length`-framed HTTP/1.1 response
/// off the front of `bytes`.
///
/// Returns `Ok(Some((status, consumed)))` when a whole response (head +
/// body) is present, and `Ok(None)` when more bytes are needed — the
/// incremental counterpart of [`parse_responses`] for keep-alive readers
/// (the load generator) that harvest responses as they stream in.
///
/// # Errors
///
/// A human-readable description of a framing violation that no amount of
/// further bytes can repair: a non-HTTP prefix, a bad status code, or a
/// complete head without `Content-Length`.
pub fn parse_one_response(bytes: &[u8]) -> Result<Option<(u16, usize)>, String> {
    let Some(head_end) = bytes.windows(4).position(|w| w == b"\r\n\r\n") else {
        // Bytes that can no longer grow into an HTTP/1.1 head are a hard
        // error even before the terminator arrives.
        if !b"HTTP/1.1 ".starts_with(&bytes[..bytes.len().min(9)]) {
            let prefix = String::from_utf8_lossy(&bytes[..bytes.len().min(16)]).into_owned();
            return Err(format!("bad status line: {prefix:?}"));
        }
        return Ok(None);
    };
    let (code, len) = parse_response_head(&bytes[..head_end])?;
    let total = head_end + 4 + len;
    if bytes.len() < total {
        return Ok(None);
    }
    Ok(Some((code, total)))
}

/// Parses a complete response head (no trailing `\r\n\r\n`) into its
/// status code and `Content-Length`.
fn parse_response_head(head: &[u8]) -> Result<(u16, usize), String> {
    let head = std::str::from_utf8(head).map_err(|_| "response head is not UTF-8".to_string())?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let mut parts = status_line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if version != "HTTP/1.1" {
        return Err(format!("bad status line: {status_line:?}"));
    }
    let code: u16 = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("bad status code in {status_line:?}"))?;
    let mut content_length: Option<usize> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().ok();
            }
        }
    }
    let len = content_length.ok_or_else(|| format!("response {code} without Content-Length"))?;
    Ok((code, len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_seed_deterministic() {
        let cfg = ChaosPlanConfig {
            frame: b"P6 2 2 255 0123456789ab".to_vec(),
            ..ChaosPlanConfig::default()
        };
        let a = ChaosPlan::generate(42, &cfg);
        let b = ChaosPlan::generate(42, &cfg);
        assert_eq!(a, b, "same seed, same plan");
        let c = ChaosPlan::generate(43, &cfg);
        assert_ne!(a, c, "different seed, different plan");
        assert_eq!(a.clients.len(), 7 * cfg.clients_per_scenario);
    }

    #[test]
    fn replica_kill_plans_are_seed_deterministic_and_sorted() {
        let a = ReplicaChaosPlan::generate(9, 3, 4, Duration::from_secs(2));
        let b = ReplicaChaosPlan::generate(9, 3, 4, Duration::from_secs(2));
        assert_eq!(a, b, "same seed, same schedule");
        let c = ReplicaChaosPlan::generate(10, 3, 4, Duration::from_secs(2));
        assert_ne!(a, c, "different seed, different schedule");
        assert_eq!(a.kills.len(), 8, "each kill pairs with a heal");
        assert!(a.kills.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        assert!(a.kills.iter().all(|k| k.replica < 3));
        let heals = a
            .kills
            .iter()
            .filter(|k| k.kind == ReplicaKillKind::Heal)
            .count();
        assert_eq!(heals, 4);
    }

    #[test]
    fn parse_responses_walks_framed_responses_and_rejects_torn_ones() {
        let two = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok\
                    HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(parse_responses(two).unwrap(), vec![200, 503]);
        assert_eq!(parse_responses(b"").unwrap(), Vec::<u16>::new());
        assert!(
            parse_responses(b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nok")
                .unwrap_err()
                .contains("truncated response body")
        );
        assert!(parse_responses(b"garbage").is_err());
        assert!(parse_responses(b"HTTP/1.1 200 OK\r\n\r\n")
            .unwrap_err()
            .contains("without Content-Length"));
    }

    #[test]
    fn parse_one_response_is_incremental() {
        let full = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nokHTTP/1.1 503 X\r\nContent-Length: 0\r\n\r\n";
        // Feeding ever-longer prefixes: each must be "incomplete" until
        // the first response's final body byte arrives.
        let first_len = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok".len();
        for cut in 0..full.len() {
            let parsed = parse_one_response(&full[..cut]).expect("prefixes never hard-error");
            if cut < first_len {
                assert_eq!(parsed, None, "cut={cut} should be incomplete");
            } else {
                assert_eq!(parsed, Some((200, first_len)), "cut={cut}");
            }
        }
        // After consuming the first, the second parses from the remainder.
        let (_, consumed) = parse_one_response(full).unwrap().unwrap();
        assert_eq!(
            parse_one_response(&full[consumed..]).unwrap(),
            Some((503, full.len() - consumed))
        );
        // Non-HTTP bytes are a hard error even without a head terminator.
        assert!(parse_one_response(b"SPAM").is_err());
        assert_eq!(parse_one_response(b"HTTP/1.").unwrap(), None);
    }

    #[test]
    fn chaos_rng_is_deterministic_and_fills_buffers() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        let seq_a: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let seq_b: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(seq_a, seq_b);
        let mut buf = [0u8; 13];
        a.fill(&mut buf);
        assert!(buf.iter().any(|&x| x != 0));
        for _ in 0..100 {
            assert!(a.gen_range(5) < 5);
        }
    }
}
