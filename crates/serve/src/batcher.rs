//! Bounded admission queue and the dynamic micro-batching worker pool.
//!
//! Connections push one [`Job`] per `POST /detect`; workers pop *batches*:
//! once a job arrives, a worker waits up to `max_wait` (measured from the
//! head job's enqueue time) for the batch to fill to `max_batch`, then
//! stacks the frames into one NCHW tensor, runs a single shared
//! `Network::forward`, and de-multiplexes per-image decode + NMS results
//! back to each waiting connection over its reply channel. This amortizes
//! im2col/GEMM setup across concurrent requests — the same cost-amortizing
//! move the paper makes per-frame, applied across the wire.
//!
//! The queue is strictly bounded: a full queue rejects at push time
//! ([`ServeError::Overloaded`] → `503` + `Retry-After`) instead of letting
//! latency grow without bound.

use crate::error::ServeError;
use dronet_detect::{Detection, Detector, Health};
use dronet_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use dronet_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// One queued detection request.
pub struct Job {
    /// Server-assigned frame id (trace correlation + response body).
    pub frame_id: u64,
    /// The conformed `[1, c, h, w]` frame.
    pub frame: Tensor,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where the worker sends this frame's detections.
    pub reply: mpsc::Sender<Result<Vec<Detection>, ServeError>>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// No new pushes are admitted (shutdown has begun).
    draining: bool,
    /// Workers exit once the remaining jobs are drained.
    closed: bool,
}

/// The bounded, condvar-signalled admission queue.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
    depth: Gauge,
    drops: Counter,
}

impl BatchQueue {
    /// A queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize, obs: &Registry) -> Arc<Self> {
        Arc::new(BatchQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                draining: false,
                closed: false,
            }),
            cond: Condvar::new(),
            capacity,
            depth: obs.gauge("serve.queue_depth"),
            drops: obs.counter("serve.admission_drops"),
        })
    }

    /// Admits a job, or sheds load.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::Draining`] once shutdown has begun.
    pub fn push(&self, job: Job) -> Result<(), ServeError> {
        let mut s = self.state.lock().unwrap();
        if s.draining || s.closed {
            return Err(ServeError::Draining);
        }
        if s.jobs.len() >= self.capacity {
            self.drops.inc();
            return Err(ServeError::Overloaded);
        }
        s.jobs.push_back(job);
        self.depth.set(s.jobs.len() as f64);
        self.cond.notify_one();
        Ok(())
    }

    /// Current queue depth (tests and metrics).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().jobs.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one job is available, then keeps waiting — up
    /// to `max_wait` past the head job's arrival — for the batch to fill to
    /// `max_batch`. Returns `None` only when the queue is closed and empty.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<Job>> {
        let mut s = self.state.lock().unwrap();
        loop {
            while s.jobs.is_empty() {
                if s.closed {
                    return None;
                }
                s = self.cond.wait(s).unwrap();
            }
            // A batch head exists; linger for stragglers to coalesce.
            let deadline = s.jobs.front().map(|j| j.enqueued + max_wait);
            while s.jobs.len() < max_batch && !s.closed {
                let Some(deadline) = deadline else { break };
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self.cond.wait_timeout(s, deadline - now).unwrap();
                s = guard;
                if s.jobs.is_empty() {
                    // Another worker took the whole batch; start over.
                    break;
                }
            }
            if s.jobs.is_empty() {
                continue;
            }
            let n = s.jobs.len().min(max_batch);
            let batch: Vec<Job> = s.jobs.drain(..n).collect();
            self.depth.set(s.jobs.len() as f64);
            if !s.jobs.is_empty() {
                // Leftovers form the next batch head; wake another worker.
                self.cond.notify_one();
            }
            return Some(batch);
        }
    }

    /// Stops admitting new jobs; queued jobs still complete.
    pub fn set_draining(&self) {
        self.state.lock().unwrap().draining = true;
    }

    /// Stops admitting new jobs AND tells workers to exit once the backlog
    /// is drained.
    pub fn close(&self) {
        let mut s = self.state.lock().unwrap();
        s.draining = true;
        s.closed = true;
        self.cond.notify_all();
    }
}

/// Everything a worker thread needs.
pub(crate) struct WorkerContext {
    pub queue: Arc<BatchQueue>,
    pub factory: Arc<dyn Fn() -> dronet_detect::Result<Detector> + Send + Sync>,
    pub max_batch: usize,
    pub max_wait: Duration,
    /// Artificial pre-forward delay — a chaos/test knob that holds the
    /// queue full so load shedding can be exercised deterministically.
    pub dispatch_delay: Duration,
    pub health: Arc<AtomicU8>,
    pub health_gauge: Gauge,
    pub batch_size_hist: Histogram,
    pub queue_wait_hist: Histogram,
    pub panics: Counter,
    pub obs: Registry,
    pub tracer: Tracer,
}

/// Spawns the worker loop on a new thread, moving `detector` into it.
pub(crate) fn spawn_worker(
    index: usize,
    mut detector: Detector,
    ctx: WorkerContext,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn(move || {
            // Register with the flight recorder so Chrome-trace exports
            // label this lane ("serve-worker-N") instead of a bare tid.
            ctx.tracer.name_thread(&format!("serve-worker-{index}"));
            while let Some(batch) = ctx.queue.pop_batch(ctx.max_batch, ctx.max_wait) {
                if !ctx.dispatch_delay.is_zero() {
                    thread::sleep(ctx.dispatch_delay);
                }
                detector = run_batch(detector, batch, &ctx);
            }
        })
        .expect("spawn worker thread")
}

/// Processes one batch, returning the (possibly rebuilt) detector.
fn run_batch(mut detector: Detector, batch: Vec<Job>, ctx: &WorkerContext) -> Detector {
    let n = batch.len();
    // The batch-size histogram encodes *counts* as nanoseconds: the log2
    // buckets keep 1/2/4/8 distinct and `max_ns` records the exact largest
    // batch, which is what the coalescing tests assert on.
    ctx.batch_size_hist.record(Duration::from_nanos(n as u64));
    let mut frames = Vec::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    let mut replies = Vec::with_capacity(n);
    for job in batch {
        ctx.queue_wait_hist.record(job.enqueued.elapsed());
        frames.push(job.frame);
        ids.push(job.frame_id);
        replies.push(job.reply);
    }
    let trace = ctx.tracer.span_aux("serve.batch", n as i64);
    let stacked = match Tensor::stack_batch(&frames) {
        Ok(t) => t,
        Err(e) => {
            let msg = format!("stacking batch failed: {e}");
            for reply in &replies {
                let _ = reply.send(Err(ServeError::WorkerFailed(msg.clone())));
            }
            return detector;
        }
    };
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let result = detector.detect_batch_frames(&stacked, Some(&ids));
        (detector, result)
    }));
    drop(trace);
    match outcome {
        Ok((det, Ok(all))) => {
            for (reply, dets) in replies.iter().zip(all) {
                let _ = reply.send(Ok(dets));
            }
            det
        }
        Ok((det, Err(e))) => {
            let msg = e.to_string();
            for reply in &replies {
                let _ = reply.send(Err(ServeError::WorkerFailed(msg.clone())));
            }
            det
        }
        Err(_) => {
            // The detector may hold poisoned state after a panic: isolate
            // the blast radius, mark the server degraded, rebuild.
            ctx.panics.inc();
            ctx.health
                .store(Health::Degraded.as_metric() as u8, Ordering::Relaxed);
            ctx.health_gauge.set(Health::Degraded.as_metric());
            for reply in &replies {
                let _ = reply.send(Err(ServeError::WorkerFailed(
                    "worker panicked during batch".to_string(),
                )));
            }
            match (ctx.factory)() {
                Ok(mut fresh) => {
                    if ctx.obs.is_enabled() {
                        fresh.set_observability(&ctx.obs);
                    }
                    if ctx.tracer.is_enabled() {
                        fresh.set_tracing(&ctx.tracer);
                    }
                    fresh
                }
                Err(e) => {
                    // Without a detector this worker is useless; close the
                    // queue so the server fails loudly instead of hanging.
                    ctx.queue.close();
                    panic!("worker detector rebuild failed: {e}");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_tensor::Shape;

    fn job(id: u64, reply: &mpsc::Sender<Result<Vec<Detection>, ServeError>>) -> Job {
        Job {
            frame_id: id,
            frame: Tensor::zeros(Shape::nchw(1, 3, 8, 8)),
            enqueued: Instant::now(),
            reply: reply.clone(),
        }
    }

    #[test]
    fn queue_sheds_load_at_capacity() {
        let obs = Registry::new();
        let q = BatchQueue::new(2, &obs);
        let (tx, _rx) = mpsc::channel();
        q.push(job(1, &tx)).unwrap();
        q.push(job(2, &tx)).unwrap();
        assert!(matches!(q.push(job(3, &tx)), Err(ServeError::Overloaded)));
        assert_eq!(obs.snapshot().counter("serve.admission_drops"), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn draining_queue_rejects_new_work_but_keeps_backlog() {
        let obs = Registry::new();
        let q = BatchQueue::new(4, &obs);
        let (tx, _rx) = mpsc::channel();
        q.push(job(1, &tx)).unwrap();
        q.set_draining();
        assert!(matches!(q.push(job(2, &tx)), Err(ServeError::Draining)));
        assert_eq!(q.len(), 1);
        // Closing still lets a worker drain the backlog…
        q.close();
        let batch = q.pop_batch(8, Duration::ZERO).expect("backlog");
        assert_eq!(batch.len(), 1);
        // …and only then signals exit.
        assert!(q.pop_batch(8, Duration::ZERO).is_none());
    }

    #[test]
    fn pop_batch_coalesces_up_to_max_batch() {
        let obs = Registry::new();
        let q = BatchQueue::new(16, &obs);
        let (tx, _rx) = mpsc::channel();
        for i in 0..5 {
            q.push(job(i, &tx)).unwrap();
        }
        let batch = q.pop_batch(4, Duration::ZERO).expect("batch");
        assert_eq!(batch.len(), 4, "capped at max_batch");
        assert_eq!(batch[0].frame_id, 0, "FIFO order");
        let rest = q.pop_batch(4, Duration::ZERO).expect("leftover");
        assert_eq!(rest.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_lingers_for_stragglers() {
        let obs = Registry::new();
        let q = BatchQueue::new(16, &obs);
        let (tx, _rx) = mpsc::channel();
        q.push(job(0, &tx)).unwrap();
        let q2 = Arc::clone(&q);
        let tx2 = tx.clone();
        let pusher = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.push(job(1, &tx2)).unwrap();
        });
        // max_wait far beyond the straggler's arrival: both coalesce.
        let batch = q.pop_batch(2, Duration::from_secs(5)).expect("batch");
        assert_eq!(batch.len(), 2);
        pusher.join().unwrap();
    }
}
