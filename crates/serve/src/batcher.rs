//! Bounded admission queue and the dynamic micro-batching worker pool.
//!
//! Connections push one [`Job`] per `POST /detect`; workers pop *batches*:
//! once a job arrives, a worker waits up to `max_wait` (measured from the
//! head job's enqueue time) for the batch to fill to `max_batch`, then
//! stacks the frames into one NCHW tensor, runs a single shared
//! `Network::forward`, and de-multiplexes per-image decode + NMS results
//! back to each waiting connection over its reply channel. This amortizes
//! im2col/GEMM setup across concurrent requests — the same cost-amortizing
//! move the paper makes per-frame, applied across the wire.
//!
//! The queue is strictly bounded: a full queue rejects at push time
//! ([`ServeError::Overloaded`] → `503` + `Retry-After`) instead of letting
//! latency grow without bound.
//!
//! Self-healing: every worker owns a [`WorkerSlot`] — a heartbeat cell
//! stamped around each batch forward plus a *takeable* record of the
//! in-flight jobs. The [`crate::watchdog`] reads the heartbeats; when a
//! worker wedges past its deadline the watchdog steals the in-flight
//! record, fails those jobs with typed errors, and spawns a replacement —
//! the wedged thread, whenever it wakes, finds its slot abandoned and
//! exits quietly. A failed detector rebuild retires the worker instead of
//! panicking; losing the last worker flips health to Halted and fails the
//! backlog rather than hanging it.

use crate::error::ServeError;
use crate::watchdog::{BlackBoxStore, HealthCell, Pool};
use dronet_detect::{resize_frame, Detection, Detector};
use dronet_obs::window::{mono_now_ns, RollingWindow};
use dronet_obs::{Counter, Gauge, Histogram, Registry, Tracer};
use dronet_tensor::Tensor;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

/// Locks a mutex, inheriting the data after a poisoning panic.
///
/// Every shared structure in this module is a plain value store (job
/// lists, option cells) with no invariant that a panicking writer could
/// leave half-established, so inheriting the poisoned state is safe —
/// and vastly better than the default behaviour, where one panic while
/// holding the queue lock turns into a panic on *every subsequent
/// request* for the life of the process.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Leg id for the first dispatch of a request (its primary replica).
pub const PRIMARY_LEG: u8 = 1;
/// Leg id for a hedged re-dispatch on a peer replica.
pub const HEDGE_LEG: u8 = 2;

/// First-wins coordination between a request's dispatch legs.
///
/// A hedged request enqueues the same frame on two replicas; both legs
/// share one `HedgeState` and one reply channel. The first leg to produce
/// a *success* claims the win with a CAS and delivers; the loser's result
/// is discarded. Typed errors never claim — the connection collects them
/// and only answers with an error once every leg has failed, so a wedged
/// primary cannot veto a healthy hedge. `settle` is the connection's
/// cancellation signal: once the final answer is taken, a still-queued
/// loser is dropped at the batcher's door instead of burning a forward.
pub struct HedgeState {
    /// `0` = unclaimed, else the winning leg id.
    winner: AtomicU8,
    /// The connection has taken its final answer; queued losers may be
    /// dropped unprocessed.
    settled: AtomicBool,
}

impl HedgeState {
    /// Fresh, unclaimed state shared by a request's legs.
    pub fn new() -> Arc<Self> {
        Arc::new(HedgeState {
            winner: AtomicU8::new(0),
            settled: AtomicBool::new(false),
        })
    }

    /// Claims the win for `leg`; `true` exactly once across all legs.
    pub fn try_claim(&self, leg: u8) -> bool {
        self.winner
            .compare_exchange(0, leg, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    /// The winning leg id, or `0` while unclaimed.
    pub fn winner(&self) -> u8 {
        self.winner.load(Ordering::SeqCst)
    }

    /// Marks the request answered (cancellation signal for queued losers).
    pub fn settle(&self) {
        self.settled.store(true, Ordering::SeqCst);
    }

    /// Whether this request no longer needs work: a leg won, or the
    /// connection already took its final answer.
    pub fn finished(&self) -> bool {
        self.settled.load(Ordering::SeqCst) || self.winner() != 0
    }
}

/// One queued detection request.
pub struct Job {
    /// Server-assigned frame id (trace correlation + response body).
    pub frame_id: u64,
    /// The conformed `[1, c, h, w]` frame.
    pub frame: Tensor,
    /// When the job entered the queue.
    pub enqueued: Instant,
    /// Where the worker sends this frame's detections.
    pub reply: mpsc::Sender<Result<Vec<Detection>, ServeError>>,
    /// First-wins state shared with this request's other dispatch leg;
    /// `None` for plain (unhedged) requests.
    pub hedge: Option<Arc<HedgeState>>,
    /// Which dispatch leg this job is ([`PRIMARY_LEG`] / [`HEDGE_LEG`]).
    pub leg: u8,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// No new pushes are admitted (shutdown has begun).
    draining: bool,
    /// Workers exit once the remaining jobs are drained.
    closed: bool,
}

/// Rolling window the drain-rate estimate looks back over.
const DRAIN_WINDOW: Duration = Duration::from_secs(5);
const DRAIN_SUB_BUCKETS: usize = 10;

/// The bounded, condvar-signalled admission queue.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
    depth: Gauge,
    drops: Counter,
    /// Admission drops on *this* queue alone. The `drops` counter is a
    /// registry name shared by every replica's queue; brownout needs a
    /// per-replica signal, so each queue also keeps its own tally.
    local_drops: AtomicU64,
    /// Jobs handed to workers recently; feeds the drain-rate estimate
    /// behind load-aware `Retry-After` hints.
    drained: RollingWindow,
}

impl BatchQueue {
    /// A queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize, obs: &Registry) -> Arc<Self> {
        Arc::new(BatchQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity),
                draining: false,
                closed: false,
            }),
            cond: Condvar::new(),
            capacity,
            depth: obs.gauge("serve.queue_depth"),
            drops: obs.counter("serve.admission_drops"),
            local_drops: AtomicU64::new(0),
            drained: RollingWindow::new(DRAIN_WINDOW, DRAIN_SUB_BUCKETS),
        })
    }

    /// Admits a job, or sheds load.
    ///
    /// # Errors
    ///
    /// [`ServeError::Overloaded`] when the queue is at capacity,
    /// [`ServeError::Draining`] once shutdown has begun.
    pub fn push(&self, job: Job) -> Result<(), ServeError> {
        let mut s = lock_recover(&self.state);
        if s.draining || s.closed {
            return Err(ServeError::Draining);
        }
        if s.jobs.len() >= self.capacity {
            self.drops.inc();
            self.local_drops.fetch_add(1, Ordering::SeqCst);
            return Err(ServeError::Overloaded);
        }
        s.jobs.push_back(job);
        self.depth.set(s.jobs.len() as f64);
        self.cond.notify_one();
        Ok(())
    }

    /// Total admission drops on this queue since birth (monotonic) — the
    /// per-replica brownout pressure signal.
    pub fn local_drops(&self) -> u64 {
        self.local_drops.load(Ordering::SeqCst)
    }

    /// Current queue depth (tests and metrics).
    pub fn len(&self) -> usize {
        lock_recover(&self.state).jobs.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until at least one job is available, then keeps waiting — up
    /// to `max_wait` past the head job's arrival — for the batch to fill to
    /// `max_batch`. Returns `None` only when the queue is closed and empty.
    pub fn pop_batch(&self, max_batch: usize, max_wait: Duration) -> Option<Vec<Job>> {
        let mut s = lock_recover(&self.state);
        loop {
            while s.jobs.is_empty() {
                if s.closed {
                    return None;
                }
                s = self.cond.wait(s).unwrap_or_else(PoisonError::into_inner);
            }
            // A batch head exists; linger for stragglers to coalesce.
            let deadline = s.jobs.front().map(|j| j.enqueued + max_wait);
            while s.jobs.len() < max_batch && !s.closed {
                let Some(deadline) = deadline else { break };
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .cond
                    .wait_timeout(s, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                s = guard;
                if s.jobs.is_empty() {
                    // Another worker took the whole batch; start over.
                    break;
                }
            }
            if s.jobs.is_empty() {
                continue;
            }
            let n = s.jobs.len().min(max_batch);
            let batch: Vec<Job> = s.jobs.drain(..n).collect();
            self.drained.record_at(mono_now_ns(), n as u64);
            self.depth.set(s.jobs.len() as f64);
            if !s.jobs.is_empty() {
                // Leftovers form the next batch head; wake another worker.
                self.cond.notify_one();
            }
            return Some(batch);
        }
    }

    /// Jobs per second handed to workers over the recent drain window
    /// (zero when nothing has drained recently).
    pub fn drain_rate_per_sec(&self) -> f64 {
        let stats = self.drained.stats_at(mono_now_ns());
        stats.sum as f64 / (stats.window_ns as f64 / 1e9)
    }

    /// Load-aware `Retry-After` in seconds: at the current drain rate, how
    /// long until today's backlog has cleared, clamped to
    /// `[base_secs, max_secs]` (floor at least 1 s).
    ///
    /// A constant `Retry-After` teaches every shed client to come back in
    /// lockstep after the same pause — exactly wrong under overload, when
    /// the queue needs *longer* to clear. Deriving the hint from the
    /// observed drain rate makes the advice scale with how wedged the
    /// server actually is; with no recent drains (cold start, or a fully
    /// wedged pool still inside its watchdog deadline) there is no
    /// evidence either way, so the base hint is returned unchanged.
    pub fn retry_after_hint(&self, base_secs: u64, max_secs: u64) -> u64 {
        let floor = base_secs.max(1);
        let cap = max_secs.max(floor);
        let rate = self.drain_rate_per_sec();
        if rate <= 0.0 {
            return floor;
        }
        let secs = (self.len() as f64 / rate).ceil() as u64;
        secs.clamp(floor, cap)
    }

    /// Stops admitting new jobs; queued jobs still complete.
    pub fn set_draining(&self) {
        lock_recover(&self.state).draining = true;
    }

    /// Stops admitting new jobs AND tells workers to exit once the backlog
    /// is drained.
    pub fn close(&self) {
        let mut s = lock_recover(&self.state);
        s.draining = true;
        s.closed = true;
        self.cond.notify_all();
    }

    /// Whether [`close`](Self::close) was called — teardown in progress.
    pub fn is_closed(&self) -> bool {
        lock_recover(&self.state).closed
    }

    /// Fails every queued job with [`ServeError::Halted`] — the last
    /// resort when no worker remains to drain the backlog. Returns the
    /// number of jobs failed.
    pub fn fail_pending(&self) -> usize {
        let mut s = lock_recover(&self.state);
        let n = s.jobs.len();
        for job in s.jobs.drain(..) {
            let _ = job.reply.send(Err(ServeError::Halted));
        }
        self.depth.set(0.0);
        n
    }
}

/// Deterministic wedge injection — a chaos/test knob. When armed, the
/// first batch containing `frame_id` sleeps for `hold` mid-forward,
/// simulating a stuck kernel so the watchdog path can be exercised
/// end to end without timing luck.
#[derive(Debug, Clone)]
pub struct WedgePlan {
    /// The frame whose batch wedges.
    pub frame_id: u64,
    /// How long the worker holds (should exceed the wedge timeout).
    pub hold: Duration,
}

/// A job's reply route plus its hedge coordination, carried through the
/// in-flight record so both the worker and the watchdog deliver through
/// the same first-wins gate.
pub(crate) struct Reply {
    pub sender: mpsc::Sender<Result<Vec<Detection>, ServeError>>,
    pub hedge: Option<Arc<HedgeState>>,
    pub leg: u8,
}

impl Reply {
    /// Delivers a result honouring hedge semantics: a success must win the
    /// claim first (a losing leg's output is discarded so the connection
    /// never sees two answers); typed errors always flow — the connection
    /// counts them and only errors out once every leg has failed.
    pub fn deliver(&self, result: Result<Vec<Detection>, ServeError>) {
        match (&self.hedge, &result) {
            (Some(h), Ok(_)) if !h.try_claim(self.leg) => {}
            _ => {
                let _ = self.sender.send(result);
            }
        }
    }
}

/// The jobs a worker is currently holding: stolen by the watchdog when
/// the worker wedges, reclaimed by the worker itself on completion —
/// whoever takes it owns replying to the clients.
pub(crate) struct InFlight {
    pub frame_ids: Vec<u64>,
    pub replies: Vec<Reply>,
}

/// Per-worker heartbeat + in-flight record, shared with the watchdog.
pub(crate) struct WorkerSlot {
    /// Stable worker index (thread name, black-box triggers).
    pub index: usize,
    /// Nanoseconds since the pool epoch when the current batch began;
    /// `0` means idle. Clamped to at least 1 so an instant start is
    /// never mistaken for idleness.
    busy_since_ns: AtomicU64,
    /// Batches completed by this worker (watchdog activity signal).
    pub batches_done: AtomicU64,
    /// Set by the watchdog after declaring this worker wedged; the
    /// worker exits at the next opportunity instead of touching the
    /// queue again.
    pub abandoned: AtomicBool,
    alive: AtomicBool,
    inflight: Mutex<Option<InFlight>>,
}

impl WorkerSlot {
    pub fn new(index: usize) -> Arc<Self> {
        Arc::new(WorkerSlot {
            index,
            busy_since_ns: AtomicU64::new(0),
            batches_done: AtomicU64::new(0),
            abandoned: AtomicBool::new(false),
            alive: AtomicBool::new(true),
            inflight: Mutex::new(None),
        })
    }

    /// Stamps the heartbeat and deposits the in-flight record.
    pub fn begin_batch(&self, epoch: Instant, inflight: InFlight) {
        *lock_recover(&self.inflight) = Some(inflight);
        let ns = epoch.elapsed().as_nanos() as u64;
        self.busy_since_ns.store(ns.max(1), Ordering::SeqCst);
    }

    /// Takes the in-flight record — `None` means the other side (worker
    /// or watchdog) already claimed it and owns the replies.
    pub fn take_inflight(&self) -> Option<InFlight> {
        lock_recover(&self.inflight).take()
    }

    /// Clears the heartbeat (batch finished or failed).
    pub fn finish_batch(&self) {
        self.busy_since_ns.store(0, Ordering::SeqCst);
    }

    /// How long the current batch has been running, or `None` when idle.
    pub fn busy_for(&self, epoch: Instant) -> Option<Duration> {
        let ns = self.busy_since_ns.load(Ordering::SeqCst);
        if ns == 0 {
            return None;
        }
        Some(epoch.elapsed().saturating_sub(Duration::from_nanos(ns)))
    }

    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }

    /// Marks the worker dead; returns `true` exactly once (whoever wins
    /// the race — worker death path or watchdog — does the pool
    /// accounting).
    pub fn retire(&self) -> bool {
        self.alive.swap(false, Ordering::SeqCst)
    }
}

/// Everything shared between the worker pool, the watchdog, and the
/// server front end.
pub(crate) struct WorkerShared {
    pub queue: Arc<BatchQueue>,
    pub factory: Arc<dyn Fn() -> dronet_detect::Result<Detector> + Send + Sync>,
    /// Resolution-aware factory: present when the server was started via
    /// `start_scalable`, enabling brownout rebuilds at ladder rungs.
    pub sized_factory: Option<Arc<dyn Fn(usize) -> dronet_detect::Result<Detector> + Send + Sync>>,
    pub max_batch: usize,
    pub max_wait: Duration,
    /// Artificial pre-forward delay — a chaos/test knob that holds the
    /// queue full so load shedding can be exercised deterministically.
    pub dispatch_delay: Duration,
    /// Pool-wide monotonic origin for heartbeat timestamps.
    pub epoch: Instant,
    pub pool: Pool,
    pub health: HealthCell,
    /// Brownout target input size; `0` means "fixed resolution" (no
    /// brownout, workers never rebuild for size).
    pub target_input: AtomicUsize,
    /// Gauge mirroring `target_input` (or the fixed size) for `/metrics`.
    pub resolution_gauge: Gauge,
    pub wedge: Option<WedgePlan>,
    /// One-shot arming latch for the wedge plan.
    pub wedge_armed: AtomicBool,
    pub black_box: BlackBoxStore,
    pub batch_size_hist: Histogram,
    pub queue_wait_hist: Histogram,
    /// Wall time of the shared batch forward, recorded once per request in
    /// the batch (every rider experiences the full forward) — the middle
    /// leg of the queue-wait / forward / serialization latency split.
    pub forward_hist: Histogram,
    pub panics: Counter,
    pub worker_deaths: Counter,
    /// Monotonic count of fault events in this pool (panics, deaths,
    /// wedges). The replica supervisor reads deltas to decide quarantine —
    /// a per-pool signal, unlike the name-shared registry counters.
    pub fault_events: AtomicU64,
    /// Replica-kill chaos: while set, every batch forward wedges for
    /// `chaos_wedge_hold` — the supervisor flips this to simulate a
    /// replica whose kernels stopped returning.
    pub chaos_wedge: AtomicBool,
    /// Replica-kill chaos: while set, every batch forward panics inside
    /// the catch_unwind boundary.
    pub chaos_panic: AtomicBool,
    /// How long a chaos-wedged batch holds before proceeding.
    pub chaos_wedge_hold: Duration,
    pub obs: Registry,
    pub tracer: Tracer,
}

/// Spawns the worker loop on a new thread, moving `detector` into it.
pub(crate) fn spawn_worker(
    shared: Arc<WorkerShared>,
    slot: Arc<WorkerSlot>,
    detector: Detector,
) -> thread::JoinHandle<()> {
    let index = slot.index;
    thread::Builder::new()
        .name(format!("serve-worker-{index}"))
        .spawn(move || {
            // Register with the flight recorder so Chrome-trace exports
            // label this lane ("serve-worker-N") instead of a bare tid.
            shared.tracer.name_thread(&format!("serve-worker-{index}"));
            let mut detector = detector;
            loop {
                if slot.abandoned.load(Ordering::SeqCst) {
                    // The watchdog already declared us wedged, failed our
                    // jobs, and spawned a replacement: vanish quietly.
                    return;
                }
                let Some(batch) = shared.queue.pop_batch(shared.max_batch, shared.max_wait) else {
                    // Clean shutdown: the queue closed and drained.
                    slot.retire();
                    return;
                };
                match run_batch(detector, batch, &shared, &slot) {
                    Some(d) => detector = d,
                    None => return, // superseded by the watchdog, or dead
                }
            }
        })
        .expect("spawn worker thread")
}

/// Builds a fresh detector (at `target` when a sized factory exists and
/// `target != 0`) and attaches the server's registry and tracer.
pub(crate) fn rebuild_detector(shared: &WorkerShared, target: usize) -> Result<Detector, String> {
    let built = match (&shared.sized_factory, target) {
        (Some(sized), t) if t != 0 => sized(t),
        _ => (shared.factory)(),
    };
    match built {
        Ok(mut d) => {
            if shared.obs.is_enabled() {
                d.set_observability(&shared.obs);
            }
            if shared.tracer.is_enabled() {
                d.set_tracing(&shared.tracer);
            }
            Ok(d)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// The typed replacement for the old `panic!` on rebuild failure: fails
/// any jobs still held by the slot, retires the worker, and — when it
/// was the last one — flips health to Halted, closes the queue, and
/// fails the backlog so nothing hangs. Returns `None` (the worker loop's
/// exit signal).
fn worker_dies(shared: &WorkerShared, slot: &WorkerSlot, reason: &str) -> Option<Detector> {
    shared.worker_deaths.inc();
    shared.fault_events.fetch_add(1, Ordering::SeqCst);
    if let Some(inflight) = slot.take_inflight() {
        shared.black_box.capture(
            &shared.tracer,
            &format!("worker {} died: {reason}", slot.index),
            &inflight.frame_ids,
        );
        let msg = format!("worker died: {reason}");
        for reply in &inflight.replies {
            reply.deliver(Err(ServeError::WorkerFailed(msg.clone())));
        }
    } else {
        shared.black_box.capture(
            &shared.tracer,
            &format!("worker {} died: {reason}", slot.index),
            &[],
        );
    }
    slot.finish_batch();
    if slot.retire() {
        if shared.pool.worker_gone() == 0 {
            shared.health.halt();
            shared.queue.close();
            shared.queue.fail_pending();
        } else {
            shared.health.degrade();
        }
    }
    None
}

/// Processes one batch. Returns the (possibly rebuilt) detector, or
/// `None` when this worker must exit (wedged-and-superseded, or dead).
fn run_batch(
    mut detector: Detector,
    mut batch: Vec<Job>,
    shared: &WorkerShared,
    slot: &WorkerSlot,
) -> Option<Detector> {
    // Hedge cancellation: a leg whose request already got its answer
    // (the peer won, or the connection timed out and settled) is dead
    // weight — drop it at the door instead of burning a forward on it.
    batch.retain(|j| j.hedge.as_ref().is_none_or(|h| !h.finished()));
    if batch.is_empty() {
        return Some(detector);
    }
    let n = batch.len();
    // The batch-size histogram encodes *counts* as nanoseconds: the log2
    // buckets keep 1/2/4/8 distinct and `max_ns` records the exact largest
    // batch, which is what the coalescing tests assert on.
    shared
        .batch_size_hist
        .record(Duration::from_nanos(n as u64));
    let mut frames = Vec::with_capacity(n);
    let mut ids = Vec::with_capacity(n);
    let mut replies = Vec::with_capacity(n);
    for job in batch {
        shared.queue_wait_hist.record(job.enqueued.elapsed());
        frames.push(job.frame);
        ids.push(job.frame_id);
        replies.push(Reply {
            sender: job.reply,
            hedge: job.hedge,
            leg: job.leg,
        });
    }
    // From here the watchdog co-owns the jobs: if this thread wedges, the
    // watchdog takes the record and replies on our behalf.
    slot.begin_batch(
        shared.epoch,
        InFlight {
            frame_ids: ids.clone(),
            replies,
        },
    );

    // Brownout: the controller moved the ladder since our last batch —
    // rebuild at the new rung before forwarding.
    let target = shared.target_input.load(Ordering::SeqCst);
    if target != 0 && detector.input_chw().1 != target {
        match rebuild_detector(shared, target) {
            Ok(fresh) => detector = fresh,
            Err(e) => return worker_dies(shared, slot, &format!("brownout rebuild failed: {e}")),
        }
    }

    if !shared.dispatch_delay.is_zero() {
        thread::sleep(shared.dispatch_delay);
    }
    if let Some(plan) = &shared.wedge {
        if ids.contains(&plan.frame_id) && shared.wedge_armed.swap(false, Ordering::SeqCst) {
            thread::sleep(plan.hold);
        }
    }
    if shared.chaos_wedge.load(Ordering::SeqCst) {
        // Replica-kill chaos: hold mid-batch like a stuck kernel. The
        // watchdog (or, below the wedge timeout, brownout pressure) takes
        // it from here. Sliced so teardown never waits out the hold.
        let held = Instant::now();
        while held.elapsed() < shared.chaos_wedge_hold
            && shared.chaos_wedge.load(Ordering::SeqCst)
            && !shared.queue.is_closed()
        {
            thread::sleep(Duration::from_millis(5));
        }
    }

    // Frames conformed before a resolution shift may not match the
    // detector any more; resample stragglers at the door.
    let (_, want_h, want_w) = detector.input_chw();
    for frame in &mut frames {
        let s = frame.shape();
        if s.height() != want_h || s.width() != want_w {
            *frame = resize_frame(frame, want_h, want_w);
        }
    }

    let trace = shared.tracer.span_aux("serve.batch", n as i64);
    let stacked = match Tensor::stack_batch(&frames) {
        Ok(t) => t,
        Err(e) => {
            drop(trace);
            if let Some(inflight) = slot.take_inflight() {
                let msg = format!("stacking batch failed: {e}");
                for reply in &inflight.replies {
                    reply.deliver(Err(ServeError::WorkerFailed(msg.clone())));
                }
            }
            slot.finish_batch();
            return Some(detector);
        }
    };
    let forward_started = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if shared.chaos_panic.load(Ordering::SeqCst) {
            panic!("chaos: injected replica panic");
        }
        let result = detector.detect_batch_frames(&stacked, Some(&ids));
        (detector, result)
    }));
    let forward_elapsed = forward_started.elapsed();
    drop(trace);

    let Some(inflight) = slot.take_inflight() else {
        // The watchdog declared us wedged while we ran and already
        // failed the jobs and spawned a successor. It also did the pool
        // accounting; just disappear.
        slot.finish_batch();
        return None;
    };

    for _ in 0..inflight.replies.len() {
        shared.forward_hist.record(forward_elapsed);
    }

    match outcome {
        Ok((det, Ok(all))) => {
            for (reply, dets) in inflight.replies.iter().zip(all) {
                reply.deliver(Ok(dets));
            }
            slot.finish_batch();
            slot.batches_done.fetch_add(1, Ordering::SeqCst);
            Some(det)
        }
        Ok((det, Err(e))) => {
            let msg = e.to_string();
            for reply in &inflight.replies {
                reply.deliver(Err(ServeError::WorkerFailed(msg.clone())));
            }
            slot.finish_batch();
            slot.batches_done.fetch_add(1, Ordering::SeqCst);
            Some(det)
        }
        Err(_) => {
            // The detector may hold poisoned state after a panic: isolate
            // the blast radius, mark the server degraded, rebuild.
            shared.panics.inc();
            shared.fault_events.fetch_add(1, Ordering::SeqCst);
            shared.health.degrade();
            for reply in &inflight.replies {
                reply.deliver(Err(ServeError::WorkerFailed(
                    "worker panicked during batch".to_string(),
                )));
            }
            slot.finish_batch();
            let target = shared.target_input.load(Ordering::SeqCst);
            match rebuild_detector(shared, target) {
                Ok(fresh) => Some(fresh),
                Err(e) => worker_dies(shared, slot, &format!("post-panic rebuild failed: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_tensor::Shape;

    fn job(id: u64, reply: &mpsc::Sender<Result<Vec<Detection>, ServeError>>) -> Job {
        Job {
            frame_id: id,
            frame: Tensor::zeros(Shape::nchw(1, 3, 8, 8)),
            enqueued: Instant::now(),
            reply: reply.clone(),
            hedge: None,
            leg: PRIMARY_LEG,
        }
    }

    #[test]
    fn queue_sheds_load_at_capacity() {
        let obs = Registry::new();
        let q = BatchQueue::new(2, &obs);
        let (tx, _rx) = mpsc::channel();
        q.push(job(1, &tx)).unwrap();
        q.push(job(2, &tx)).unwrap();
        assert!(matches!(q.push(job(3, &tx)), Err(ServeError::Overloaded)));
        assert_eq!(obs.snapshot().counter("serve.admission_drops"), Some(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn draining_queue_rejects_new_work_but_keeps_backlog() {
        let obs = Registry::new();
        let q = BatchQueue::new(4, &obs);
        let (tx, _rx) = mpsc::channel();
        q.push(job(1, &tx)).unwrap();
        q.set_draining();
        assert!(matches!(q.push(job(2, &tx)), Err(ServeError::Draining)));
        assert_eq!(q.len(), 1);
        // Closing still lets a worker drain the backlog…
        q.close();
        let batch = q.pop_batch(8, Duration::ZERO).expect("backlog");
        assert_eq!(batch.len(), 1);
        // …and only then signals exit.
        assert!(q.pop_batch(8, Duration::ZERO).is_none());
    }

    #[test]
    fn pop_batch_coalesces_up_to_max_batch() {
        let obs = Registry::new();
        let q = BatchQueue::new(16, &obs);
        let (tx, _rx) = mpsc::channel();
        for i in 0..5 {
            q.push(job(i, &tx)).unwrap();
        }
        let batch = q.pop_batch(4, Duration::ZERO).expect("batch");
        assert_eq!(batch.len(), 4, "capped at max_batch");
        assert_eq!(batch[0].frame_id, 0, "FIFO order");
        let rest = q.pop_batch(4, Duration::ZERO).expect("leftover");
        assert_eq!(rest.len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_batch_lingers_for_stragglers() {
        let obs = Registry::new();
        let q = BatchQueue::new(16, &obs);
        let (tx, _rx) = mpsc::channel();
        q.push(job(0, &tx)).unwrap();
        let q2 = Arc::clone(&q);
        let tx2 = tx.clone();
        let pusher = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            q2.push(job(1, &tx2)).unwrap();
        });
        // max_wait far beyond the straggler's arrival: both coalesce.
        let batch = q.pop_batch(2, Duration::from_secs(5)).expect("batch");
        assert_eq!(batch.len(), 2);
        pusher.join().unwrap();
    }

    #[test]
    fn queue_survives_a_poisoning_panic() {
        let obs = Registry::new();
        let q = BatchQueue::new(4, &obs);
        let (tx, _rx) = mpsc::channel();
        q.push(job(1, &tx)).unwrap();
        // Panic while holding the state lock: the mutex is now poisoned.
        let q2 = Arc::clone(&q);
        let poisoner = thread::spawn(move || {
            let _guard = q2.state.lock().unwrap();
            panic!("poison the queue lock");
        });
        assert!(poisoner.join().is_err());
        assert!(q.state.is_poisoned(), "precondition: lock is poisoned");
        // Every operation still works on the inherited state.
        q.push(job(2, &tx)).unwrap();
        assert_eq!(q.len(), 2);
        let batch = q.pop_batch(8, Duration::ZERO).expect("batch");
        assert_eq!(batch.len(), 2);
        q.close();
        assert!(q.pop_batch(8, Duration::ZERO).is_none());
    }

    #[test]
    fn fail_pending_flushes_the_backlog_with_halted() {
        let obs = Registry::new();
        let q = BatchQueue::new(4, &obs);
        let (tx, rx) = mpsc::channel();
        q.push(job(1, &tx)).unwrap();
        q.push(job(2, &tx)).unwrap();
        assert_eq!(q.fail_pending(), 2);
        assert!(q.is_empty());
        for _ in 0..2 {
            assert!(matches!(rx.recv().unwrap(), Err(ServeError::Halted)));
        }
        assert_eq!(obs.snapshot().gauge("serve.queue_depth"), Some(0.0));
    }

    #[test]
    fn retry_after_hint_is_load_aware() {
        let obs = Registry::new();
        let q = BatchQueue::new(8, &obs);
        let (tx, _rx) = mpsc::channel();
        // Cold start: no drains yet → no evidence, base hint unchanged.
        assert_eq!(q.retry_after_hint(1, 30), 1);
        assert_eq!(q.retry_after_hint(0, 30), 1, "floor is clamped to 1 s");
        // One job drains; the window now knows the rate is ~0.2/s (1 job
        // per 5 s window). Six queued jobs at that rate need ~30 s.
        q.push(job(0, &tx)).unwrap();
        q.pop_batch(1, Duration::ZERO).unwrap();
        assert!(q.drain_rate_per_sec() > 0.0);
        for i in 1..=6 {
            q.push(job(i, &tx)).unwrap();
        }
        let hint = q.retry_after_hint(1, 120);
        assert!(
            (hint > 1) && (hint <= 120),
            "hint {hint} must exceed the constant base under backlog"
        );
        // The cap wins when the backlog estimate is enormous.
        assert_eq!(q.retry_after_hint(1, 3), 3);
        // Draining the backlog raises the observed rate and the hint
        // falls back to the floor once the queue is empty.
        q.pop_batch(16, Duration::ZERO).unwrap();
        assert_eq!(q.retry_after_hint(1, 120), 1, "empty queue needs no wait");
    }

    #[test]
    fn hedge_first_success_wins_and_loser_is_discarded() {
        let h = HedgeState::new();
        assert!(!h.finished());
        let (tx, rx) = mpsc::channel::<Result<Vec<Detection>, ServeError>>();
        let primary = Reply {
            sender: tx.clone(),
            hedge: Some(Arc::clone(&h)),
            leg: PRIMARY_LEG,
        };
        let hedged = Reply {
            sender: tx,
            hedge: Some(Arc::clone(&h)),
            leg: HEDGE_LEG,
        };
        hedged.deliver(Ok(vec![]));
        primary.deliver(Ok(vec![])); // loses the claim, discarded
        assert_eq!(h.winner(), HEDGE_LEG);
        assert!(rx.recv().unwrap().is_ok(), "winner's answer arrives");
        assert!(
            rx.try_recv().is_err(),
            "losing leg's success must be discarded"
        );
        // Errors always flow, even after a winner exists.
        primary.deliver(Err(ServeError::Halted));
        assert!(rx.recv().unwrap().is_err());
    }

    #[test]
    fn settled_hedge_jobs_are_finished_without_a_winner() {
        let h = HedgeState::new();
        h.settle();
        assert!(h.finished(), "settle alone finishes the request");
        assert_eq!(h.winner(), 0);
        // A late claim after settling still records a winner (the
        // connection has gone; nothing reads it, but counters may).
        assert!(h.try_claim(PRIMARY_LEG));
        assert!(!h.try_claim(HEDGE_LEG), "claim is exactly-once");
    }

    #[test]
    fn local_drops_counts_only_this_queue() {
        let obs = Registry::new();
        let a = BatchQueue::new(1, &obs);
        let b = BatchQueue::new(1, &obs);
        let (tx, _rx) = mpsc::channel();
        a.push(job(1, &tx)).unwrap();
        assert!(a.push(job(2, &tx)).is_err());
        assert_eq!(a.local_drops(), 1, "a saw its own drop");
        assert_eq!(b.local_drops(), 0, "b saw nothing");
        // The shared registry counter aggregates across queues.
        assert_eq!(obs.snapshot().counter("serve.admission_drops"), Some(1));
    }

    #[test]
    fn worker_slot_heartbeat_and_single_retirement() {
        let slot = WorkerSlot::new(3);
        let epoch = Instant::now() - Duration::from_secs(1);
        assert!(slot.busy_for(epoch).is_none(), "idle at birth");
        let (tx, _rx) = mpsc::channel::<Result<Vec<Detection>, ServeError>>();
        slot.begin_batch(
            epoch,
            InFlight {
                frame_ids: vec![7],
                replies: vec![Reply {
                    sender: tx,
                    hedge: None,
                    leg: PRIMARY_LEG,
                }],
            },
        );
        assert!(slot.busy_for(epoch).is_some(), "heartbeat stamped");
        let taken = slot.take_inflight().expect("first take wins");
        assert_eq!(taken.frame_ids, vec![7]);
        assert!(slot.take_inflight().is_none(), "second take loses");
        slot.finish_batch();
        assert!(slot.busy_for(epoch).is_none(), "idle again");
        assert!(slot.retire(), "first retire reports prior liveness");
        assert!(!slot.retire(), "second retire is a no-op");
        assert!(!slot.is_alive());
    }
}
