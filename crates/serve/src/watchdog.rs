//! The serve-side supervisor: wedge detection, bounded worker restarts,
//! brownout resolution control, and crash black boxes.
//!
//! One lightweight thread ticks every `interval`, doing three jobs:
//!
//! 1. **Wedge watch** — each worker stamps a heartbeat around its batch
//!    forward ([`crate::batcher::WorkerSlot`]). A worker busy past
//!    `wedge_timeout` is declared wedged: the watchdog *steals* its
//!    in-flight job record, fails those requests with
//!    [`crate::ServeError::WorkerWedged`] (typed `500`s instead of
//!    hung connections), captures the flight-recorder tail as a
//!    [`ServeBlackBox`], and — under a bounded restart budget — spawns a
//!    replacement worker with a fresh detector. The wedged thread finds
//!    its slot abandoned whenever it wakes and exits silently.
//! 2. **Brownout control** — when configured, a
//!    [`dronet_detect::DegradeController`] is fed one observation per
//!    tick (queue depth + admission-shed delta). Sustained pressure
//!    walks the input-resolution ladder down (the paper's 608→352
//!    accuracy-vs-FPS knob, applied as load shedding that still
//!    answers); sustained calm walks it back up.
//! 3. **Recovery** — after `recovery_ticks` ticks with no new panics,
//!    deaths, or wedges, and with the brownout ladder back at the top,
//!    health returns Degraded → Healthy.
//!
//! Losing the last worker (restart budget exhausted, or a rebuild
//! failure) flips health to Halted, closes the queue, and fails the
//! backlog — loud, typed, and recoverable by a process restart, never a
//! silent hang or a panic.

use crate::batcher::{lock_recover, spawn_worker, WorkerShared, WorkerSlot};
use crate::error::ServeError;
use dronet_detect::{DegradeAction, DegradeController, Health};
use dronet_obs::{Counter, TraceSnapshot, Tracer};
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Most black boxes retained; older captures are dropped first.
const MAX_BLACK_BOXES: usize = 16;

/// Lock-free health cell mirrored into the `serve.health` gauge.
pub(crate) struct HealthCell {
    state: AtomicU8,
    gauge: dronet_obs::Gauge,
}

impl HealthCell {
    pub fn new(gauge: dronet_obs::Gauge) -> Self {
        gauge.set(Health::Healthy.as_metric());
        HealthCell {
            state: AtomicU8::new(Health::Healthy.as_metric() as u8),
            gauge,
        }
    }

    pub fn get(&self) -> Health {
        match self.state.load(Ordering::SeqCst) {
            0 => Health::Healthy,
            1 => Health::Degraded,
            _ => Health::Halted,
        }
    }

    fn set(&self, h: Health) {
        self.state.store(h.as_metric() as u8, Ordering::SeqCst);
        self.gauge.set(h.as_metric());
    }

    /// Healthy → Degraded (never un-halts).
    pub fn degrade(&self) {
        if self
            .state
            .compare_exchange(
                Health::Healthy.as_metric() as u8,
                Health::Degraded.as_metric() as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            self.gauge.set(Health::Degraded.as_metric());
        }
    }

    /// Degraded → Healthy (never un-halts).
    pub fn recover(&self) {
        if self
            .state
            .compare_exchange(
                Health::Degraded.as_metric() as u8,
                Health::Healthy.as_metric() as u8,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            self.gauge.set(Health::Healthy.as_metric());
        }
    }

    /// Terminal: the server no longer serves detections.
    pub fn halt(&self) {
        self.set(Health::Halted);
    }
}

/// The live worker registry: slots for the watchdog to scan, handles for
/// shutdown to join, and the count of workers still alive.
pub(crate) struct Pool {
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    handles: Mutex<Vec<thread::JoinHandle<()>>>,
    alive: AtomicUsize,
    next_index: AtomicUsize,
}

impl Pool {
    pub fn new() -> Self {
        Pool {
            slots: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
            alive: AtomicUsize::new(0),
            next_index: AtomicUsize::new(0),
        }
    }

    /// A fresh, unique worker index.
    pub fn next_index(&self) -> usize {
        self.next_index.fetch_add(1, Ordering::SeqCst)
    }

    /// Adds a live worker (initial spawn or watchdog replacement).
    pub fn register(&self, slot: Arc<WorkerSlot>, handle: thread::JoinHandle<()>) {
        lock_recover(&self.slots).push(slot);
        lock_recover(&self.handles).push(handle);
        self.alive.fetch_add(1, Ordering::SeqCst);
    }

    /// Accounts one worker's death; returns how many remain alive.
    pub fn worker_gone(&self) -> usize {
        self.alive.fetch_sub(1, Ordering::SeqCst).saturating_sub(1)
    }

    pub fn alive_count(&self) -> usize {
        self.alive.load(Ordering::SeqCst)
    }

    /// A point-in-time copy of every slot ever registered (dead slots
    /// included; callers filter on liveness).
    pub fn slots_snapshot(&self) -> Vec<Arc<WorkerSlot>> {
        lock_recover(&self.slots).clone()
    }

    /// Takes every join handle (shutdown joins them after queue close).
    pub fn take_handles(&self) -> Vec<thread::JoinHandle<()>> {
        std::mem::take(&mut lock_recover(&self.handles))
    }
}

/// A crash black box captured when a worker wedges or dies: the trigger,
/// the frame ids it was holding, and the flight-recorder tail — enough
/// to reconstruct the last moments without a debugger on the drone.
#[derive(Debug, Clone)]
pub struct ServeBlackBox {
    /// Why the capture fired (e.g. `"worker 0 wedged after 210ms …"`).
    pub trigger: String,
    /// Frame ids in flight when the capture fired.
    pub frame_ids: Vec<u64>,
    /// The flight recorder's final events at capture time.
    pub tail: TraceSnapshot,
}

impl ServeBlackBox {
    /// Renders the black box as greppable plain text.
    pub fn to_text(&self) -> String {
        format!(
            "=== serve black box ===\ntrigger: {}\nframes in flight: {:?}\n{}",
            self.trigger,
            self.frame_ids,
            self.tail.to_text()
        )
    }
}

/// Bounded retention of [`ServeBlackBox`] captures plus the
/// `serve.black_box_captures` counter.
pub(crate) struct BlackBoxStore {
    boxes: Mutex<Vec<ServeBlackBox>>,
    captures: Counter,
    /// Flight-recorder events kept per capture.
    events: usize,
}

impl BlackBoxStore {
    pub fn new(captures: Counter, events: usize) -> Self {
        BlackBoxStore {
            boxes: Mutex::new(Vec::new()),
            captures,
            events,
        }
    }

    /// Snapshots the tracer tail and retains it under `trigger`.
    pub fn capture(&self, tracer: &Tracer, trigger: &str, frame_ids: &[u64]) {
        let tail = tracer.snapshot().tail_snapshot(self.events);
        let mut boxes = lock_recover(&self.boxes);
        if boxes.len() >= MAX_BLACK_BOXES {
            boxes.remove(0);
        }
        boxes.push(ServeBlackBox {
            trigger: trigger.to_string(),
            frame_ids: frame_ids.to_vec(),
            tail,
        });
        self.captures.inc();
    }

    /// Every retained capture, oldest first.
    pub fn all(&self) -> Vec<ServeBlackBox> {
        lock_recover(&self.boxes).clone()
    }
}

/// Watchdog tuning, derived from [`crate::ServeConfig`].
#[derive(Debug, Clone)]
pub(crate) struct WatchdogConfig {
    /// Tick period.
    pub interval: Duration,
    /// A worker busy past this is declared wedged.
    pub wedge_timeout: Duration,
    /// Replacement workers the watchdog may spawn over the server's life.
    pub max_restarts: usize,
    /// Quiet ticks (no panics/deaths/wedges, ladder at top) before
    /// Degraded recovers to Healthy.
    pub recovery_ticks: u32,
}

/// Spawns the supervisor thread.
pub(crate) fn spawn_watchdog(
    shared: Arc<WorkerShared>,
    cfg: WatchdogConfig,
    shutdown: Arc<AtomicBool>,
    mut brownout: Option<DegradeController>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("serve-watchdog".to_string())
        .spawn(move || {
            shared.tracer.name_thread("serve-watchdog");
            let wedges = shared.obs.counter("serve.worker_wedges");
            let restarts = shared.obs.counter("serve.worker_restarts");
            let downshifts = shared.obs.counter("serve.brownout_downshifts");
            let upshifts = shared.obs.counter("serve.brownout_upshifts");
            let mut restarts_used = 0usize;
            // Brownout pressure must come from *this* pool's queue, not
            // the registry counter: replicas share the counter name, and
            // one overloaded replica must not brown out its healthy peers.
            let mut last_drops = shared.queue.local_drops();
            let mut last_activity = 0u64;
            let mut quiet_ticks = 0u32;
            while !shutdown.load(Ordering::SeqCst) {
                thread::sleep(cfg.interval);
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }

                // 1. Wedge scan.
                for slot in shared.pool.slots_snapshot() {
                    if !slot.is_alive() || slot.abandoned.load(Ordering::SeqCst) {
                        continue;
                    }
                    if let Some(busy) = slot.busy_for(shared.epoch) {
                        if busy >= cfg.wedge_timeout {
                            handle_wedge(
                                &shared,
                                &slot,
                                busy,
                                &cfg,
                                &mut restarts_used,
                                &wedges,
                                &restarts,
                            );
                        }
                    }
                }

                // 2. Brownout: one load observation per tick.
                if let Some(ctrl) = brownout.as_mut() {
                    let now_drops = shared.queue.local_drops();
                    let delta = now_drops.saturating_sub(last_drops);
                    last_drops = now_drops;
                    if let Some(action) = ctrl.observe_frame(shared.queue.len() as f64, delta) {
                        let target = action.target();
                        shared.target_input.store(target, Ordering::SeqCst);
                        shared.resolution_gauge.set(target as f64);
                        match action {
                            DegradeAction::Downshift(_) => {
                                downshifts.inc();
                                shared.health.degrade();
                            }
                            DegradeAction::Upshift(_) => upshifts.inc(),
                        }
                    }
                }

                // 3. Recovery: quiet for long enough, ladder at the top.
                let activity = shared.panics.get() + shared.worker_deaths.get() + wedges.get();
                if activity == last_activity {
                    quiet_ticks = quiet_ticks.saturating_add(1);
                } else {
                    quiet_ticks = 0;
                    last_activity = activity;
                }
                let still_degraded_by_brownout = brownout.as_ref().is_some_and(|c| c.is_degraded());
                if quiet_ticks >= cfg.recovery_ticks
                    && !still_degraded_by_brownout
                    && matches!(shared.health.get(), Health::Degraded)
                {
                    shared.health.recover();
                }
            }
        })
        .expect("spawn watchdog thread")
}

/// Declares `slot` wedged: steal its jobs, answer them with typed
/// errors, black-box the trace tail, and spawn a replacement under the
/// restart budget.
#[allow(clippy::too_many_arguments)]
fn handle_wedge(
    shared: &Arc<WorkerShared>,
    slot: &WorkerSlot,
    busy: Duration,
    cfg: &WatchdogConfig,
    restarts_used: &mut usize,
    wedges: &Counter,
    restarts: &Counter,
) {
    slot.abandoned.store(true, Ordering::SeqCst);
    let Some(inflight) = slot.take_inflight() else {
        // The worker finished between our busy check and the steal: it
        // holds the replies and will keep looping — un-abandon it.
        slot.abandoned.store(false, Ordering::SeqCst);
        return;
    };
    wedges.inc();
    shared.fault_events.fetch_add(1, Ordering::SeqCst);
    shared.black_box.capture(
        &shared.tracer,
        &format!(
            "worker {} wedged after {:.0?} holding {} job(s)",
            slot.index,
            busy,
            inflight.frame_ids.len()
        ),
        &inflight.frame_ids,
    );
    let msg = format!(
        "worker {} stuck past {:.0?} deadline",
        slot.index, cfg.wedge_timeout
    );
    for reply in &inflight.replies {
        reply.deliver(Err(ServeError::WorkerWedged(msg.clone())));
    }
    if !slot.retire() {
        return; // the worker's own death path already did the accounting
    }
    shared.pool.worker_gone();
    shared.health.degrade();
    if *restarts_used < cfg.max_restarts {
        let target = shared.target_input.load(Ordering::SeqCst);
        match crate::batcher::rebuild_detector(shared, target) {
            Ok(det) => {
                *restarts_used += 1;
                restarts.inc();
                let new_slot = WorkerSlot::new(shared.pool.next_index());
                let handle = spawn_worker(Arc::clone(shared), Arc::clone(&new_slot), det);
                shared.pool.register(new_slot, handle);
            }
            Err(e) => {
                shared.black_box.capture(
                    &shared.tracer,
                    &format!("replacement rebuild failed: {e}"),
                    &[],
                );
            }
        }
    }
    if shared.pool.alive_count() == 0 {
        // No replacement and nobody left: fail loudly instead of hanging.
        shared.health.halt();
        shared.queue.close();
        shared.queue.fail_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_obs::Registry;

    #[test]
    fn health_cell_transitions_are_one_way_ratchets() {
        let obs = Registry::new();
        let cell = HealthCell::new(obs.gauge("serve.health"));
        assert!(matches!(cell.get(), Health::Healthy));
        cell.recover(); // no-op from Healthy
        assert!(matches!(cell.get(), Health::Healthy));
        cell.degrade();
        assert!(matches!(cell.get(), Health::Degraded));
        assert_eq!(obs.snapshot().gauge("serve.health"), Some(1.0));
        cell.recover();
        assert!(matches!(cell.get(), Health::Healthy));
        cell.halt();
        assert!(matches!(cell.get(), Health::Halted));
        cell.degrade(); // halted is terminal
        cell.recover();
        assert!(matches!(cell.get(), Health::Halted));
        assert_eq!(obs.snapshot().gauge("serve.health"), Some(2.0));
    }

    #[test]
    fn black_box_store_caps_retention_and_counts_captures() {
        let obs = Registry::new();
        let tracer = Tracer::noop();
        let store = BlackBoxStore::new(obs.counter("serve.black_box_captures"), 8);
        for i in 0..(MAX_BLACK_BOXES + 3) {
            store.capture(&tracer, &format!("trigger {i}"), &[i as u64]);
        }
        let boxes = store.all();
        assert_eq!(boxes.len(), MAX_BLACK_BOXES, "oldest captures dropped");
        assert_eq!(boxes[0].trigger, "trigger 3");
        assert!(boxes.last().unwrap().to_text().contains("trigger 18"));
        assert_eq!(
            obs.snapshot().counter("serve.black_box_captures"),
            Some((MAX_BLACK_BOXES + 3) as u64)
        );
    }

    #[test]
    fn pool_accounting_tracks_alive_workers() {
        let pool = Pool::new();
        assert_eq!(pool.alive_count(), 0);
        let i0 = pool.next_index();
        let i1 = pool.next_index();
        assert_ne!(i0, i1, "indices are unique");
        let slot = WorkerSlot::new(i0);
        pool.register(Arc::clone(&slot), thread::spawn(|| {}));
        assert_eq!(pool.alive_count(), 1);
        assert_eq!(pool.slots_snapshot().len(), 1);
        assert_eq!(pool.worker_gone(), 0);
        assert_eq!(pool.alive_count(), 0);
        for h in pool.take_handles() {
            h.join().unwrap();
        }
        assert!(pool.take_handles().is_empty(), "handles taken once");
    }
}
