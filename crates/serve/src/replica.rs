//! Replicated detector pools with health-aware dispatch, quarantine, and
//! canary re-admission.
//!
//! One [`ReplicaCore`] is a complete, private failure domain: its own
//! admission queue, worker pool, watchdog, brownout controller, and
//! health cell. Nothing is shared between replicas but the metric
//! registry — a panic, wedge, or brownout on one replica cannot touch
//! its peers.
//!
//! The [`ReplicaSet`] sits above the cores and makes three decisions:
//!
//! 1. **Dispatch** — `pick_primary` routes each request to the active
//!    replica with the shallowest queue, breaking ties by rolling p99
//!    then id; `pick_hedge` picks the best *other* replica when a
//!    request is at deadline risk.
//! 2. **Quarantine** — a supervisor thread watches each pool's private
//!    fault count (panics + deaths + wedges). A replica that halts, or
//!    keeps faulting across consecutive ticks, is taken out of rotation:
//!    its queue is failed fast, its watchdog stopped, its threads sent
//!    to the graveyard. The *last* active replica is never quarantined
//!    for faulting — degraded service beats no service — and a
//!    single-replica set keeps today's single-pool semantics exactly
//!    (terminal halt, no quarantine dance).
//! 3. **Re-admission** — a quarantined slot is rebuilt from the factory,
//!    but serves nothing until the fresh detector reproduces the
//!    reference *golden* canary detections bit-for-bit
//!    ([`dronet_detect::canary`]). A rebuild that fails the canary is
//!    dropped on the spot and retried next tick.
//!
//! Service health is the ratchet the tentpole promises: losing replicas
//! degrades, only losing *everything* (with rebuilds exhausted) halts.

use crate::batcher::{lock_recover, spawn_worker, BatchQueue, WorkerShared, WorkerSlot};
use crate::chaos::{ReplicaChaosPlan, ReplicaKillKind};
use crate::error::ServeError;
use crate::server::{BrownoutConfig, DetectorFactory, SizedDetectorFactory};
use crate::watchdog::{spawn_watchdog, BlackBoxStore, HealthCell, ServeBlackBox, WatchdogConfig};
use dronet_detect::canary::{check_canary, golden_detections};
use dronet_detect::{DegradeConfig, DegradeController, Detection, Detector, Health};
use dronet_obs::{Counter, Gauge, Registry, Tracer};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Latency samples retained per replica for the rolling p99 estimate.
const LATENCY_RING: usize = 256;

/// A small ring of recent end-to-end latencies, one per replica. Feeds
/// the dispatcher's p99 tie-break — cheap, approximate, and local.
pub(crate) struct LatencyRing {
    samples: Mutex<VecDeque<u64>>,
}

impl LatencyRing {
    pub fn new() -> Self {
        LatencyRing {
            samples: Mutex::new(VecDeque::with_capacity(LATENCY_RING)),
        }
    }

    /// Records one request latency served by (or charged to) this replica.
    pub fn record(&self, latency: Duration) {
        let mut s = lock_recover(&self.samples);
        if s.len() >= LATENCY_RING {
            s.pop_front();
        }
        s.push_back(latency.as_nanos() as u64);
    }

    /// The 99th-percentile latency over the ring, in nanoseconds
    /// (0 when no samples exist yet — a fresh replica looks fast, which
    /// is exactly the bias re-admission wants).
    pub fn p99_ns(&self) -> u64 {
        let s = lock_recover(&self.samples);
        if s.is_empty() {
            return 0;
        }
        let mut v: Vec<u64> = s.iter().copied().collect();
        v.sort_unstable();
        v[(v.len() - 1) * 99 / 100]
    }
}

/// One live replica: a private queue + worker pool + watchdog.
pub(crate) struct ReplicaCore {
    /// Slot id (stable across rebuilds).
    pub id: usize,
    pub queue: Arc<BatchQueue>,
    pub worker: Arc<WorkerShared>,
    /// Private shutdown flag for *this core's* watchdog, so quarantining
    /// one replica never stops a peer's supervisor machinery.
    watchdog_shutdown: Arc<AtomicBool>,
    watchdog: Mutex<Option<thread::JoinHandle<()>>>,
    pub latency: LatencyRing,
}

impl ReplicaCore {
    /// The input size this replica currently conforms frames to.
    pub fn current_input(&self, base: usize) -> usize {
        match self.worker.target_input.load(Ordering::SeqCst) {
            0 => base,
            t => t,
        }
    }

    /// Stops the watchdog, fails the backlog, halts the pool's health
    /// cell, and returns the worker join handles (callers decide whether
    /// joining is safe — a wedged worker may be mid-sleep).
    fn tear_down(&self) -> Vec<thread::JoinHandle<()>> {
        self.watchdog_shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = lock_recover(&self.watchdog).take() {
            let _ = h.join();
        }
        self.queue.close();
        self.queue.fail_pending();
        self.worker.health.halt();
        self.worker.pool.take_handles()
    }
}

/// Everything needed to build (and rebuild) a [`ReplicaCore`].
pub(crate) struct ReplicaBuilder {
    pub factory: DetectorFactory,
    pub sized_factory: Option<SizedDetectorFactory>,
    pub workers: usize,
    pub max_batch: usize,
    pub max_wait: Duration,
    pub dispatch_delay: Duration,
    pub queue_capacity: usize,
    pub black_box_events: usize,
    pub wedge_chaos: Option<crate::batcher::WedgePlan>,
    pub chaos_wedge_hold: Duration,
    pub watchdog_cfg: WatchdogConfig,
    pub brownout: Option<BrownoutConfig>,
    pub obs: Registry,
    pub tracer: Tracer,
}

impl ReplicaBuilder {
    /// Builds a detector at the ladder top and attaches the server's
    /// registry and tracer.
    fn build_detector(&self) -> Result<Detector, ServeError> {
        let mut det = (self.factory)()?;
        if self.obs.is_enabled() {
            det.set_observability(&self.obs);
        }
        if self.tracer.is_enabled() {
            det.set_tracing(&self.tracer);
        }
        Ok(det)
    }

    /// A fresh brownout controller for one core (each replica walks its
    /// own ladder — an overloaded replica browns out alone).
    fn build_brownout(&self) -> Result<Option<DegradeController>, ServeError> {
        let Some(b) = &self.brownout else {
            return Ok(None);
        };
        let initial = *b.ladder.last().expect("validated non-empty");
        DegradeController::new(DegradeConfig {
            ladder: b.ladder.clone(),
            initial,
            overload_queue: b.overload_queue,
            overload_windows: b.overload_windows,
            calm_windows: b.calm_windows,
            cooldown_windows: b.cooldown_windows,
            window_frames: b.window_ticks,
        })
        .map(Some)
        .map_err(|e| ServeError::Config(e.to_string()))
    }

    /// Builds one complete replica: detectors, queue, worker pool,
    /// watchdog. `first` (when given) becomes worker 0's detector —
    /// the canary-verified build on the re-admission path.
    pub fn build_core(
        &self,
        id: usize,
        first: Option<Detector>,
    ) -> Result<Arc<ReplicaCore>, ServeError> {
        let brownout_ctrl = self.build_brownout()?;
        let mut detectors = Vec::with_capacity(self.workers);
        if let Some(d) = first {
            detectors.push(d);
        }
        while detectors.len() < self.workers {
            detectors.push(self.build_detector()?);
        }
        let base = detectors[0].input_chw().1;

        let queue = BatchQueue::new(self.queue_capacity, &self.obs);
        let initial_target = brownout_ctrl.as_ref().map_or(0, |c| c.current());
        let resolution_gauge = self.obs.gauge("serve.input_resolution");
        resolution_gauge.set(base as f64);

        let worker = Arc::new(WorkerShared {
            queue: Arc::clone(&queue),
            factory: Arc::clone(&self.factory),
            sized_factory: self.sized_factory.clone(),
            max_batch: self.max_batch,
            max_wait: self.max_wait,
            dispatch_delay: self.dispatch_delay,
            epoch: Instant::now(),
            pool: crate::watchdog::Pool::new(),
            health: HealthCell::new(self.obs.gauge(&format!("serve.replica.{id}.health"))),
            target_input: AtomicUsize::new(initial_target),
            resolution_gauge,
            wedge: self.wedge_chaos.clone(),
            wedge_armed: AtomicBool::new(self.wedge_chaos.is_some()),
            black_box: BlackBoxStore::new(
                self.obs.counter("serve.black_box_captures"),
                self.black_box_events,
            ),
            batch_size_hist: self.obs.histogram("serve.batch_size"),
            queue_wait_hist: self.obs.histogram("serve.queue_wait"),
            forward_hist: self.obs.histogram("serve.forward"),
            panics: self.obs.counter("serve.worker_panics"),
            worker_deaths: self.obs.counter("serve.worker_deaths"),
            fault_events: std::sync::atomic::AtomicU64::new(0),
            chaos_wedge: AtomicBool::new(false),
            chaos_panic: AtomicBool::new(false),
            chaos_wedge_hold: self.chaos_wedge_hold,
            obs: self.obs.clone(),
            tracer: self.tracer.clone(),
        });
        for det in detectors {
            let slot = WorkerSlot::new(worker.pool.next_index());
            let handle = spawn_worker(Arc::clone(&worker), Arc::clone(&slot), det);
            worker.pool.register(slot, handle);
        }
        let watchdog_shutdown = Arc::new(AtomicBool::new(false));
        let watchdog = spawn_watchdog(
            Arc::clone(&worker),
            self.watchdog_cfg.clone(),
            Arc::clone(&watchdog_shutdown),
            brownout_ctrl,
        );
        Ok(Arc::new(ReplicaCore {
            id,
            queue,
            worker,
            watchdog_shutdown,
            watchdog: Mutex::new(Some(watchdog)),
            latency: LatencyRing::new(),
        }))
    }
}

/// Quarantine and re-admission policy, from [`crate::ServeConfig`].
pub(crate) struct ReplicaPolicy {
    /// Number of replica slots.
    pub replicas: usize,
    /// Consecutive-tick fault accumulation at which an active replica is
    /// quarantined (when it is not the last one standing).
    pub quarantine_faults: u64,
    /// Factory failures tolerated per slot before the slot is given up.
    pub max_rebuild_failures: usize,
    /// Forced canary failures remaining — a chaos knob proving the
    /// canary gate actually gates.
    pub canary_chaos: AtomicUsize,
}

/// Where a slot currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotStatus {
    /// In rotation, taking traffic.
    Active,
    /// Out of rotation; the supervisor is rebuilding it.
    Quarantined,
}

impl SlotStatus {
    fn as_str(self) -> &'static str {
        match self {
            SlotStatus::Active => "active",
            SlotStatus::Quarantined => "quarantined",
        }
    }
}

struct SlotState {
    core: Option<Arc<ReplicaCore>>,
    status: SlotStatus,
    generation: u64,
    /// Cumulative canary probes failed on this slot.
    canary_failures: u64,
    /// Consecutive factory failures since the last successful rebuild.
    rebuild_failures: usize,
    /// Fault events accumulated over consecutive faulting ticks.
    recent_faults: u64,
    /// The pool's fault counter at the last scan (delta baseline).
    last_fault_events: u64,
}

/// One replica slot: a stable identity whose core is replaced across
/// quarantine/rebuild cycles.
pub(crate) struct ReplicaSlot {
    pub id: usize,
    state: Mutex<SlotState>,
}

impl ReplicaSlot {
    /// The current core, if the slot is active.
    pub fn active_core(&self) -> Option<Arc<ReplicaCore>> {
        let s = lock_recover(&self.state);
        match s.status {
            SlotStatus::Active => s.core.clone(),
            SlotStatus::Quarantined => None,
        }
    }

    /// The current core regardless of rotation status (debug surfaces).
    fn any_core(&self) -> Option<Arc<ReplicaCore>> {
        lock_recover(&self.state).core.clone()
    }
}

/// The replicated pool: slots, dispatch, quarantine, re-admission.
pub(crate) struct ReplicaSet {
    pub slots: Vec<ReplicaSlot>,
    builder: ReplicaBuilder,
    pub policy: ReplicaPolicy,
    /// The service-level health cell — owns the `serve.health` gauge.
    /// Mirrored from replica states by the supervisor: replica loss
    /// degrades, total loss halts.
    pub service_health: HealthCell,
    /// Reference canary detections, computed once from a trusted build
    /// at startup; every re-admitted replica must reproduce them.
    golden: Vec<Detection>,
    /// The detector's native input `(c, h, w)` at the ladder top.
    pub base_chw: (usize, usize, usize),
    /// Worker threads of quarantined cores — possibly mid-wedge-sleep,
    /// joined only at server shutdown.
    graveyard: Mutex<Vec<thread::JoinHandle<()>>>,
    pub hedge_issued: Counter,
    pub hedge_won: Counter,
    pub hedge_wasted: Counter,
    quarantine_entered: Counter,
    quarantine_readmitted: Counter,
    canary_failed: Counter,
    active_gauge: Gauge,
    /// Serving start — the replica chaos plan's time origin.
    start: Instant,
    chaos: Option<ReplicaChaosPlan>,
    /// Index of the next unapplied chaos event.
    chaos_cursor: AtomicUsize,
}

impl ReplicaSet {
    /// Builds the full set: a reference detector for the golden canary
    /// output, then one core per slot (failing fast on any broken build).
    pub fn new(
        builder: ReplicaBuilder,
        policy: ReplicaPolicy,
        chaos: Option<ReplicaChaosPlan>,
    ) -> Result<Arc<ReplicaSet>, ServeError> {
        let mut reference = builder.build_detector()?;
        let base_chw = reference.input_chw();
        let golden = golden_detections(&mut reference)
            .map_err(|e| ServeError::Config(format!("canary golden run failed: {e}")))?;
        // The reference build is trusted by construction: hand it to the
        // first slot instead of discarding a warm detector.
        let mut first = Some(reference);

        let obs = builder.obs.clone();
        let mut slots = Vec::with_capacity(policy.replicas);
        for id in 0..policy.replicas {
            let core = builder.build_core(id, first.take())?;
            slots.push(ReplicaSlot {
                id,
                state: Mutex::new(SlotState {
                    core: Some(core),
                    status: SlotStatus::Active,
                    generation: 0,
                    canary_failures: 0,
                    rebuild_failures: 0,
                    recent_faults: 0,
                    last_fault_events: 0,
                }),
            });
        }
        let active_gauge = obs.gauge("serve.replicas_active");
        active_gauge.set(policy.replicas as f64);
        Ok(Arc::new(ReplicaSet {
            slots,
            policy,
            service_health: HealthCell::new(obs.gauge("serve.health")),
            golden,
            base_chw,
            graveyard: Mutex::new(Vec::new()),
            hedge_issued: obs.counter("serve.hedge.issued"),
            hedge_won: obs.counter("serve.hedge.won"),
            hedge_wasted: obs.counter("serve.hedge.wasted"),
            quarantine_entered: obs.counter("serve.quarantine.entered"),
            quarantine_readmitted: obs.counter("serve.quarantine.readmitted"),
            canary_failed: obs.counter("serve.quarantine.canary_failed"),
            active_gauge,
            start: Instant::now(),
            chaos,
            chaos_cursor: AtomicUsize::new(0),
            builder,
        }))
    }

    /// Every in-rotation core that still has workers serving (health not
    /// Halted), with its slot id.
    pub fn active_cores(&self) -> Vec<Arc<ReplicaCore>> {
        self.slots
            .iter()
            .filter_map(|s| s.active_core())
            .filter(|c| !matches!(c.worker.health.get(), Health::Halted))
            .collect()
    }

    /// How many replicas are currently in rotation and serviceable.
    pub fn active_count(&self) -> usize {
        self.active_cores().len()
    }

    /// Health-aware dispatch: the serviceable replica with the
    /// shallowest queue, breaking ties by rolling p99, then id.
    pub fn pick_primary(&self) -> Option<Arc<ReplicaCore>> {
        self.active_cores()
            .into_iter()
            .min_by_key(|c| (c.queue.len(), c.latency.p99_ns(), c.id))
    }

    /// The best serviceable replica other than `exclude` — the hedge
    /// target for a request whose primary is at deadline risk.
    pub fn pick_hedge(&self, exclude: usize) -> Option<Arc<ReplicaCore>> {
        self.active_cores()
            .into_iter()
            .filter(|c| c.id != exclude)
            .min_by_key(|c| (c.queue.len(), c.latency.p99_ns(), c.id))
    }

    /// The largest input size any active replica currently serves at
    /// (health surfaces); the base size when nothing is active.
    pub fn current_input(&self) -> usize {
        self.active_cores()
            .iter()
            .map(|c| c.current_input(self.base_chw.1))
            .max()
            .unwrap_or(self.base_chw.1)
    }

    /// Load-aware `Retry-After`: the *most optimistic* active queue
    /// (a shed client should come back when anyone can take it).
    pub fn retry_after_hint(&self, base_secs: u64, max_secs: u64) -> u64 {
        self.active_cores()
            .iter()
            .map(|c| c.queue.retry_after_hint(base_secs, max_secs))
            .min()
            .unwrap_or_else(|| base_secs.max(1))
    }

    /// Total queued jobs across active replicas.
    pub fn queue_depth_total(&self) -> usize {
        self.active_cores().iter().map(|c| c.queue.len()).sum()
    }

    /// Total live workers across all cores (quarantined ones report 0).
    pub fn workers_alive_total(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|s| s.any_core())
            .map(|c| c.worker.pool.alive_count())
            .sum()
    }

    /// Crash black boxes from every core, in slot order.
    pub fn black_boxes(&self) -> Vec<ServeBlackBox> {
        self.slots
            .iter()
            .filter_map(|s| s.any_core())
            .flat_map(|c| c.worker.black_box.all())
            .collect()
    }

    /// One supervisor tick: chaos, quarantine scan, rebuilds, gauges,
    /// service-health mirror.
    fn tick(&self) {
        self.apply_chaos();
        self.scan_and_quarantine();
        self.try_rebuilds();
        self.publish_gauges();
        self.mirror_health();
    }

    /// Applies every due chaos event to its slot's *current* core.
    fn apply_chaos(&self) {
        let Some(plan) = &self.chaos else { return };
        let elapsed = self.start.elapsed();
        loop {
            let i = self.chaos_cursor.load(Ordering::SeqCst);
            let Some(kill) = plan.kills.get(i) else {
                return;
            };
            if kill.at > elapsed {
                return;
            }
            self.chaos_cursor.store(i + 1, Ordering::SeqCst);
            let Some(slot) = self.slots.get(kill.replica) else {
                continue;
            };
            let Some(core) = slot.any_core() else {
                continue;
            };
            match kill.kind {
                ReplicaKillKind::Wedge => core.worker.chaos_wedge.store(true, Ordering::SeqCst),
                ReplicaKillKind::Panic => core.worker.chaos_panic.store(true, Ordering::SeqCst),
                ReplicaKillKind::Heal => {
                    core.worker.chaos_wedge.store(false, Ordering::SeqCst);
                    core.worker.chaos_panic.store(false, Ordering::SeqCst);
                }
            }
        }
    }

    /// Accumulates per-replica fault deltas and pulls repeat offenders
    /// out of rotation. Single-replica sets never quarantine — they keep
    /// the single-pool semantics (terminal halt) exactly.
    fn scan_and_quarantine(&self) {
        if self.policy.replicas <= 1 {
            return;
        }
        for slot in &self.slots {
            // Phase 1: fault accounting under the slot lock, decision
            // inputs copied out (active_count locks peer slots, so it
            // must not run while this slot's lock is held).
            let (core, halted, faulting) = {
                let mut s = lock_recover(&slot.state);
                let Some(core) = (match s.status {
                    SlotStatus::Active => s.core.clone(),
                    SlotStatus::Quarantined => None,
                }) else {
                    continue;
                };
                let fe = core.worker.fault_events.load(Ordering::SeqCst);
                let delta = fe.saturating_sub(s.last_fault_events);
                s.last_fault_events = fe;
                if delta > 0 {
                    s.recent_faults += delta;
                } else {
                    s.recent_faults = 0;
                }
                let halted = matches!(core.worker.health.get(), Health::Halted);
                let faulting = s.recent_faults >= self.policy.quarantine_faults;
                (core, halted, faulting)
            };
            // Never quarantine the last serviceable replica for mere
            // faulting; a halted core serves nothing either way.
            let last_standing = self.active_count() <= 1;
            if !(halted || (faulting && !last_standing)) {
                continue;
            }
            {
                let mut s = lock_recover(&slot.state);
                if s.status != SlotStatus::Active {
                    continue;
                }
                s.core = None;
                s.status = SlotStatus::Quarantined;
                s.recent_faults = 0;
            }
            self.quarantine_entered.inc();
            // Teardown outside the slot lock: joining the watchdog can
            // take a tick, and dispatch must not block on it.
            let orphans = core.tear_down();
            lock_recover(&self.graveyard).extend(orphans);
        }
    }

    /// Rebuilds quarantined slots, gating re-admission on the canary.
    fn try_rebuilds(&self) {
        for slot in &self.slots {
            {
                let s = lock_recover(&slot.state);
                if s.status != SlotStatus::Quarantined
                    || s.rebuild_failures > self.policy.max_rebuild_failures
                {
                    continue;
                }
            }
            // Chaos gate: force the next N canary probes to fail,
            // proving a bad rebuild cannot slip back into rotation.
            let forced_failure = self
                .policy
                .canary_chaos
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                .is_ok();
            if forced_failure {
                self.canary_failed.inc();
                let mut s = lock_recover(&slot.state);
                s.canary_failures += 1;
                continue;
            }
            let mut probe = match self.builder.build_detector() {
                Ok(d) => d,
                Err(_) => {
                    let mut s = lock_recover(&slot.state);
                    s.rebuild_failures += 1;
                    continue;
                }
            };
            if !check_canary(&mut probe, &self.golden).passed {
                self.canary_failed.inc();
                let mut s = lock_recover(&slot.state);
                s.canary_failures += 1;
                continue;
            }
            match self.builder.build_core(slot.id, Some(probe)) {
                Ok(core) => {
                    let mut s = lock_recover(&slot.state);
                    s.core = Some(core);
                    s.status = SlotStatus::Active;
                    s.generation += 1;
                    s.rebuild_failures = 0;
                    s.recent_faults = 0;
                    s.last_fault_events = 0;
                    drop(s);
                    self.quarantine_readmitted.inc();
                }
                Err(_) => {
                    let mut s = lock_recover(&slot.state);
                    s.rebuild_failures += 1;
                }
            }
        }
    }

    /// Publishes per-replica gauges and the active-count gauge.
    fn publish_gauges(&self) {
        let obs = &self.builder.obs;
        for slot in &self.slots {
            let prefix = format!("serve.replica.{}", slot.id);
            match slot.any_core() {
                Some(core) => {
                    obs.gauge(&format!("{prefix}.queue_depth"))
                        .set(core.queue.len() as f64);
                    obs.gauge(&format!("{prefix}.input_resolution"))
                        .set(core.current_input(self.base_chw.1) as f64);
                    obs.gauge(&format!("{prefix}.p99_ms"))
                        .set(core.latency.p99_ns() as f64 / 1e6);
                }
                None => {
                    obs.gauge(&format!("{prefix}.queue_depth")).set(0.0);
                    obs.gauge(&format!("{prefix}.p99_ms")).set(0.0);
                }
            }
        }
        self.active_gauge.set(self.active_count() as f64);
    }

    /// Folds replica states into the service health cell.
    ///
    /// Single replica: mirror its pool health exactly (today's
    /// semantics). Multiple: all active and healthy → Healthy; nothing
    /// serviceable with every rebuild budget spent → Halted (terminal);
    /// anything in between → Degraded.
    fn mirror_health(&self) {
        if self.policy.replicas <= 1 {
            let health = self
                .slots
                .first()
                .and_then(|s| s.any_core())
                .map_or(Health::Halted, |c| c.worker.health.get());
            match health {
                Health::Healthy => self.service_health.recover(),
                Health::Degraded => self.service_health.degrade(),
                Health::Halted => self.service_health.halt(),
            }
            return;
        }
        let active = self.active_cores();
        if active.is_empty() {
            let exhausted = self.slots.iter().all(|s| {
                lock_recover(&s.state).rebuild_failures > self.policy.max_rebuild_failures
            });
            if exhausted {
                self.service_health.halt();
            } else {
                self.service_health.degrade();
            }
            return;
        }
        let all_in = active.len() == self.policy.replicas;
        let all_healthy = active
            .iter()
            .all(|c| matches!(c.worker.health.get(), Health::Healthy));
        if all_in && all_healthy {
            self.service_health.recover();
        } else {
            self.service_health.degrade();
        }
    }

    /// Full teardown at server shutdown: every core torn down, every
    /// worker (graveyard included) joined.
    pub fn shutdown(&self) {
        let mut handles = Vec::new();
        for slot in &self.slots {
            let core = lock_recover(&slot.state).core.take();
            if let Some(core) = core {
                handles.extend(core.tear_down());
            }
        }
        handles.append(&mut lock_recover(&self.graveyard));
        for h in handles {
            let _ = h.join();
        }
        self.service_health.halt();
    }

    /// `/debug/replicas` body: per-slot status as JSON (no booleans —
    /// the in-tree parser has no literals).
    pub fn debug_json(&self) -> String {
        let mut rows = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let (status, generation, canary_failures, rebuild_failures) = {
                let s = lock_recover(&slot.state);
                (
                    s.status,
                    s.generation,
                    s.canary_failures,
                    s.rebuild_failures,
                )
            };
            let (health, depth, alive, input, p99_ms) = match slot.any_core() {
                Some(c) => (
                    c.worker.health.get().as_metric(),
                    c.queue.len(),
                    c.worker.pool.alive_count(),
                    c.current_input(self.base_chw.1),
                    c.latency.p99_ns() as f64 / 1e6,
                ),
                None => (Health::Halted.as_metric(), 0, 0, 0, 0.0),
            };
            rows.push(format!(
                "{{\"id\": {}, \"status\": \"{}\", \"generation\": {generation}, \
                 \"health\": {health}, \"queue_depth\": {depth}, \"workers_alive\": {alive}, \
                 \"input_resolution\": {input}, \"p99_ms\": {p99_ms:.3}, \
                 \"canary_failures\": {canary_failures}, \"rebuild_failures\": {rebuild_failures}}}",
                slot.id,
                status.as_str(),
            ));
        }
        format!(
            "{{\"replicas_total\": {}, \"replicas_active\": {}, \"service_health\": {}, \
             \"replicas\": [{}]}}\n",
            self.policy.replicas,
            self.active_count(),
            self.service_health.get().as_metric(),
            rows.join(", ")
        )
    }
}

/// Spawns the replica supervisor thread: one [`ReplicaSet::tick`] per
/// `interval` until `shutdown`.
pub(crate) fn spawn_supervisor(
    set: Arc<ReplicaSet>,
    interval: Duration,
    shutdown: Arc<AtomicBool>,
) -> thread::JoinHandle<()> {
    thread::Builder::new()
        .name("serve-replicas".to_string())
        .spawn(move || loop {
            thread::sleep(interval);
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            set.tick();
        })
        .expect("spawn replica supervisor thread")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_ring_p99_and_bounded_retention() {
        let ring = LatencyRing::new();
        assert_eq!(ring.p99_ns(), 0, "empty ring reads fast");
        for i in 1..=100u64 {
            ring.record(Duration::from_nanos(i));
        }
        assert_eq!(ring.p99_ns(), 99);
        // Overflow the ring: old (small) samples fall out.
        for _ in 0..LATENCY_RING {
            ring.record(Duration::from_nanos(1_000));
        }
        assert_eq!(ring.p99_ns(), 1_000);
    }
}
