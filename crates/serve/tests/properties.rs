//! Property-based fuzzing of the HTTP parser — the same hostile-input
//! discipline `data::ppm` is held to: for ANY byte stream (garbage,
//! truncated, or a mutated-valid request) the parser must return a typed
//! result, never panic, and never claim to have consumed more bytes than it
//! was given.

use dronet_serve::http::{parse_request, HttpError, HttpLimits, Method};
use proptest::prelude::*;

/// A well-formed request to mutate.
fn valid_request(body_len: usize) -> Vec<u8> {
    let mut req =
        format!("POST /detect HTTP/1.1\r\nHost: localhost\r\nContent-Length: {body_len}\r\n\r\n")
            .into_bytes();
    req.extend(std::iter::repeat_n(0xAB, body_len));
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary garbage never panics and never over-consumes.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let limits = HttpLimits::default();
        match parse_request(&bytes, &limits) {
            Ok(Some((_, consumed))) => prop_assert!(consumed <= bytes.len()),
            Ok(None) => {}
            Err(_) => {} // typed rejection is the expected outcome
        }
    }

    /// Garbage under tiny limits never panics either (limit arithmetic is
    /// where off-by-ones hide).
    #[test]
    fn garbage_under_tiny_limits_never_panics(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        max_head in 0usize..32,
        max_body in 0usize..16,
    ) {
        let limits = HttpLimits {
            max_head_bytes: max_head,
            max_headers: 2,
            max_body_bytes: max_body,
            max_target_bytes: 8,
        };
        let _ = parse_request(&bytes, &limits);
    }

    /// Every truncation of a valid request is either "need more data" or a
    /// typed error — never a panic, never a phantom success.
    #[test]
    fn truncations_never_panic(body_len in 0usize..64, cut in 0usize..128) {
        let full = valid_request(body_len);
        let cut = cut.min(full.len());
        let truncated = &full[..cut];
        match parse_request(truncated, &HttpLimits::default()) {
            Ok(Some((req, consumed))) => {
                // Only possible when the cut landed exactly at the end.
                prop_assert_eq!(consumed, full.len());
                prop_assert_eq!(req.body.len(), body_len);
            }
            Ok(None) => {}
            Err(_) => {}
        }
    }

    /// Single-byte mutations of a valid request never panic, and when they
    /// still parse, the parse is internally consistent.
    #[test]
    fn mutations_never_panic(
        body_len in 0usize..32,
        pos in 0usize..256,
        replacement in any::<u8>(),
    ) {
        let mut req = valid_request(body_len);
        let pos = pos % req.len();
        req[pos] = replacement;
        match parse_request(&req, &HttpLimits::default()) {
            Ok(Some((parsed, consumed))) => {
                prop_assert!(consumed <= req.len());
                prop_assert!(parsed.body.len() <= req.len());
            }
            Ok(None) => {}
            Err(_) => {}
        }
    }

    /// The unmutated request always parses, regardless of body size within
    /// limits — the fuzz baseline is actually valid.
    #[test]
    fn valid_requests_always_parse(body_len in 0usize..512) {
        let full = valid_request(body_len);
        let (req, consumed) = parse_request(&full, &HttpLimits::default())
            .expect("valid request")
            .expect("complete request");
        prop_assert_eq!(req.method, Method::Post);
        prop_assert_eq!(req.body.len(), body_len);
        prop_assert_eq!(consumed, full.len());
    }

    /// Incremental-parse equivalence: feeding a valid request split at ANY
    /// byte boundary, every strict prefix must say "need more data" and the
    /// first complete parse must match the one-shot parse exactly. This is
    /// the invariant the keep-alive connection loop leans on: reads arrive
    /// in arbitrary fragments (the chaos drip clients make sure of it) and
    /// the parse outcome must not depend on the fragmentation.
    #[test]
    fn incremental_parse_is_equivalent_to_one_shot(body_len in 0usize..96) {
        let full = valid_request(body_len);
        let limits = HttpLimits::default();
        let (oneshot, oneshot_consumed) = parse_request(&full, &limits)
            .expect("valid request")
            .expect("complete request");
        for cut in 0..full.len() {
            match parse_request(&full[..cut], &limits) {
                Ok(None) => {}
                other => prop_assert!(false, "prefix of {cut} bytes parsed as {other:?}"),
            }
        }
        let (req, consumed) = parse_request(&full, &limits)
            .expect("valid request")
            .expect("complete request");
        prop_assert_eq!(req.method, oneshot.method);
        prop_assert_eq!(req.target, oneshot.target);
        prop_assert_eq!(req.body, oneshot.body);
        prop_assert_eq!(consumed, oneshot_consumed);
    }

    /// Transfer-Encoding is rejected with its own typed error (the server
    /// maps it to `501 Not Implemented`) no matter how the bytes arrive:
    /// the incremental-equivalence property again, but for the rejection —
    /// every prefix either says "need more data" or reports exactly
    /// `UnsupportedTransferEncoding`, and once the full head is present the
    /// rejection is unconditional. Casing, value, and header position must
    /// not matter (smuggling hinges on a parser that sometimes misses it).
    #[test]
    fn transfer_encoding_is_rejected_at_every_split(
        body_len in 0usize..32,
        te_idx in 0usize..4,
        before in any::<bool>(),
        uppercase in any::<bool>(),
    ) {
        let te_value = ["chunked", "identity", "gzip, chunked", "x"][te_idx];
        let name = if uppercase { "TRANSFER-ENCODING" } else { "Transfer-Encoding" };
        let te = format!("{name}: {te_value}\r\n");
        let cl = format!("Content-Length: {body_len}\r\n");
        let (first, second) = if before { (&te, &cl) } else { (&cl, &te) };
        let mut bytes =
            format!("POST /detect HTTP/1.1\r\nHost: x\r\n{first}{second}\r\n").into_bytes();
        bytes.extend(std::iter::repeat_n(0xAB, body_len));
        let limits = HttpLimits::default();
        // One-shot: always the typed rejection.
        prop_assert_eq!(
            parse_request(&bytes, &limits).unwrap_err(),
            HttpError::UnsupportedTransferEncoding
        );
        // Incremental: prefixes never panic, never succeed, and the only
        // error they may surface is the same typed rejection.
        for cut in 0..bytes.len() {
            match parse_request(&bytes[..cut], &limits) {
                Ok(None) => {}
                Err(HttpError::UnsupportedTransferEncoding) => {}
                other => prop_assert!(false, "prefix of {cut} bytes parsed as {other:?}"),
            }
        }
    }

    /// Request smuggling: two `Content-Length` headers are ALWAYS rejected
    /// with a typed error — agreeing or not, whatever the values.
    #[test]
    fn duplicate_content_length_is_always_rejected(
        body_len in 0usize..32,
        second in 0usize..64,
    ) {
        let req = format!(
            "POST /detect HTTP/1.1\r\nHost: x\r\nContent-Length: {body_len}\r\n\
             Content-Length: {second}\r\n\r\n"
        );
        let mut bytes = req.into_bytes();
        bytes.extend(std::iter::repeat_n(0xAB, body_len.max(second)));
        prop_assert!(parse_request(&bytes, &HttpLimits::default()).is_err());
    }
}
