//! Property tests for the histogram estimator, the JSON exporter and the
//! flight-recorder ring buffer: the invariants the rest of the workspace
//! leans on (percentile bounds, bucket accounting, lossless export,
//! newest-events-retained wrap-around) must hold for arbitrary inputs.

use dronet_obs::{ChromeTrace, JsonExporter, Registry, RollingWindow, Snapshot, TraceKind, Tracer};
use proptest::prelude::*;

/// Names stressing the JSON escaper: quotes, backslashes, control bytes.
fn metric_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..8, 1..12).prop_map(|picks| {
        const ALPHABET: [char; 8] = ['a', 'Z', '.', '_', '"', '\\', '\n', '\t'];
        picks.into_iter().map(|i| ALPHABET[i]).collect()
    })
}

proptest! {
    /// Recorded samples must be bounded by the exact min/max, percentiles
    /// must be monotone and stay inside `[min, max]`, and the bucket counts
    /// must account for every sample under strictly increasing bounds.
    #[test]
    fn histogram_invariants(ns in prop::collection::vec(1u64..5_000_000_000u64, 1..200)) {
        let registry = Registry::new();
        let hist = registry.histogram("h");
        for &v in &ns {
            hist.record_ns(v);
        }

        let min = *ns.iter().min().unwrap();
        let max = *ns.iter().max().unwrap();
        let snap = registry.snapshot();
        let h = snap.histogram("h").unwrap();

        prop_assert_eq!(h.count, ns.len() as u64);
        prop_assert_eq!(h.sum_ns, ns.iter().copied().map(u128::from).sum::<u128>() as u64);
        prop_assert_eq!(h.min_ns, min);
        prop_assert_eq!(h.max_ns, max);

        prop_assert!(h.p50_ns >= min && h.p50_ns <= max);
        prop_assert!(h.p50_ns <= h.p90_ns && h.p90_ns <= h.p99_ns);
        prop_assert!(h.p99_ns <= max);

        let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(bucket_total, ns.len() as u64);
        for pair in h.buckets.windows(2) {
            prop_assert!(pair[0].le_ns < pair[1].le_ns, "bucket bounds must increase");
        }
    }

    /// Clamping: any `p`, including NaN and out-of-range, yields a value
    /// inside `[min, max]` of the recorded samples.
    #[test]
    fn percentile_is_always_in_range(
        ns in prop::collection::vec(1u64..10_000_000u64, 1..50),
        p in -50.0f64..150.0,
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("h");
        for &v in &ns {
            hist.record_ns(v);
        }
        let min = *ns.iter().min().unwrap();
        let max = *ns.iter().max().unwrap();
        for q in [p, f64::NAN] {
            let v = hist.percentile(q).as_nanos() as u64;
            prop_assert!(v >= min && v <= max, "p={} gave {} outside [{}, {}]", q, v, min, max);
        }
    }

    /// The JSON export is lossless for arbitrary metric names (including
    /// characters that need escaping) and values.
    #[test]
    fn json_export_round_trips(
        counters in prop::collection::vec((metric_name(), 0u64..u64::MAX / 2), 0..6),
        gauges in prop::collection::vec((metric_name(), -1.0e12f64..1.0e12), 0..6),
        samples in prop::collection::vec((metric_name(), prop::collection::vec(1u64..1_000_000_000u64, 1..20)), 0..4),
    ) {
        let registry = Registry::new();
        for (name, v) in &counters {
            registry.counter(name).add(*v);
        }
        for (name, v) in &gauges {
            registry.gauge(name).set(*v);
        }
        for (name, values) in &samples {
            let hist = registry.histogram(name);
            for &v in values {
                hist.record_ns(v);
            }
        }

        let snap = registry.snapshot();
        let json = JsonExporter::to_string(&snap);
        let parsed = Snapshot::from_json(&json)
            .map_err(|e| TestCaseError::Fail(format!("parse failed: {e}\n{json}")))?;
        prop_assert_eq!(parsed, snap);
    }

    /// Ring wrap-around keeps exactly the newest `capacity` events (or all
    /// of them when fewer were written), in order, and accounts for every
    /// overwritten event in `dropped`.
    #[test]
    fn trace_ring_retains_newest_events(
        capacity in 2usize..64,
        writes in 0u64..300,
    ) {
        let tracer = Tracer::with_capacity(capacity);
        for i in 0..writes {
            tracer.instant_frame("tick", i);
        }
        let snap = tracer.snapshot();
        let retained = (writes as usize).min(capacity);
        prop_assert_eq!(snap.events.len(), retained);
        prop_assert_eq!(snap.dropped, writes.saturating_sub(capacity as u64));
        let expect_first = writes - retained as u64;
        for (offset, event) in snap.events.iter().enumerate() {
            prop_assert_eq!(event.frame_id, expect_first + offset as u64);
            prop_assert_eq!(event.kind, TraceKind::Instant);
        }
    }

    /// Interleaved spans and instants survive wrap: the merged snapshot is
    /// sequence-ordered, every `End` is newer than the events before it,
    /// and the Chrome export of a wrapped ring still parses.
    #[test]
    fn trace_ring_wrap_preserves_order_and_exports(
        capacity in 4usize..32,
        frames in 1u64..60,
    ) {
        let tracer = Tracer::with_capacity(capacity);
        for frame in 0..frames {
            let span = tracer.frame_span("frame", frame);
            tracer.instant("mid");
            span.stop();
        }
        let snap = tracer.snapshot();
        prop_assert!(snap.events.len() <= capacity);
        prop_assert_eq!(snap.events.len() as u64 + snap.dropped, frames * 3);
        for pair in snap.events.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq, "sequence-ordered");
            prop_assert!(pair[0].ts_ns <= pair[1].ts_ns, "single thread: time-ordered");
        }
        let parsed = ChromeTrace::parse(&ChromeTrace::to_string(&snap))
            .map_err(|e| TestCaseError::Fail(format!("chrome parse failed: {e}")))?;
        // Every End in the ring yields an X event even when its Begin was
        // overwritten (the End carries the duration).
        let ends = snap.events.iter().filter(|e| e.kind == TraceKind::End).count();
        prop_assert_eq!(parsed.iter().filter(|e| e.ph == 'X').count(), ends);
    }
}

/// Brute-force model of the rolling window's documented semantics: a map
/// from ring slot to the (newest epoch, samples) pair it holds. Records
/// for an older epoch than the slot's current occupant are dropped.
fn window_oracle(
    sub_buckets: u64,
    bucket_ns: u64,
    records: &[(u64, u64)],
    query_ns: u64,
) -> (u64, u64) {
    use std::collections::BTreeMap;
    let mut slots: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new(); // slot -> (epoch, count, sum)
    for &(t, v) in records {
        let epoch = t / bucket_ns;
        let slot = epoch % sub_buckets;
        let e = slots.entry(slot).or_insert((epoch, 0, 0));
        if epoch < e.0 {
            continue; // older than the slot's occupant: dropped
        }
        if epoch > e.0 {
            *e = (epoch, 0, 0); // recycled in place
        }
        e.1 += 1;
        e.2 += v;
    }
    let now_epoch = query_ns / bucket_ns;
    let oldest = now_epoch.saturating_sub(sub_buckets - 1);
    let mut count = 0;
    let mut sum = 0;
    for (epoch, c, s) in slots.values() {
        if *epoch >= oldest && *epoch <= now_epoch {
            count += c;
            sum += s;
        }
    }
    (count, sum)
}

proptest! {
    /// Bucket rotation under arbitrary monotone clocks — including skips
    /// far past the window and multiple ring wraps — agrees with the
    /// brute-force oracle on windowed count and sum, and the percentile
    /// estimates stay inside the window's [min, max].
    #[test]
    fn rolling_window_rotation_matches_oracle(
        sub_buckets in 1usize..12,
        steps in prop::collection::vec((0u64..3_000_000_000u64, 1u64..1_000_000u64), 1..60),
    ) {
        let w = RollingWindow::new(std::time::Duration::from_secs(10), sub_buckets);
        let b = w.bucket_ns();
        // Cumulative deltas give a monotone clock; deltas up to 3s on a
        // 10s/N-bucket window exercise skips and wraps.
        let mut t = 0u64;
        let mut records = Vec::with_capacity(steps.len());
        for &(dt, v) in &steps {
            t += dt;
            records.push((t, v));
            w.record_at(t, v);
        }
        let s = w.stats_at(t);
        let (count, sum) = window_oracle(sub_buckets as u64, b, &records, t);
        prop_assert_eq!(s.count, count);
        prop_assert_eq!(s.sum, sum);
        prop_assert_eq!(s.window_ns, w.window_ns());

        if count == 0 {
            prop_assert_eq!(s.p50_ns, 0);
            prop_assert_eq!(s.p99_ns, 0);
        } else {
            let oldest = (t / b).saturating_sub(sub_buckets as u64 - 1) * b;
            let live: Vec<u64> = records
                .iter()
                .filter(|(rt, _)| *rt >= oldest)
                .map(|&(_, v)| v)
                .collect();
            let min = *live.iter().min().unwrap();
            let max = *live.iter().max().unwrap();
            prop_assert!(s.p50_ns >= min && s.p50_ns <= max);
            prop_assert!(s.p50_ns <= s.p99_ns && s.p99_ns <= max);
        }
    }

    /// Out-of-order and stale writers: records older than what their ring
    /// slot holds are dropped, never resurrected — the oracle models the
    /// same rule, and a query never counts more than was recorded.
    #[test]
    fn rolling_window_drops_stale_records_like_the_oracle(
        sub_buckets in 1usize..10,
        records in prop::collection::vec((0u64..40_000_000_000u64, 1u64..1_000u64), 1..60),
    ) {
        let w = RollingWindow::new(std::time::Duration::from_secs(10), sub_buckets);
        let b = w.bucket_ns();
        for &(t, v) in &records {
            w.record_at(t, v);
        }
        let query = records.iter().map(|&(t, _)| t).max().unwrap();
        let s = w.stats_at(query);
        let (count, sum) = window_oracle(sub_buckets as u64, b, &records, query);
        prop_assert_eq!(s.count, count);
        prop_assert_eq!(s.sum, sum);
        prop_assert!(s.count <= records.len() as u64);
    }

    /// Concurrent writers all land: when every record carries an in-window
    /// timestamp, the merged stats equal the sequential sum regardless of
    /// thread interleaving.
    #[test]
    fn rolling_window_concurrent_writers_agree_with_sequential(
        per_thread in prop::collection::vec(
            prop::collection::vec((0u64..10_000_000_000u64, 1u64..1_000_000u64), 1..20),
            1..4,
        ),
    ) {
        let w = std::sync::Arc::new(RollingWindow::new(std::time::Duration::from_secs(10), 10));
        // All timestamps fall inside one window span ending at `end`, so
        // nothing can age out or be recycled mid-test.
        let end = w.window_ns() - 1;
        let handles: Vec<_> = per_thread
            .iter()
            .map(|recs| {
                let w = std::sync::Arc::clone(&w);
                let recs: Vec<(u64, u64)> =
                    recs.iter().map(|&(t, v)| (t.min(end), v)).collect();
                std::thread::spawn(move || {
                    for (t, v) in recs {
                        w.record_at(t, v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        let s = w.stats_at(end);
        let expect_count: u64 = per_thread.iter().map(|r| r.len() as u64).sum();
        let expect_sum: u64 = per_thread.iter().flatten().map(|&(_, v)| v).sum();
        prop_assert_eq!(s.count, expect_count);
        prop_assert_eq!(s.sum, expect_sum);
    }
}
