//! Property tests for the histogram estimator and the JSON exporter: the
//! invariants the rest of the workspace leans on (percentile bounds, bucket
//! accounting, lossless export) must hold for arbitrary inputs.

use dronet_obs::{JsonExporter, Registry, Snapshot};
use proptest::prelude::*;

/// Names stressing the JSON escaper: quotes, backslashes, control bytes.
fn metric_name() -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..8, 1..12).prop_map(|picks| {
        const ALPHABET: [char; 8] = ['a', 'Z', '.', '_', '"', '\\', '\n', '\t'];
        picks.into_iter().map(|i| ALPHABET[i]).collect()
    })
}

proptest! {
    /// Recorded samples must be bounded by the exact min/max, percentiles
    /// must be monotone and stay inside `[min, max]`, and the bucket counts
    /// must account for every sample under strictly increasing bounds.
    #[test]
    fn histogram_invariants(ns in prop::collection::vec(1u64..5_000_000_000u64, 1..200)) {
        let registry = Registry::new();
        let hist = registry.histogram("h");
        for &v in &ns {
            hist.record_ns(v);
        }

        let min = *ns.iter().min().unwrap();
        let max = *ns.iter().max().unwrap();
        let snap = registry.snapshot();
        let h = snap.histogram("h").unwrap();

        prop_assert_eq!(h.count, ns.len() as u64);
        prop_assert_eq!(h.sum_ns, ns.iter().copied().map(u128::from).sum::<u128>() as u64);
        prop_assert_eq!(h.min_ns, min);
        prop_assert_eq!(h.max_ns, max);

        prop_assert!(h.p50_ns >= min && h.p50_ns <= max);
        prop_assert!(h.p50_ns <= h.p90_ns && h.p90_ns <= h.p99_ns);
        prop_assert!(h.p99_ns <= max);

        let bucket_total: u64 = h.buckets.iter().map(|b| b.count).sum();
        prop_assert_eq!(bucket_total, ns.len() as u64);
        for pair in h.buckets.windows(2) {
            prop_assert!(pair[0].le_ns < pair[1].le_ns, "bucket bounds must increase");
        }
    }

    /// Clamping: any `p`, including NaN and out-of-range, yields a value
    /// inside `[min, max]` of the recorded samples.
    #[test]
    fn percentile_is_always_in_range(
        ns in prop::collection::vec(1u64..10_000_000u64, 1..50),
        p in -50.0f64..150.0,
    ) {
        let registry = Registry::new();
        let hist = registry.histogram("h");
        for &v in &ns {
            hist.record_ns(v);
        }
        let min = *ns.iter().min().unwrap();
        let max = *ns.iter().max().unwrap();
        for q in [p, f64::NAN] {
            let v = hist.percentile(q).as_nanos() as u64;
            prop_assert!(v >= min && v <= max, "p={} gave {} outside [{}, {}]", q, v, min, max);
        }
    }

    /// The JSON export is lossless for arbitrary metric names (including
    /// characters that need escaping) and values.
    #[test]
    fn json_export_round_trips(
        counters in prop::collection::vec((metric_name(), 0u64..u64::MAX / 2), 0..6),
        gauges in prop::collection::vec((metric_name(), -1.0e12f64..1.0e12), 0..6),
        samples in prop::collection::vec((metric_name(), prop::collection::vec(1u64..1_000_000_000u64, 1..20)), 0..4),
    ) {
        let registry = Registry::new();
        for (name, v) in &counters {
            registry.counter(name).add(*v);
        }
        for (name, v) in &gauges {
            registry.gauge(name).set(*v);
        }
        for (name, values) in &samples {
            let hist = registry.histogram(name);
            for &v in values {
                hist.record_ns(v);
            }
        }

        let snap = registry.snapshot();
        let json = JsonExporter::to_string(&snap);
        let parsed = Snapshot::from_json(&json)
            .map_err(|e| TestCaseError::Fail(format!("parse failed: {e}\n{json}")))?;
        prop_assert_eq!(parsed, snap);
    }
}
