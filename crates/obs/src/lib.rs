//! # dronet-obs
//!
//! Zero-dependency telemetry for the DroNet reproduction. The paper's whole
//! contribution is *measured* — FPS, per-platform latency and the weighted
//! Score metric are its deliverables — so the stack needs visibility into
//! where milliseconds go inside a forward pass, a pipeline stage or a
//! training step, not just whole-frame timing.
//!
//! * [`Registry`] — a clonable handle to a set of named [`Counter`]s,
//!   [`Gauge`]s and fixed-bucket latency [`Histogram`]s. `Registry::noop()`
//!   yields inert handles whose record paths are a single branch, so
//!   instrumented code can keep its instrumentation unconditionally.
//! * [`ScopedTimer`] — RAII span guard recording its lifetime into a
//!   histogram on drop; created via [`Registry::timer`] or
//!   [`Histogram::start`].
//! * [`Snapshot`] — a point-in-time copy of every metric, exported through
//!   [`JsonExporter`] / [`CsvExporter`] / [`PromExporter`] (hand-rolled
//!   writers, no serde), re-imported with [`Snapshot::from_json`] for
//!   round-trip tests, and differenced with [`Snapshot::diff`] for
//!   per-phase attribution.
//! * [`Tracer`] — the flight recorder: nested spans and instant events in
//!   fixed-capacity per-thread ring buffers, each carrying a `frame_id`
//!   trace context; merged snapshots export to Chrome/Perfetto
//!   `trace.json` via [`ChromeTrace`] or a plain-text timeline via
//!   [`TraceSnapshot::to_text`]. `Tracer::noop()` is a single branch, so
//!   instrumentation can stay in release builds.
//!
//! # Example
//!
//! ```
//! use dronet_obs::{JsonExporter, Registry};
//! use std::time::Duration;
//!
//! let obs = Registry::new();
//! obs.counter("frames").add(3);
//! obs.gauge("queue_depth").set(1.0);
//! {
//!     let _span = obs.timer("stage.decode"); // records on drop
//! }
//! obs.histogram("stage.nms").record(Duration::from_micros(250));
//! let snapshot = obs.snapshot();
//! assert_eq!(snapshot.counters[0].value, 3);
//! let json = JsonExporter::to_string(&snapshot);
//! assert!(json.contains("stage.nms"));
//! ```

// `deny` rather than `forbid`: the allocator module is the one deliberate
// exception (implementing `GlobalAlloc` requires `unsafe`) and carries its
// own scoped `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
mod chrome;
mod diff;
mod export;
mod histogram;
mod json;
mod prom;
mod registry;
pub mod slo;
mod trace;
pub mod window;

pub use alloc::{AllocDelta, AllocScope, AllocStats, CountingAlloc};
pub use chrome::{ChromeEvent, ChromeTrace, CHROME_TRACE_PID};
pub use diff::{CounterDelta, HistogramDelta, SnapshotDiff};
pub use export::{CsvExporter, JsonExporter};
pub use histogram::{Histogram, ScopedTimer, BUCKET_COUNT};
pub use json::{JsonParseError, JsonValue};
pub use prom::PromExporter;
pub use registry::{Counter, Gauge, Registry};
pub use slo::{BurnWindow, SloObjective, SloSet, SloSpec, SloStatus};
pub use trace::{
    TraceEvent, TraceKind, TraceSnapshot, TraceSpan, Tracer, DEFAULT_TRACE_CAPACITY, NO_AUX,
};
pub use window::{RollingWindow, WindowSnapshot, WindowStats, WindowedCounter, WindowedHistogram};

use std::time::Duration;

/// Point-in-time copy of one counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Metric name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// Point-in-time copy of one gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSnapshot {
    /// Metric name.
    pub name: String,
    /// Last set value.
    pub value: f64,
}

/// One occupied histogram bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket, in nanoseconds.
    pub le_ns: u64,
    /// Samples that fell into this bucket.
    pub count: u64,
}

/// Point-in-time copy of one histogram, with pre-computed percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total recorded samples.
    pub count: u64,
    /// Sum of all recorded values, nanoseconds.
    pub sum_ns: u64,
    /// Smallest recorded value, nanoseconds (0 when empty).
    pub min_ns: u64,
    /// Largest recorded value, nanoseconds (0 when empty).
    pub max_ns: u64,
    /// Estimated 50th-percentile value, nanoseconds.
    pub p50_ns: u64,
    /// Estimated 90th-percentile value, nanoseconds.
    pub p90_ns: u64,
    /// Estimated 99th-percentile value, nanoseconds.
    pub p99_ns: u64,
    /// Occupied buckets in ascending bound order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean recorded value (zero when empty).
    pub fn mean(&self) -> Duration {
        self.sum_ns
            .checked_div(self.count)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Estimated value at quantile `q` in `[0, 1]` (clamped), nanoseconds,
    /// with within-bucket linear interpolation — the snapshot-side
    /// counterpart of [`Histogram::quantile`], usable on parsed or
    /// round-tripped snapshots where the live cell is gone.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let mut dense = [0u64; BUCKET_COUNT];
        for b in &self.buckets {
            dense[histogram::bucket_index(b.le_ns)] += b.count;
        }
        histogram::quantile_from_buckets(&dense, self.count, self.min_ns, self.max_ns, q)
    }
}

/// A point-in-time copy of every metric in a [`Registry`].
///
/// Metric vectors are sorted by name, so exports are deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All gauges.
    pub gauges: Vec<GaugeSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}
