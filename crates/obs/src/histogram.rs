//! Fixed-bucket latency histogram and the RAII span timer.

use crate::window::{mono_now_ns, RollingWindow, WindowStats};
use crate::{BucketCount, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Number of buckets: powers of two from 64 ns up to ~68.7 s, plus one
/// overflow bucket. Chosen so a single conv-layer forward (microseconds) and
/// a whole training epoch (tens of seconds) land in distinct buckets.
pub const BUCKET_COUNT: usize = 31;

/// Smallest bucket upper bound, nanoseconds.
const FIRST_BOUND_NS: u64 = 64;

/// Inclusive upper bound of bucket `i` in nanoseconds.
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        FIRST_BOUND_NS << i
    }
}

/// Bucket index for a value in nanoseconds.
pub(crate) fn bucket_index(ns: u64) -> usize {
    if ns <= FIRST_BOUND_NS {
        return 0;
    }
    // First i with 64 << i >= ns, i.e. ceil(log2(ns / 64)).
    let i = (64 - (ns - 1).leading_zeros()) as usize - FIRST_BOUND_NS.trailing_zeros() as usize;
    i.min(BUCKET_COUNT - 1)
}

/// Estimated value at percentile `p` in `[0, 100]` (clamped) from a merged
/// bucket array, in nanoseconds.
///
/// Shared by the cumulative [`HistogramCell`] and the rolling-window
/// aggregation so windowed and lifetime percentiles use identical
/// estimation: the geometric midpoint of the bucket holding the
/// rank-`ceil(p/100 * count)` sample, clamped into the observed
/// `[min, max]` support.
pub(crate) fn percentile_from_buckets(
    buckets: &[u64; BUCKET_COUNT],
    count: u64,
    min: u64,
    max: u64,
    p: f64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &bucket) in buckets.iter().enumerate() {
        cumulative += bucket;
        if cumulative >= rank {
            let hi = bucket_bound(i).min(max);
            let lo = if i == 0 { 0 } else { bucket_bound(i - 1) }.max(min);
            // Geometric midpoint of the bucket (buckets are log-spaced).
            let mid = (((lo.max(1) as f64) * (hi.max(1) as f64)).sqrt()) as u64;
            return mid.clamp(min, max);
        }
    }
    max
}

/// Estimated value at quantile `q` in `[0, 1]` (clamped) from a merged
/// bucket array, in nanoseconds — with **within-bucket linear
/// interpolation**.
///
/// [`percentile_from_buckets`] answers at bucket granularity (the
/// geometric midpoint of the rank's bucket), which is fine for p50/p99
/// dashboards but useless for tail quantiles like p99.9: every estimate
/// inside one log2 bucket collapses to the same value. Here the bucket
/// holding the rank-`ceil(q * count)` sample is located the same way,
/// then the estimate walks linearly from the bucket's lower bound to its
/// upper bound according to the rank's position among the bucket's own
/// samples. Bounds are clamped into the observed `[min, max]` support, so
/// a fully-populated bucket interpolates across exactly the range that
/// was recorded.
pub(crate) fn quantile_from_buckets(
    buckets: &[u64; BUCKET_COUNT],
    count: u64,
    min: u64,
    max: u64,
    q: f64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * count as f64).ceil().max(1.0) as u64;
    let mut before = 0u64;
    for (i, &bucket) in buckets.iter().enumerate() {
        if bucket == 0 {
            continue;
        }
        if before + bucket >= rank {
            let lo = (if i == 0 { 0 } else { bucket_bound(i - 1) }).clamp(min, max);
            let hi = bucket_bound(i).clamp(lo, max);
            // Rank position among this bucket's samples, in (0, 1].
            let frac = (rank - before) as f64 / bucket as f64;
            let est = lo as f64 + frac * (hi - lo) as f64;
            return (est as u64).clamp(min, max);
        }
        before += bucket;
    }
    max
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) name: String,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
    /// Optional rolling window; attached once via
    /// [`Registry::enable_windows`](crate::Registry::enable_windows). When
    /// absent the record-path cost is one `OnceLock` load.
    window: OnceLock<RollingWindow>,
}

impl HistogramCell {
    pub(crate) fn new(name: String) -> Self {
        HistogramCell {
            name,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            window: OnceLock::new(),
        }
    }

    fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        if let Some(w) = self.window.get() {
            w.record_at(mono_now_ns(), ns);
        }
    }

    /// Attaches a rolling window (first caller wins; later calls are
    /// no-ops, so re-enabling with different parameters cannot tear).
    pub(crate) fn attach_window(&self, window: Duration, sub_buckets: usize) {
        let _ = self.window.set(RollingWindow::new(window, sub_buckets));
    }

    /// Windowed aggregate as of now, if a window is attached.
    pub(crate) fn window_stats(&self) -> Option<WindowStats> {
        self.window.get().map(|w| w.stats_at(mono_now_ns()))
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Estimated value at percentile `p` in `[0, 100]` (clamped), in ns.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// rank-`ceil(p/100 * count)` sample, clamped into the recorded
    /// `[min, max]` range so estimates never leave the observed support.
    fn percentile_ns(&self, p: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: [u64; BUCKET_COUNT] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        percentile_from_buckets(
            &buckets,
            count,
            self.min_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
            p,
        )
    }

    /// Estimated value at quantile `q` in `[0, 1]` (clamped), in ns, with
    /// within-bucket linear interpolation — see [`quantile_from_buckets`].
    fn quantile_ns(&self, q: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: [u64; BUCKET_COUNT] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        quantile_from_buckets(
            &buckets,
            count,
            self.min_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
            q,
        )
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some(BucketCount {
                    le_ns: bucket_bound(i),
                    count,
                })
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: self.name.clone(),
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: self.percentile_ns(50.0),
            p90_ns: self.percentile_ns(90.0),
            p99_ns: self.percentile_ns(99.0),
            buckets,
        }
    }
}

/// Handle to a named latency histogram.
///
/// Cheap to clone; a handle from a [`noop`](crate::Registry::noop) registry
/// is inert — its record path is a single `None` check and no clock read.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        if let Some(cell) = &self.cell {
            cell.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Records one duration given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if let Some(cell) = &self.cell {
            cell.record_ns(ns);
        }
    }

    /// Starts a span that records its lifetime on drop.
    ///
    /// On an inert handle no clock is read.
    pub fn start(&self) -> ScopedTimer {
        ScopedTimer {
            span: self.cell.as_ref().map(|c| (Arc::clone(c), Instant::now())),
        }
    }

    /// Number of recorded samples (0 for inert handles).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> Duration {
        match &self.cell {
            Some(c) => {
                let n = c.count.load(Ordering::Relaxed);
                c.sum_ns
                    .load(Ordering::Relaxed)
                    .checked_div(n)
                    .map_or(Duration::ZERO, Duration::from_nanos)
            }
            None => Duration::ZERO,
        }
    }

    /// Estimated duration at percentile `p` in `[0, 100]` (clamped).
    pub fn percentile(&self, p: f64) -> Duration {
        self.cell
            .as_ref()
            .map_or(Duration::ZERO, |c| Duration::from_nanos(c.percentile_ns(p)))
    }

    /// Estimated duration at quantile `q` in `[0, 1]` (clamped), using
    /// within-bucket linear interpolation.
    ///
    /// Unlike [`Histogram::percentile`] — which answers at bucket
    /// granularity and therefore cannot distinguish p99 from p99.9 once
    /// both ranks land in the same log2 bucket — this walks linearly
    /// through the target bucket, so deep-tail quantiles move smoothly
    /// with the data. Returns zero for empty or inert histograms.
    pub fn quantile(&self, q: f64) -> Duration {
        self.cell
            .as_ref()
            .map_or(Duration::ZERO, |c| Duration::from_nanos(c.quantile_ns(q)))
    }

    /// Estimated durations at each quantile in `qs` (each clamped to
    /// `[0, 1]`), using within-bucket linear interpolation.
    ///
    /// The caller picks the quantile set — e.g. `&[0.5, 0.99, 0.999]` for
    /// an SLO dashboard — instead of being limited to the hard-coded
    /// p50/p90/p99 of [`HistogramSnapshot`](crate::HistogramSnapshot).
    pub fn quantiles(&self, qs: &[f64]) -> Vec<Duration> {
        qs.iter().map(|&q| self.quantile(q)).collect()
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }
}

/// RAII span guard: records the time between creation and drop into its
/// histogram. Obtained from [`Histogram::start`] or
/// [`Registry::timer`](crate::Registry::timer).
#[derive(Debug)]
pub struct ScopedTimer {
    span: Option<(Arc<HistogramCell>, Instant)>,
}

impl ScopedTimer {
    /// An inert timer that records nothing (used by noop registries).
    pub fn inactive() -> Self {
        ScopedTimer { span: None }
    }

    /// Stops the span now, recording its duration.
    pub fn stop(self) {
        drop(self);
    }

    /// Stops the span without recording anything.
    pub fn cancel(mut self) {
        self.span = None;
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((cell, t0)) = self.span.take() {
            cell.record_ns(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut prev = 0;
        for ns in [0u64, 1, 63, 64, 65, 1_000, 1_000_000, u64::MAX] {
            let idx = bucket_index(ns);
            assert!(idx >= prev, "index not monotone at {ns}");
            assert!(idx < BUCKET_COUNT);
            assert!(ns <= bucket_bound(idx), "{ns} above bound of bucket {idx}");
            if idx > 0 {
                assert!(ns > bucket_bound(idx - 1), "{ns} fits an earlier bucket");
            }
            prev = idx;
        }
    }

    #[test]
    fn record_and_percentiles() {
        let cell = HistogramCell::new("t".into());
        for ms in 1..=100u64 {
            cell.record_ns(ms * 1_000_000);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.min_ns, 1_000_000);
        assert_eq!(snap.max_ns, 100_000_000);
        assert!(snap.p50_ns >= snap.min_ns && snap.p50_ns <= snap.max_ns);
        assert!(snap.p90_ns >= snap.p50_ns);
        assert!(snap.p99_ns >= snap.p90_ns);
    }

    /// Exact quantile of a sorted sample set by the same nearest-rank
    /// convention the estimator targets: the rank-`ceil(q * n)` sample.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn interpolated_quantiles_track_an_exact_sorted_oracle() {
        // Deterministic LCG samples spanning several log2 buckets.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut samples: Vec<u64> = (0..4096)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                1_000 + (state >> 40) % 4_000_000
            })
            .collect();
        let cell = HistogramCell::new("t".into());
        for &s in &samples {
            cell.record_ns(s);
        }
        samples.sort_unstable();
        let h = Histogram {
            cell: Some(Arc::new(HistogramCell::new("h".into()))),
        };
        for &s in &samples {
            h.record_ns(s);
        }
        let mut prev = 0u64;
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&samples, q);
            let est = cell.quantile_ns(q);
            // Log2 buckets bound the within-bucket error to a factor of 2
            // of the exact order statistic.
            assert!(
                est >= exact / 2 && est <= exact.saturating_mul(2),
                "q={q}: estimate {est} not within 2x of exact {exact}"
            );
            assert!(est >= prev, "quantiles must be monotone in q");
            assert_eq!(h.quantile(q).as_nanos() as u64, est);
            prev = est;
        }
        assert_eq!(
            cell.quantile_ns(1.0),
            *samples.last().unwrap(),
            "q=1.0 must clamp to the observed max"
        );
        let multi = h.quantiles(&[0.5, 0.99, 0.999]);
        assert_eq!(multi.len(), 3);
        assert!(multi[0] <= multi[1] && multi[1] <= multi[2]);
    }

    #[test]
    fn interpolation_resolves_within_a_single_bucket() {
        // 1024 samples uniformly filling one bucket: (1024, 2048].
        let cell = HistogramCell::new("t".into());
        for ns in 1025..=2048u64 {
            cell.record_ns(ns);
        }
        // Exact nearest-rank p50 is sample #512 = 1536. Linear
        // interpolation lands within rounding of it; the old geometric
        // bucket midpoint (~1448) cannot.
        let p50 = cell.quantile_ns(0.5);
        assert!((1534..=1538).contains(&p50), "p50 estimate {p50} off");
        // p99.9: rank 1023 of 1024 → exact 2047; interpolation stays in
        // the top of the bucket instead of collapsing to the midpoint.
        let p999 = cell.quantile_ns(0.999);
        assert!((2045..=2048).contains(&p999), "p99.9 estimate {p999} off");
        // The bucket-granularity estimator cannot tell p60 from p90 here;
        // the interpolated one must separate them.
        assert!(cell.quantile_ns(0.9) > cell.quantile_ns(0.6));
        assert_eq!(cell.percentile_ns(90.0), cell.percentile_ns(60.0));
    }

    #[test]
    fn quantile_edge_cases() {
        let empty = HistogramCell::new("t".into());
        assert_eq!(empty.quantile_ns(0.5), 0);
        let h = Histogram::default();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert!(h.quantiles(&[0.5, 0.999]).iter().all(|d| d.is_zero()));
        let one = HistogramCell::new("t".into());
        one.record_ns(777);
        for q in [0.0, 0.5, 1.0, 7.0, -3.0] {
            assert_eq!(one.quantile_ns(q), 777, "single sample at q={q}");
        }
    }

    #[test]
    fn inert_handle_records_nothing() {
        let h = Histogram::default();
        h.record(Duration::from_millis(5));
        let _t = h.start();
        drop(_t);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert!(!h.is_active());
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let cell = Arc::new(HistogramCell::new("t".into()));
        let h = Histogram {
            cell: Some(Arc::clone(&cell)),
        };
        {
            let _span = h.start();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.mean() >= Duration::from_millis(1));
        h.start().cancel();
        assert_eq!(h.count(), 1, "cancelled span must not record");
    }
}
