//! Fixed-bucket latency histogram and the RAII span timer.

use crate::window::{mono_now_ns, RollingWindow, WindowStats};
use crate::{BucketCount, HistogramSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Number of buckets: powers of two from 64 ns up to ~68.7 s, plus one
/// overflow bucket. Chosen so a single conv-layer forward (microseconds) and
/// a whole training epoch (tens of seconds) land in distinct buckets.
pub const BUCKET_COUNT: usize = 31;

/// Smallest bucket upper bound, nanoseconds.
const FIRST_BOUND_NS: u64 = 64;

/// Inclusive upper bound of bucket `i` in nanoseconds.
pub(crate) fn bucket_bound(i: usize) -> u64 {
    if i + 1 >= BUCKET_COUNT {
        u64::MAX
    } else {
        FIRST_BOUND_NS << i
    }
}

/// Bucket index for a value in nanoseconds.
pub(crate) fn bucket_index(ns: u64) -> usize {
    if ns <= FIRST_BOUND_NS {
        return 0;
    }
    // First i with 64 << i >= ns, i.e. ceil(log2(ns / 64)).
    let i = (64 - (ns - 1).leading_zeros()) as usize - FIRST_BOUND_NS.trailing_zeros() as usize;
    i.min(BUCKET_COUNT - 1)
}

/// Estimated value at percentile `p` in `[0, 100]` (clamped) from a merged
/// bucket array, in nanoseconds.
///
/// Shared by the cumulative [`HistogramCell`] and the rolling-window
/// aggregation so windowed and lifetime percentiles use identical
/// estimation: the geometric midpoint of the bucket holding the
/// rank-`ceil(p/100 * count)` sample, clamped into the observed
/// `[min, max]` support.
pub(crate) fn percentile_from_buckets(
    buckets: &[u64; BUCKET_COUNT],
    count: u64,
    min: u64,
    max: u64,
    p: f64,
) -> u64 {
    if count == 0 {
        return 0;
    }
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for (i, &bucket) in buckets.iter().enumerate() {
        cumulative += bucket;
        if cumulative >= rank {
            let hi = bucket_bound(i).min(max);
            let lo = if i == 0 { 0 } else { bucket_bound(i - 1) }.max(min);
            // Geometric midpoint of the bucket (buckets are log-spaced).
            let mid = (((lo.max(1) as f64) * (hi.max(1) as f64)).sqrt()) as u64;
            return mid.clamp(min, max);
        }
    }
    max
}

#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) name: String,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKET_COUNT],
    /// Optional rolling window; attached once via
    /// [`Registry::enable_windows`](crate::Registry::enable_windows). When
    /// absent the record-path cost is one `OnceLock` load.
    window: OnceLock<RollingWindow>,
}

impl HistogramCell {
    pub(crate) fn new(name: String) -> Self {
        HistogramCell {
            name,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            window: OnceLock::new(),
        }
    }

    fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        if let Some(w) = self.window.get() {
            w.record_at(mono_now_ns(), ns);
        }
    }

    /// Attaches a rolling window (first caller wins; later calls are
    /// no-ops, so re-enabling with different parameters cannot tear).
    pub(crate) fn attach_window(&self, window: Duration, sub_buckets: usize) {
        let _ = self.window.set(RollingWindow::new(window, sub_buckets));
    }

    /// Windowed aggregate as of now, if a window is attached.
    pub(crate) fn window_stats(&self) -> Option<WindowStats> {
        self.window.get().map(|w| w.stats_at(mono_now_ns()))
    }

    pub(crate) fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Estimated value at percentile `p` in `[0, 100]` (clamped), in ns.
    ///
    /// The estimate is the geometric midpoint of the bucket holding the
    /// rank-`ceil(p/100 * count)` sample, clamped into the recorded
    /// `[min, max]` range so estimates never leave the observed support.
    fn percentile_ns(&self, p: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        let buckets: [u64; BUCKET_COUNT] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        percentile_from_buckets(
            &buckets,
            count,
            self.min_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
            p,
        )
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let count = b.load(Ordering::Relaxed);
                (count > 0).then_some(BucketCount {
                    le_ns: bucket_bound(i),
                    count,
                })
            })
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: self.name.clone(),
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
            min_ns: if count == 0 {
                0
            } else {
                self.min_ns.load(Ordering::Relaxed)
            },
            max_ns: self.max_ns.load(Ordering::Relaxed),
            p50_ns: self.percentile_ns(50.0),
            p90_ns: self.percentile_ns(90.0),
            p99_ns: self.percentile_ns(99.0),
            buckets,
        }
    }
}

/// Handle to a named latency histogram.
///
/// Cheap to clone; a handle from a [`noop`](crate::Registry::noop) registry
/// is inert — its record path is a single `None` check and no clock read.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    pub(crate) cell: Option<Arc<HistogramCell>>,
}

impl Histogram {
    /// Records one duration.
    pub fn record(&self, d: Duration) {
        if let Some(cell) = &self.cell {
            cell.record_ns(d.as_nanos().min(u64::MAX as u128) as u64);
        }
    }

    /// Records one duration given in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        if let Some(cell) = &self.cell {
            cell.record_ns(ns);
        }
    }

    /// Starts a span that records its lifetime on drop.
    ///
    /// On an inert handle no clock is read.
    pub fn start(&self) -> ScopedTimer {
        ScopedTimer {
            span: self.cell.as_ref().map(|c| (Arc::clone(c), Instant::now())),
        }
    }

    /// Number of recorded samples (0 for inert handles).
    pub fn count(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.count.load(Ordering::Relaxed))
    }

    /// Mean recorded duration (zero when empty).
    pub fn mean(&self) -> Duration {
        match &self.cell {
            Some(c) => {
                let n = c.count.load(Ordering::Relaxed);
                c.sum_ns
                    .load(Ordering::Relaxed)
                    .checked_div(n)
                    .map_or(Duration::ZERO, Duration::from_nanos)
            }
            None => Duration::ZERO,
        }
    }

    /// Estimated duration at percentile `p` in `[0, 100]` (clamped).
    pub fn percentile(&self, p: f64) -> Duration {
        self.cell
            .as_ref()
            .map_or(Duration::ZERO, |c| Duration::from_nanos(c.percentile_ns(p)))
    }

    /// Whether this handle records anywhere.
    pub fn is_active(&self) -> bool {
        self.cell.is_some()
    }
}

/// RAII span guard: records the time between creation and drop into its
/// histogram. Obtained from [`Histogram::start`] or
/// [`Registry::timer`](crate::Registry::timer).
#[derive(Debug)]
pub struct ScopedTimer {
    span: Option<(Arc<HistogramCell>, Instant)>,
}

impl ScopedTimer {
    /// An inert timer that records nothing (used by noop registries).
    pub fn inactive() -> Self {
        ScopedTimer { span: None }
    }

    /// Stops the span now, recording its duration.
    pub fn stop(self) {
        drop(self);
    }

    /// Stops the span without recording anything.
    pub fn cancel(mut self) {
        self.span = None;
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some((cell, t0)) = self.span.take() {
            cell.record_ns(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_monotone_and_bounded() {
        let mut prev = 0;
        for ns in [0u64, 1, 63, 64, 65, 1_000, 1_000_000, u64::MAX] {
            let idx = bucket_index(ns);
            assert!(idx >= prev, "index not monotone at {ns}");
            assert!(idx < BUCKET_COUNT);
            assert!(ns <= bucket_bound(idx), "{ns} above bound of bucket {idx}");
            if idx > 0 {
                assert!(ns > bucket_bound(idx - 1), "{ns} fits an earlier bucket");
            }
            prev = idx;
        }
    }

    #[test]
    fn record_and_percentiles() {
        let cell = HistogramCell::new("t".into());
        for ms in 1..=100u64 {
            cell.record_ns(ms * 1_000_000);
        }
        let snap = cell.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.min_ns, 1_000_000);
        assert_eq!(snap.max_ns, 100_000_000);
        assert!(snap.p50_ns >= snap.min_ns && snap.p50_ns <= snap.max_ns);
        assert!(snap.p90_ns >= snap.p50_ns);
        assert!(snap.p99_ns >= snap.p90_ns);
    }

    #[test]
    fn inert_handle_records_nothing() {
        let h = Histogram::default();
        h.record(Duration::from_millis(5));
        let _t = h.start();
        drop(_t);
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert!(!h.is_active());
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let cell = Arc::new(HistogramCell::new("t".into()));
        let h = Histogram {
            cell: Some(Arc::clone(&cell)),
        };
        {
            let _span = h.start();
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.mean() >= Duration::from_millis(1));
        h.start().cancel();
        assert_eq!(h.count(), 1, "cancelled span must not record");
    }
}
