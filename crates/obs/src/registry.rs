//! The metric registry and the counter/gauge handle types.

use crate::histogram::{Histogram, HistogramCell, ScopedTimer};
use crate::window::{
    mono_now_ns, RollingWindow, WindowSnapshot, WindowedCounter, WindowedHistogram,
};
use crate::{CounterSnapshot, GaugeSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Duration;

/// Backing storage for one counter: the cumulative value plus an optional
/// rolling window fed with each increment.
#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    value: AtomicU64,
    window: OnceLock<RollingWindow>,
}

impl CounterCell {
    fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if let Some(w) = self.window.get() {
            w.record_at(mono_now_ns(), n);
        }
    }

    fn attach_window(&self, window: Duration, sub_buckets: usize) {
        let _ = self.window.set(RollingWindow::new(window, sub_buckets));
    }
}

/// Handle to a named monotonic counter. Cheap to clone; inert when obtained
/// from a [`Registry::noop`] registry.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<CounterCell>>,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.add(n);
        }
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for inert handles).
    pub fn get(&self) -> u64 {
        self.cell
            .as_ref()
            .map_or(0, |c| c.value.load(Ordering::Relaxed))
    }
}

/// Handle to a named `f64` gauge (last-write-wins, with atomic add for
/// things like queue depths). Cheap to clone; inert from a noop registry.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `delta` atomically (compare-and-swap loop).
    pub fn add(&self, delta: f64) {
        if let Some(cell) = &self.cell {
            let mut cur = cell.load(Ordering::Relaxed);
            loop {
                let next = (f64::from_bits(cur) + delta).to_bits();
                match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                    Ok(_) => break,
                    Err(actual) => cur = actual,
                }
            }
        }
    }

    /// Subtracts `delta` atomically.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }

    /// Current value (0.0 for inert handles).
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: RwLock<BTreeMap<String, Arc<CounterCell>>>,
    gauges: RwLock<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<String, Arc<HistogramCell>>>,
    /// Optional `# HELP` text per metric name (see [`Registry::describe`]).
    descriptions: RwLock<BTreeMap<String, String>>,
    /// Once set, every existing and future counter/histogram gets a rolling
    /// window with these parameters.
    window_config: OnceLock<(Duration, usize)>,
}

/// A clonable handle to a set of named metrics.
///
/// All clones share the same underlying storage, so a registry can be handed
/// to the network, the detector, the trainer and the pipeline and snapshotted
/// once at the end. [`Registry::noop`] yields a registry whose handles are
/// inert: every record path reduces to one `Option` check and no clock read,
/// which keeps instrumented hot paths within noise of uninstrumented ones.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// An inert registry: every handle it yields records nothing.
    pub fn noop() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        Counter {
            cell: self.inner.as_ref().map(|inner| {
                let cell = Arc::clone(
                    inner
                        .counters
                        .write()
                        .expect("obs registry lock poisoned")
                        .entry(name.to_string())
                        .or_default(),
                );
                if let Some(&(window, sub)) = inner.window_config.get() {
                    cell.attach_window(window, sub);
                }
                cell
            }),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        Gauge {
            cell: self.inner.as_ref().map(|inner| {
                Arc::clone(
                    inner
                        .gauges
                        .write()
                        .expect("obs registry lock poisoned")
                        .entry(name.to_string())
                        .or_default(),
                )
            }),
        }
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        Histogram {
            cell: self.inner.as_ref().map(|inner| {
                let cell = Arc::clone(
                    inner
                        .histograms
                        .write()
                        .expect("obs registry lock poisoned")
                        .entry(name.to_string())
                        .or_insert_with(|| Arc::new(HistogramCell::new(name.to_string()))),
                );
                if let Some(&(window, sub)) = inner.window_config.get() {
                    cell.attach_window(window, sub);
                }
                cell
            }),
        }
    }

    /// Looks up the histogram `name` without creating it.
    pub fn get_histogram(&self, name: &str) -> Option<Histogram> {
        let inner = self.inner.as_ref()?;
        let cell = inner
            .histograms
            .read()
            .expect("obs registry lock poisoned")
            .get(name)
            .map(Arc::clone)?;
        Some(Histogram { cell: Some(cell) })
    }

    /// Starts a span recording into the histogram `name` on drop.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        if self.is_enabled() {
            self.histogram(name).start()
        } else {
            ScopedTimer::inactive()
        }
    }

    /// Point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let Some(inner) = &self.inner else {
            return Snapshot::default();
        };
        let counters = inner
            .counters
            .read()
            .expect("obs registry lock poisoned")
            .iter()
            .map(|(name, cell)| CounterSnapshot {
                name: name.clone(),
                value: cell.value.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = inner
            .gauges
            .read()
            .expect("obs registry lock poisoned")
            .iter()
            .map(|(name, cell)| GaugeSnapshot {
                name: name.clone(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect();
        let histograms = inner
            .histograms
            .read()
            .expect("obs registry lock poisoned")
            .values()
            .map(|cell| cell.snapshot())
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Attaches a rolling time window of length `window` (split into
    /// `sub_buckets` ring buckets) to every existing and future counter and
    /// histogram in this registry.
    ///
    /// Windowed aggregates are read back via [`Registry::window_snapshot`]
    /// and exported next to the cumulative values by
    /// [`PromExporter`](crate::PromExporter). The first call wins; later
    /// calls (and calls on a noop registry) are no-ops. Metrics record into
    /// their window on the same code path as the cumulative cells, so the
    /// cost when windows are disabled is a single `OnceLock` load.
    pub fn enable_windows(&self, window: Duration, sub_buckets: usize) {
        let Some(inner) = &self.inner else { return };
        if inner.window_config.set((window, sub_buckets)).is_err() {
            return;
        }
        for cell in inner
            .counters
            .read()
            .expect("obs registry lock poisoned")
            .values()
        {
            cell.attach_window(window, sub_buckets);
        }
        for cell in inner
            .histograms
            .read()
            .expect("obs registry lock poisoned")
            .values()
        {
            cell.attach_window(window, sub_buckets);
        }
    }

    /// Whether [`Registry::enable_windows`] has been called.
    pub fn windows_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|inner| inner.window_config.get().is_some())
    }

    /// Point-in-time windowed aggregates for every windowed metric, sorted
    /// by name. Empty when windows were never enabled.
    pub fn window_snapshot(&self) -> WindowSnapshot {
        let Some(inner) = &self.inner else {
            return WindowSnapshot::default();
        };
        let now = mono_now_ns();
        let counters = inner
            .counters
            .read()
            .expect("obs registry lock poisoned")
            .iter()
            .filter_map(|(name, cell)| {
                let w = cell.window.get()?;
                let stats = w.stats_at(now);
                Some(WindowedCounter {
                    name: name.clone(),
                    increment: stats.sum,
                    increment_rate_per_sec: stats.sum as f64 / (stats.window_ns as f64 / 1e9),
                    window_ns: stats.window_ns,
                })
            })
            .collect();
        let histograms = inner
            .histograms
            .read()
            .expect("obs registry lock poisoned")
            .iter()
            .filter_map(|(name, cell)| {
                let stats = cell.window_stats()?;
                Some(WindowedHistogram {
                    name: name.clone(),
                    stats,
                })
            })
            .collect();
        WindowSnapshot {
            counters,
            histograms,
        }
    }

    /// Registers `# HELP` text for the metric `name`, rendered by
    /// [`PromExporter`](crate::PromExporter) ahead of the `# TYPE` line.
    /// Last write wins; noop registries ignore it.
    pub fn describe(&self, name: &str, help: &str) {
        if let Some(inner) = &self.inner {
            inner
                .descriptions
                .write()
                .expect("obs registry lock poisoned")
                .insert(name.to_string(), help.to_string());
        }
    }

    /// All registered metric descriptions, keyed by metric name.
    pub fn descriptions(&self) -> BTreeMap<String, String> {
        self.inner.as_ref().map_or_else(BTreeMap::new, |inner| {
            inner
                .descriptions
                .read()
                .expect("obs registry lock poisoned")
                .clone()
        })
    }

    /// Zeroes every metric, keeping registrations (handles stay valid).
    pub fn reset(&self) {
        let Some(inner) = &self.inner else { return };
        for cell in inner
            .counters
            .read()
            .expect("obs registry lock poisoned")
            .values()
        {
            cell.value.store(0, Ordering::Relaxed);
        }
        for cell in inner
            .gauges
            .read()
            .expect("obs registry lock poisoned")
            .values()
        {
            cell.store(0, Ordering::Relaxed);
        }
        for cell in inner
            .histograms
            .read()
            .expect("obs registry lock poisoned")
            .values()
        {
            cell.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Registry::new();
        let c = r.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(r.counter("c").get(), 5, "same name shares storage");
        let g = r.gauge("g");
        g.set(2.5);
        g.add(1.0);
        g.sub(0.5);
        assert!((g.get() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn noop_registry_is_inert() {
        let r = Registry::noop();
        assert!(!r.is_enabled());
        let c = r.counter("c");
        c.add(10);
        assert_eq!(c.get(), 0);
        r.histogram("h").record(Duration::from_millis(1));
        let _span = r.timer("h");
        drop(_span);
        assert_eq!(r.snapshot(), Snapshot::default());
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("b").inc();
        r.counter("a").inc();
        r.gauge("z").set(1.0);
        r.histogram("h").record(Duration::from_micros(10));
        let snap = r.snapshot();
        assert_eq!(
            snap.counters
                .iter()
                .map(|c| c.name.as_str())
                .collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].count, 1);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles() {
        let r = Registry::new();
        let c = r.counter("c");
        let h = r.histogram("h");
        c.add(3);
        h.record(Duration::from_millis(2));
        r.reset();
        assert_eq!(c.get(), 0);
        assert_eq!(h.count(), 0);
        c.inc();
        assert_eq!(r.counter("c").get(), 1);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let r = Registry::new();
        let h = r.histogram("h");
        let c = r.counter("c");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record_ns(i * 100 + 1);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }
}
