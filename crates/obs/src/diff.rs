//! Snapshot differencing: what happened *between* two points in time.
//!
//! Counters and histograms accumulate forever, so attributing work to one
//! phase of a run (one bench iteration, one pipeline pass) means
//! subtracting the snapshot taken before it from the one taken after.
//! [`Snapshot::diff`] does that subtraction, tolerating metric sets that
//! do not fully overlap: a metric only in the newer snapshot contributes
//! its full value, and one only in the older snapshot shows up as a
//! negative delta (evidence of a reset, worth seeing rather than hiding).

use crate::Snapshot;
use std::collections::BTreeMap;
use std::time::Duration;

/// Change in one counter between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Metric name.
    pub name: String,
    /// Newer value minus older value (negative after a reset).
    pub delta: i64,
}

/// Change in one histogram between two snapshots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramDelta {
    /// Metric name.
    pub name: String,
    /// Samples recorded between the snapshots.
    pub count_delta: i64,
    /// Nanoseconds accumulated between the snapshots.
    pub sum_ns_delta: i64,
}

impl HistogramDelta {
    /// Mean duration of the samples recorded between the snapshots
    /// (zero when no samples, or after a reset).
    pub fn mean(&self) -> Duration {
        if self.count_delta <= 0 || self.sum_ns_delta <= 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos((self.sum_ns_delta / self.count_delta) as u64)
    }
}

/// The change between two [`Snapshot`]s, from [`Snapshot::diff`].
///
/// Deltas are sorted by name. Metrics identical in both snapshots are
/// included (with zero deltas) so callers can distinguish "unchanged"
/// from "absent".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Per-counter changes.
    pub counters: Vec<CounterDelta>,
    /// Per-histogram changes.
    pub histograms: Vec<HistogramDelta>,
}

impl SnapshotDiff {
    /// Looks up a counter delta by name.
    pub fn counter(&self, name: &str) -> Option<i64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.delta)
    }

    /// Looks up a histogram delta by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramDelta> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

fn clamped_i64(v: u64) -> i64 {
    i64::try_from(v).unwrap_or(i64::MAX)
}

impl Snapshot {
    /// Computes the change from `older` to `self` (`self` is the newer
    /// snapshot). Metric names present in either snapshot appear in the
    /// result; a missing side counts as zero.
    pub fn diff(&self, older: &Snapshot) -> SnapshotDiff {
        let mut counters: BTreeMap<&str, i64> = BTreeMap::new();
        for c in &self.counters {
            counters.insert(&c.name, clamped_i64(c.value));
        }
        for c in &older.counters {
            *counters.entry(&c.name).or_insert(0) -= clamped_i64(c.value);
        }

        let mut histograms: BTreeMap<&str, (i64, i64)> = BTreeMap::new();
        for h in &self.histograms {
            let entry = histograms.entry(h.name.as_str()).or_insert((0, 0));
            entry.0 += clamped_i64(h.count);
            entry.1 += clamped_i64(h.sum_ns);
        }
        for h in &older.histograms {
            let entry = histograms.entry(h.name.as_str()).or_insert((0, 0));
            entry.0 -= clamped_i64(h.count);
            entry.1 -= clamped_i64(h.sum_ns);
        }

        SnapshotDiff {
            counters: counters
                .into_iter()
                .map(|(name, delta)| CounterDelta {
                    name: name.to_string(),
                    delta,
                })
                .collect(),
            histograms: histograms
                .into_iter()
                .map(|(name, (count_delta, sum_ns_delta))| HistogramDelta {
                    name: name.to_string(),
                    count_delta,
                    sum_ns_delta,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::time::Duration;

    #[test]
    fn diff_isolates_work_between_snapshots() {
        let r = Registry::new();
        r.counter("frames").add(10);
        r.histogram("stage").record(Duration::from_micros(100));
        let before = r.snapshot();
        r.counter("frames").add(5);
        r.histogram("stage").record(Duration::from_micros(300));
        r.histogram("stage").record(Duration::from_micros(500));
        let after = r.snapshot();

        let d = after.diff(&before);
        assert_eq!(d.counter("frames"), Some(5));
        let stage = d.histogram("stage").unwrap();
        assert_eq!(stage.count_delta, 2);
        assert_eq!(stage.sum_ns_delta, 800_000);
        assert_eq!(stage.mean(), Duration::from_micros(400));
    }

    #[test]
    fn disjoint_metric_names_appear_on_both_sides() {
        let old_reg = Registry::new();
        old_reg.counter("only_old").add(7);
        old_reg.histogram("h_old").record(Duration::from_nanos(100));
        let older = old_reg.snapshot();

        let new_reg = Registry::new();
        new_reg.counter("only_new").add(3);
        new_reg.histogram("h_new").record(Duration::from_nanos(200));
        let newer = new_reg.snapshot();

        let d = newer.diff(&older);
        assert_eq!(d.counter("only_new"), Some(3), "new-only = full value");
        assert_eq!(
            d.counter("only_old"),
            Some(-7),
            "old-only = negative (reset)"
        );
        assert_eq!(d.histogram("h_new").unwrap().count_delta, 1);
        assert_eq!(d.histogram("h_old").unwrap().count_delta, -1);
        assert_eq!(d.histogram("h_old").unwrap().mean(), Duration::ZERO);
        let names: Vec<&str> = d.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["only_new", "only_old"], "sorted by name");
    }

    #[test]
    fn identical_snapshots_diff_to_zero_deltas() {
        let r = Registry::new();
        r.counter("c").inc();
        r.histogram("h").record(Duration::from_micros(5));
        let snap = r.snapshot();
        let d = snap.diff(&snap);
        assert_eq!(d.counter("c"), Some(0));
        assert_eq!(d.histogram("h").unwrap().count_delta, 0);
        assert_eq!(d.histogram("h").unwrap().sum_ns_delta, 0);
    }

    #[test]
    fn empty_diff_is_default() {
        assert_eq!(
            Snapshot::default().diff(&Snapshot::default()),
            SnapshotDiff::default()
        );
    }
}
