//! Chrome Trace Event Format export for [`TraceSnapshot`]s, plus a reader
//! for round-trip tests — hand-rolled like the other exporters, no serde.
//!
//! The output is a plain JSON array of event objects (the "JSON Array
//! Format" accepted by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)):
//!
//! * closed spans become complete `"ph":"X"` events (`ts` = span start,
//!   `dur` = span length),
//! * spans still open at capture time (crash evidence) become `"ph":"B"`
//!   events without a matching `"E"` — the viewers render these as
//!   unterminated slices, which is exactly what they are,
//! * instants become `"ph":"i"` events with thread scope,
//! * threads labelled via [`Tracer::name_thread`](crate::Tracer::name_thread)
//!   become `"ph":"M"` `process_name` / `thread_name` metadata events, so
//!   Perfetto shows `serve-worker-0` instead of a bare tid.
//!
//! Timestamps are microseconds (the format's unit) written with three
//! decimal places, so the recorder's nanosecond clock survives export →
//! parse losslessly.

use crate::json::{JsonParseError, JsonValue};
use crate::trace::{TraceKind, TraceSnapshot, NO_AUX};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::io;

/// The process id stamped on every exported event (single-process traces).
pub const CHROME_TRACE_PID: u64 = 1;

/// The `process_name` stamped on exported traces via an `M` metadata event.
pub const CHROME_TRACE_PROCESS_NAME: &str = "dronet";

/// Writer/reader for Chrome/Perfetto `trace.json` files.
pub struct ChromeTrace;

/// Splits nanoseconds into whole and fractional microseconds so the
/// written decimal is exact (`1_234_567 ns` → `"1234.567"`).
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Parses a microsecond decimal with up to three fraction digits back to
/// exact nanoseconds (the inverse of [`write_us`]).
fn parse_us_text(text: &str) -> Option<u64> {
    let (whole, frac) = match text.split_once('.') {
        Some((w, f)) => (w, f),
        None => (text, ""),
    };
    if frac.len() > 3 {
        return None;
    }
    let whole: u64 = whole.parse().ok()?;
    let mut frac_ns = 0u64;
    for (i, ch) in frac.chars().enumerate() {
        let digit = ch.to_digit(10)? as u64;
        frac_ns += digit * 10u64.pow(2 - i as u32);
    }
    whole
        .checked_mul(1_000)
        .and_then(|us| us.checked_add(frac_ns))
}

impl ChromeTrace {
    /// Renders the snapshot as a Chrome Trace Event Format JSON array.
    pub fn to_string(snapshot: &TraceSnapshot) -> String {
        // Begins whose End survived in the ring are subsumed by the X
        // event the End produces; the rest are open spans worth showing.
        let closed: HashSet<u64> = snapshot
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::End)
            .map(|e| e.begin_seq)
            .collect();
        let mut out = String::with_capacity(snapshot.events.len() * 96 + 16);
        out.push_str("[\n");
        let mut first = true;
        // Metadata first: one process_name plus a thread_name per labelled
        // shard, so viewers resolve names before any slice references a tid.
        if !snapshot.thread_names.is_empty() {
            let _ = write!(
                out,
                "  {{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {CHROME_TRACE_PID}, \
                 \"tid\": 0, \"ts\": 0.000, \"args\": {{\"name\": \
                 \"{CHROME_TRACE_PROCESS_NAME}\"}}}}"
            );
            first = false;
            for (tid, name) in &snapshot.thread_names {
                out.push_str(",\n  {\"name\": \"thread_name\", \"ph\": \"M\", ");
                let _ = write!(
                    out,
                    "\"pid\": {CHROME_TRACE_PID}, \"tid\": {tid}, \"ts\": 0.000, \
                     \"args\": {{\"name\": \""
                );
                crate::export::escape_json(name, &mut out);
                out.push_str("\"}}");
            }
        }
        for e in &snapshot.events {
            let (ph, ts_ns) = match e.kind {
                TraceKind::End => ("X", e.start_ns()),
                TraceKind::Begin if !closed.contains(&e.seq) => ("B", e.ts_ns),
                TraceKind::Begin => continue,
                TraceKind::Instant => ("i", e.ts_ns),
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("  {\"name\": \"");
            crate::export::escape_json(e.name, &mut out);
            let _ = write!(
                out,
                "\", \"ph\": \"{ph}\", \"pid\": {CHROME_TRACE_PID}, \"tid\": {}, \"ts\": ",
                e.tid
            );
            write_us(&mut out, ts_ns);
            if e.kind == TraceKind::End {
                out.push_str(", \"dur\": ");
                write_us(&mut out, e.dur_ns);
            }
            if e.kind == TraceKind::Instant {
                out.push_str(", \"s\": \"t\"");
            }
            let _ = write!(
                out,
                ", \"args\": {{\"frame_id\": {}, \"seq\": {}",
                e.frame_id, e.seq
            );
            if e.aux != NO_AUX {
                let _ = write!(out, ", \"layer\": {}", e.aux);
            }
            out.push_str("}}");
        }
        out.push_str("\n]\n");
        out
    }

    /// Writes the snapshot as `trace.json` to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_to(snapshot: &TraceSnapshot, writer: &mut dyn io::Write) -> io::Result<()> {
        writer.write_all(Self::to_string(snapshot).as_bytes())
    }

    /// Parses a Chrome Trace Event Format document written by
    /// [`ChromeTrace::to_string`] (or a compatible array-format trace).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] on malformed JSON or a missing field.
    pub fn parse(input: &str) -> Result<Vec<ChromeEvent>, JsonParseError> {
        let bad = |msg: &str| JsonParseError {
            msg: msg.to_string(),
            offset: 0,
        };
        let root = JsonValue::parse(input)?;
        let items = root
            .as_array()
            .ok_or_else(|| bad("trace root must be an array"))?;
        let mut events = Vec::with_capacity(items.len());
        for item in items {
            let name = item
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("event missing 'name'"))?
                .to_string();
            let ph_text = item
                .get("ph")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("event missing 'ph'"))?;
            let ph = match ph_text {
                "X" | "B" | "E" | "i" | "M" => ph_text.chars().next().expect("non-empty"),
                _ => return Err(bad(&format!("unsupported phase '{ph_text}'"))),
            };
            // Metadata events carry no meaningful timestamp; tolerate its
            // absence there (other writers omit it entirely).
            let ts_ns = match item.get("ts") {
                Some(JsonValue::Number(text)) => {
                    parse_us_text(text).ok_or_else(|| bad("unparseable 'ts'"))?
                }
                _ if ph == 'M' => 0,
                _ => return Err(bad("event missing 'ts'")),
            };
            let dur_ns = match item.get("dur") {
                Some(JsonValue::Number(text)) => {
                    parse_us_text(text).ok_or_else(|| bad("unparseable 'dur'"))?
                }
                _ => 0,
            };
            events.push(ChromeEvent {
                name,
                ph,
                pid: item.get("pid").and_then(JsonValue::as_u64).unwrap_or(0),
                tid: item.get("tid").and_then(JsonValue::as_u64).unwrap_or(0),
                ts_ns,
                dur_ns,
                frame_id: item
                    .get("args")
                    .and_then(|a| a.get("frame_id"))
                    .and_then(JsonValue::as_u64),
                seq: item
                    .get("args")
                    .and_then(|a| a.get("seq"))
                    .and_then(JsonValue::as_u64),
                layer: item
                    .get("args")
                    .and_then(|a| a.get("layer"))
                    .and_then(JsonValue::as_i64),
                arg_name: item
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(JsonValue::as_str)
                    .map(str::to_string),
            });
        }
        Ok(events)
    }
}

/// One event parsed back from a `trace.json` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChromeEvent {
    /// Event name.
    pub name: String,
    /// Phase: `X` complete span, `B`/`E` open/close, `i` instant, `M`
    /// metadata (`process_name` / `thread_name`).
    pub ph: char,
    /// Process id.
    pub pid: u64,
    /// Thread id.
    pub tid: u64,
    /// Start time, nanoseconds.
    pub ts_ns: u64,
    /// Duration, nanoseconds (`X` events; 0 otherwise).
    pub dur_ns: u64,
    /// `args.frame_id` when present.
    pub frame_id: Option<u64>,
    /// `args.seq` when present.
    pub seq: Option<u64>,
    /// `args.layer` when present.
    pub layer: Option<i64>,
    /// `args.name` when present (`M` metadata events: the process/thread
    /// label being assigned).
    pub arg_name: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    #[test]
    fn microsecond_encoding_is_lossless() {
        for ns in [0u64, 1, 999, 1_000, 1_234_567, u64::MAX / 2_000 * 1_000] {
            let mut text = String::new();
            write_us(&mut text, ns);
            assert_eq!(parse_us_text(&text), Some(ns), "ns={ns} text={text}");
        }
        assert_eq!(parse_us_text("12"), Some(12_000));
        assert_eq!(parse_us_text("12.3456"), None, "too many fraction digits");
        assert_eq!(parse_us_text("x"), None);
    }

    #[test]
    fn closed_spans_export_as_x_events() {
        let t = Tracer::new();
        {
            let _frame = t.frame_span("frame", 5);
            let _layer = t.span_aux("conv", 0);
            t.instant("decode.start");
        }
        let snap = t.snapshot();
        let json = ChromeTrace::to_string(&snap);
        let events = ChromeTrace::parse(&json).expect("parses own output");
        assert_eq!(events.len(), 3, "2 X spans + 1 instant");
        let phases: Vec<char> = events.iter().map(|e| e.ph).collect();
        assert_eq!(phases.iter().filter(|&&p| p == 'X').count(), 2);
        assert_eq!(phases.iter().filter(|&&p| p == 'i').count(), 1);
        assert!(events.iter().all(|e| e.frame_id == Some(5)));
        assert!(events.iter().all(|e| e.pid == CHROME_TRACE_PID));
        let conv = events.iter().find(|e| e.name == "conv").unwrap();
        assert_eq!(conv.layer, Some(0));
        let frame = events.iter().find(|e| e.name == "frame").unwrap();
        assert!(
            frame.ts_ns <= conv.ts_ns && frame.ts_ns + frame.dur_ns >= conv.ts_ns + conv.dur_ns,
            "layer span nests inside frame span"
        );
    }

    #[test]
    fn open_span_exports_as_b_event() {
        let t = Tracer::new();
        t.frame_span("frame", 3).cancel();
        let events = ChromeTrace::parse(&ChromeTrace::to_string(&t.snapshot())).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].ph, 'B');
        assert_eq!(events[0].frame_id, Some(3));
    }

    #[test]
    fn round_trip_preserves_timing_exactly() {
        let t = Tracer::new();
        for i in 0..20u64 {
            let _span = t.frame_span("frame", i);
            t.instant("tick");
        }
        let snap = t.snapshot();
        let events = ChromeTrace::parse(&ChromeTrace::to_string(&snap)).unwrap();
        // Every exported event maps back to its source by seq with exact times.
        for parsed in &events {
            let seq = parsed.seq.expect("args.seq present");
            let src = snap.events.iter().find(|e| e.seq == seq).unwrap();
            assert_eq!(parsed.ts_ns, src.start_ns());
            assert_eq!(parsed.dur_ns, src.dur_ns);
            assert_eq!(parsed.frame_id, Some(src.frame_id));
            assert_eq!(parsed.name, src.name);
            assert_eq!(parsed.tid, src.tid);
        }
        assert_eq!(
            events.len(),
            snap.events.len() - 20,
            "each closed span collapses B+E into one X"
        );
    }

    #[test]
    fn named_threads_export_metadata_events() {
        let t = Tracer::new();
        t.name_thread("serve-worker-0");
        t.instant("tick");
        let json = ChromeTrace::to_string(&t.snapshot());
        let events = ChromeTrace::parse(&json).expect("parses own output");
        let process = events
            .iter()
            .find(|e| e.ph == 'M' && e.name == "process_name")
            .expect("process_name metadata present");
        assert_eq!(process.arg_name.as_deref(), Some(CHROME_TRACE_PROCESS_NAME));
        let thread = events
            .iter()
            .find(|e| e.ph == 'M' && e.name == "thread_name")
            .expect("thread_name metadata present");
        assert_eq!(thread.arg_name.as_deref(), Some("serve-worker-0"));
        let tick = events.iter().find(|e| e.name == "tick").unwrap();
        assert_eq!(thread.tid, tick.tid, "label attaches to the slice's tid");
        assert_eq!(
            events.iter().filter(|e| e.ph == 'M').count(),
            2,
            "one process_name + one thread_name"
        );
    }

    #[test]
    fn metadata_events_tolerate_missing_ts() {
        let doc = "[{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": 7, \
                   \"args\": {\"name\": \"worker\"}}]";
        let events = ChromeTrace::parse(doc).expect("M without ts parses");
        assert_eq!(events[0].ts_ns, 0);
        assert_eq!(events[0].arg_name.as_deref(), Some("worker"));
    }

    #[test]
    fn empty_snapshot_is_an_empty_array() {
        let json = ChromeTrace::to_string(&TraceSnapshot::default());
        assert_eq!(ChromeTrace::parse(&json).unwrap(), Vec::new());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(ChromeTrace::parse("{}").is_err(), "root must be array");
        assert!(ChromeTrace::parse("[{\"ph\": \"X\"}]").is_err(), "no name");
        assert!(
            ChromeTrace::parse("[{\"name\": \"a\", \"ph\": \"Q\", \"ts\": 1.0}]").is_err(),
            "unknown phase"
        );
    }
}
