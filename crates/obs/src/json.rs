//! Minimal JSON reader for the exporter's own output, enabling snapshot
//! round-trips (persist a profile, reload it, compare runs) without serde.
//!
//! This is not a general JSON library: it parses the value grammar the
//! in-tree writers emit (objects, arrays, strings with the escapes we
//! write, and numbers — no `true`/`false`/`null`) into a [`JsonValue`]
//! tree. [`Snapshot::from_json`] maps that tree back onto [`Snapshot`];
//! the Chrome-trace reader and the bench-report schema checks reuse the
//! same tree directly.

use crate::{BucketCount, CounterSnapshot, GaugeSnapshot, HistogramSnapshot, Snapshot};
use std::collections::BTreeMap;
use std::fmt;

/// Error from [`Snapshot::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonParseError {}

/// A parsed JSON value from the in-tree reader.
///
/// Covers the grammar our hand-rolled writers emit: objects, arrays,
/// strings and numbers (no booleans or nulls — in-tree schemas encode
/// flags as 0/1 numbers instead).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// Raw number text; kept unparsed so `u64` fields (counter values,
    /// nanosecond sums) round-trip losslessly instead of through `f64`.
    Number(String),
    /// A string literal, unescaped.
    String(String),
    /// An array of values.
    Array(Vec<JsonValue>),
    /// An object, keys sorted.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parses a complete JSON document (rejecting trailing data).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] on malformed input or on grammar this
    /// reader does not support (`true`/`false`/`null`).
    pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let root = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return parser.err("trailing data after document");
        }
        Ok(root)
    }

    /// The object map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` (exact integer parse first, then a lossy
    /// float fallback), if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(text) => text
                .parse::<u64>()
                .ok()
                .or_else(|| text.parse::<f64>().ok().map(|v| v as u64)),
            _ => None,
        }
    }

    /// The number as `i64`, if this is a number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Number(text) => text
                .parse::<i64>()
                .ok()
                .or_else(|| text.parse::<f64>().ok().map(|v| v as i64)),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(text) => text.parse::<f64>().ok(),
            _ => None,
        }
    }

    /// Member lookup, if this is an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object().and_then(|map| map.get(key))
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, JsonParseError> {
        Err(JsonParseError {
            msg: msg.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a value"),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex =
                                self.bytes.get(self.pos + 1..self.pos + 5).ok_or_else(|| {
                                    JsonParseError {
                                        msg: "truncated \\u escape".into(),
                                        offset: self.pos,
                                    }
                                })?;
                            let hex = std::str::from_utf8(hex).map_err(|_| JsonParseError {
                                msg: "non-ASCII \\u escape".into(),
                                offset: self.pos,
                            })?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| JsonParseError {
                                    msg: "bad \\u escape".into(),
                                    offset: self.pos,
                                })?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("unknown escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8: &str).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..end]).map_err(|_| {
                        JsonParseError {
                            msg: "invalid UTF-8".into(),
                            offset: start,
                        }
                    })?);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        match text.parse::<f64>() {
            Ok(_) => Ok(JsonValue::Number(text.to_string())),
            Err(_) => self.err(format!("bad number '{text}'")),
        }
    }
}

fn get_u64(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<u64, JsonParseError> {
    match obj.get(key) {
        // Exact integer parse first: values above 2^53 are not
        // representable in f64 and would silently lose low bits.
        Some(JsonValue::Number(text)) => text
            .parse::<u64>()
            .or_else(|_| text.parse::<f64>().map(|v| v as u64))
            .map_err(|_| JsonParseError {
                msg: format!("bad numeric field '{key}'"),
                offset: 0,
            }),
        _ => Err(JsonParseError {
            msg: format!("missing numeric field '{key}'"),
            offset: 0,
        }),
    }
}

fn get_f64(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<f64, JsonParseError> {
    match obj.get(key) {
        Some(JsonValue::Number(text)) => text.parse::<f64>().map_err(|_| JsonParseError {
            msg: format!("bad numeric field '{key}'"),
            offset: 0,
        }),
        _ => Err(JsonParseError {
            msg: format!("missing numeric field '{key}'"),
            offset: 0,
        }),
    }
}

fn get_str(obj: &BTreeMap<String, JsonValue>, key: &str) -> Result<String, JsonParseError> {
    match obj.get(key) {
        Some(JsonValue::String(s)) => Ok(s.clone()),
        _ => Err(JsonParseError {
            msg: format!("missing string field '{key}'"),
            offset: 0,
        }),
    }
}

fn get_array<'v>(
    obj: &'v BTreeMap<String, JsonValue>,
    key: &str,
) -> Result<&'v [JsonValue], JsonParseError> {
    match obj.get(key) {
        Some(JsonValue::Array(items)) => Ok(items),
        _ => Err(JsonParseError {
            msg: format!("missing array field '{key}'"),
            offset: 0,
        }),
    }
}

fn as_object(v: &JsonValue) -> Result<&BTreeMap<String, JsonValue>, JsonParseError> {
    match v {
        JsonValue::Object(map) => Ok(map),
        _ => Err(JsonParseError {
            msg: "expected an object".into(),
            offset: 0,
        }),
    }
}

impl Snapshot {
    /// Parses a snapshot previously written by
    /// [`JsonExporter`](crate::JsonExporter).
    ///
    /// # Errors
    ///
    /// Returns [`JsonParseError`] on malformed input or a missing field.
    pub fn from_json(input: &str) -> Result<Snapshot, JsonParseError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        let root = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return parser.err("trailing data after document");
        }
        let root = as_object(&root)?;

        let mut snapshot = Snapshot::default();
        for item in get_array(root, "counters")? {
            let obj = as_object(item)?;
            snapshot.counters.push(CounterSnapshot {
                name: get_str(obj, "name")?,
                value: get_u64(obj, "value")?,
            });
        }
        for item in get_array(root, "gauges")? {
            let obj = as_object(item)?;
            snapshot.gauges.push(GaugeSnapshot {
                name: get_str(obj, "name")?,
                value: get_f64(obj, "value")?,
            });
        }
        for item in get_array(root, "histograms")? {
            let obj = as_object(item)?;
            let mut buckets = Vec::new();
            for b in get_array(obj, "buckets")? {
                let b = as_object(b)?;
                buckets.push(BucketCount {
                    le_ns: get_u64(b, "le_ns")?,
                    count: get_u64(b, "count")?,
                });
            }
            snapshot.histograms.push(HistogramSnapshot {
                name: get_str(obj, "name")?,
                count: get_u64(obj, "count")?,
                sum_ns: get_u64(obj, "sum_ns")?,
                min_ns: get_u64(obj, "min_ns")?,
                max_ns: get_u64(obj, "max_ns")?,
                p50_ns: get_u64(obj, "p50_ns")?,
                p90_ns: get_u64(obj, "p90_ns")?,
                p99_ns: get_u64(obj, "p99_ns")?,
                buckets,
            });
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonExporter, Registry};
    use std::time::Duration;

    #[test]
    fn round_trip_preserves_snapshot() {
        let r = Registry::new();
        r.counter("frames").add(7);
        r.counter("with \"quotes\" and, commas").inc();
        r.gauge("depth").set(-2.25);
        let h = r.histogram("stage");
        h.record(Duration::from_nanos(50));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_millis(40));
        let snap = r.snapshot();
        let json = JsonExporter::to_string(&snap);
        let back = Snapshot::from_json(&json).expect("parses own output");
        assert_eq!(back, snap);
    }

    #[test]
    fn empty_round_trip() {
        let snap = Snapshot::default();
        let back = Snapshot::from_json(&JsonExporter::to_string(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Snapshot::from_json("not json").is_err());
        assert!(Snapshot::from_json("{\"counters\": [").is_err());
        assert!(
            Snapshot::from_json("{}").is_err(),
            "missing required arrays"
        );
        assert!(
            Snapshot::from_json("{\"counters\":[],\"gauges\":[],\"histograms\":[]} x").is_err()
        );
    }

    #[test]
    fn escaped_names_survive() {
        let r = Registry::new();
        r.counter("tab\there\nnewline").inc();
        let snap = r.snapshot();
        let back = Snapshot::from_json(&JsonExporter::to_string(&snap)).unwrap();
        assert_eq!(back.counters[0].name, "tab\there\nnewline");
    }
}
