//! Service-level objectives with multi-window burn-rate evaluation.
//!
//! A metric says what *is*; an SLO says what is *acceptable*. This module
//! turns declared objectives — "99% of successful requests complete under
//! 250 ms", "99.9% of requests are served" — into live verdicts computed
//! over the same [`RollingWindow`] machinery the rest of the registry
//! uses, so SLO state needs no new aggregation substrate, no allocation
//! after construction, and no background thread.
//!
//! Evaluation follows the multi-window burn-rate pattern: each objective
//! tracks a short and a long window of good/bad events, and the *burn
//! rate* of a window is its observed bad-event ratio divided by the error
//! budget (`1 − target`). Burn 1.0 means the budget is being consumed
//! exactly as fast as it refills; burn 10 means ten times too fast. An
//! objective is **breached** only when *both* windows burn above the alert
//! threshold — the long window supplies evidence the problem is real, the
//! short window confirms it is still happening, and requiring both
//! suppresses flapping on short blips and on long-ago incidents alike.
//!
//! Timestamps are caller-supplied (like `RollingWindow` itself) so the
//! whole layer is deterministic under test; the convenience methods
//! without `_at` use the shared monotonic clock.
//!
//! ```
//! use dronet_obs::{Registry, SloSet, SloSpec};
//! use std::time::Duration;
//!
//! let slos = SloSet::new(vec![
//!     SloSpec::latency("detect_latency", Duration::from_millis(250), 0.99),
//!     SloSpec::availability("detect_availability", 0.999),
//! ]);
//! slos.record(Duration::from_millis(3), true); // fast success: no burn
//! let status = slos.statuses();
//! assert!(!status[0].breached && !status[1].breached);
//! let obs = Registry::new();
//! slos.publish(&obs); // burn-rate gauges appear in /metrics
//! assert!(obs.snapshot().gauge("slo.detect_latency.burn_rate_short").is_some());
//! ```

use crate::export::{escape_json, format_f64};
use crate::window::{mono_now_ns, RollingWindow};
use crate::Registry;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// What a single [`SloSpec`] promises.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// At least `target` of *successful* requests complete within
    /// `threshold`. Failed requests are excluded — they are charged to the
    /// availability objective instead, so one slow outage does not burn
    /// two budgets for the same root cause.
    LatencyUnder {
        /// Latency budget per request.
        threshold: Duration,
        /// Required fraction of in-budget requests, in `(0, 1)`.
        target: f64,
    },
    /// At least `target` of all requests are served without a server-side
    /// failure, in `(0, 1)`.
    Availability {
        /// Required fraction of served requests, in `(0, 1)`.
        target: f64,
    },
}

impl SloObjective {
    fn target(&self) -> f64 {
        match self {
            SloObjective::LatencyUnder { target, .. } => *target,
            SloObjective::Availability { target } => *target,
        }
    }

    /// Human-readable statement of the objective.
    fn describe(&self) -> String {
        match self {
            SloObjective::LatencyUnder { threshold, target } => {
                format!(
                    "P(success latency <= {:?}) >= {}",
                    threshold,
                    format_f64(*target)
                )
            }
            SloObjective::Availability { target } => {
                format!("P(served) >= {}", format_f64(*target))
            }
        }
    }

    /// Classifies one request against this objective: `Some(true)` = bad
    /// event, `Some(false)` = good event, `None` = not counted.
    fn classify(&self, latency_ns: u64, success: bool) -> Option<bool> {
        match self {
            SloObjective::LatencyUnder { threshold, .. } => {
                let budget_ns = u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX);
                success.then_some(latency_ns > budget_ns)
            }
            SloObjective::Availability { .. } => Some(!success),
        }
    }
}

/// One declared objective plus its evaluation windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name; lives in gauge names (`slo.<name>.burn_rate_short`)
    /// and the `/debug/slo` JSON.
    pub name: String,
    /// The promise itself.
    pub objective: SloObjective,
    /// Fast-signal window: confirms the problem is still happening.
    pub short_window: Duration,
    /// Evidence window: confirms the problem is material.
    pub long_window: Duration,
    /// Ring sub-buckets per window.
    pub sub_buckets: usize,
    /// Burn-rate threshold; breach requires **both** windows at or above
    /// it.
    pub burn_alert: f64,
}

impl SloSpec {
    /// Latency objective with serving-scale defaults: 10 s short / 60 s
    /// long windows, 10 sub-buckets, alert at burn 2.0.
    ///
    /// # Panics
    ///
    /// Panics unless `target` is in `(0, 1)`.
    pub fn latency(name: &str, threshold: Duration, target: f64) -> Self {
        SloSpec::with_defaults(name, SloObjective::LatencyUnder { threshold, target })
    }

    /// Availability objective with the same defaults as
    /// [`SloSpec::latency`].
    ///
    /// # Panics
    ///
    /// Panics unless `target` is in `(0, 1)`.
    pub fn availability(name: &str, target: f64) -> Self {
        SloSpec::with_defaults(name, SloObjective::Availability { target })
    }

    fn with_defaults(name: &str, objective: SloObjective) -> Self {
        let target = objective.target();
        assert!(
            target > 0.0 && target < 1.0,
            "SLO target must be in (0, 1), got {target}"
        );
        SloSpec {
            name: name.to_string(),
            objective,
            short_window: Duration::from_secs(10),
            long_window: Duration::from_secs(60),
            sub_buckets: 10,
            burn_alert: 2.0,
        }
    }

    /// Error budget: the tolerable bad-event fraction, `1 − target`.
    pub fn error_budget(&self) -> f64 {
        1.0 - self.objective.target()
    }
}

/// Burn state of one evaluation window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BurnWindow {
    /// Window length, nanoseconds.
    pub window_ns: u64,
    /// Events counted inside the window.
    pub events: u64,
    /// Bad events inside the window.
    pub bad: u64,
    /// `bad / events` (0 when the window is empty).
    pub bad_ratio: f64,
    /// `bad_ratio / error_budget` — 1.0 consumes the budget exactly at the
    /// sustainable rate.
    pub burn_rate: f64,
}

/// Point-in-time verdict for one objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Objective name.
    pub name: String,
    /// Human-readable objective statement.
    pub objective: String,
    /// Required good fraction.
    pub target: f64,
    /// Tolerable bad fraction, `1 − target`.
    pub error_budget: f64,
    /// Burn-rate threshold for alerting.
    pub burn_alert: f64,
    /// Fast-signal window state.
    pub short: BurnWindow,
    /// Evidence window state.
    pub long: BurnWindow,
    /// Whether both windows burn at or above `burn_alert`.
    pub breached: bool,
}

/// One objective bound to its pair of rolling windows.
#[derive(Debug)]
struct Slo {
    spec: SloSpec,
    short: RollingWindow,
    long: RollingWindow,
}

impl Slo {
    fn new(spec: SloSpec) -> Self {
        let short = RollingWindow::new(spec.short_window, spec.sub_buckets);
        let long = RollingWindow::new(spec.long_window, spec.sub_buckets);
        Slo { spec, short, long }
    }

    fn record_at(&self, now_ns: u64, latency_ns: u64, success: bool) {
        if let Some(bad) = self.spec.objective.classify(latency_ns, success) {
            let v = u64::from(bad);
            self.short.record_at(now_ns, v);
            self.long.record_at(now_ns, v);
        }
    }

    fn burn_at(&self, window: &RollingWindow, now_ns: u64) -> BurnWindow {
        let stats = window.stats_at(now_ns);
        let bad_ratio = if stats.count == 0 {
            0.0
        } else {
            stats.sum as f64 / stats.count as f64
        };
        let budget = self.spec.error_budget();
        BurnWindow {
            window_ns: stats.window_ns,
            events: stats.count,
            bad: stats.sum,
            bad_ratio,
            burn_rate: if budget > 0.0 {
                bad_ratio / budget
            } else {
                0.0
            },
        }
    }

    fn status_at(&self, now_ns: u64) -> SloStatus {
        let short = self.burn_at(&self.short, now_ns);
        let long = self.burn_at(&self.long, now_ns);
        let alert = self.spec.burn_alert;
        SloStatus {
            name: self.spec.name.clone(),
            objective: self.spec.objective.describe(),
            target: self.spec.objective.target(),
            error_budget: self.spec.error_budget(),
            burn_alert: alert,
            breached: short.burn_rate >= alert && long.burn_rate >= alert,
            short,
            long,
        }
    }
}

/// A set of objectives fed from one request stream.
///
/// Cheap to clone (the objectives are shared); an empty set is inert and
/// records nothing.
#[derive(Debug, Clone, Default)]
pub struct SloSet {
    slos: Arc<Vec<Slo>>,
}

impl SloSet {
    /// Builds the set from declared objectives.
    pub fn new(specs: Vec<SloSpec>) -> Self {
        SloSet {
            slos: Arc::new(specs.into_iter().map(Slo::new).collect()),
        }
    }

    /// Whether the set holds no objectives.
    pub fn is_empty(&self) -> bool {
        self.slos.is_empty()
    }

    /// Number of objectives.
    pub fn len(&self) -> usize {
        self.slos.len()
    }

    /// Records one request outcome against every objective at an explicit
    /// timestamp (nanoseconds on any monotonic scale). `success` means "no
    /// server-side failure".
    pub fn record_at(&self, now_ns: u64, latency_ns: u64, success: bool) {
        for slo in self.slos.iter() {
            slo.record_at(now_ns, latency_ns, success);
        }
    }

    /// Records one request outcome on the shared monotonic clock.
    pub fn record(&self, latency: Duration, success: bool) {
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.record_at(mono_now_ns(), ns, success);
    }

    /// Verdicts for every objective at an explicit timestamp.
    pub fn statuses_at(&self, now_ns: u64) -> Vec<SloStatus> {
        self.slos.iter().map(|s| s.status_at(now_ns)).collect()
    }

    /// Verdicts for every objective now.
    pub fn statuses(&self) -> Vec<SloStatus> {
        self.statuses_at(mono_now_ns())
    }

    /// Publishes per-objective gauges into `registry` at an explicit
    /// timestamp: `slo.<name>.burn_rate_short`, `slo.<name>.burn_rate_long`
    /// and `slo.<name>.breached` (1.0 breached / 0.0 healthy). Rendered by
    /// [`PromExporter`](crate::PromExporter) like any other gauge, which
    /// puts burn rates on `/metrics` with no exporter-side special-casing.
    pub fn publish_at(&self, registry: &Registry, now_ns: u64) {
        for status in self.statuses_at(now_ns) {
            registry
                .gauge(&format!("slo.{}.burn_rate_short", status.name))
                .set(status.short.burn_rate);
            registry
                .gauge(&format!("slo.{}.burn_rate_long", status.name))
                .set(status.long.burn_rate);
            registry
                .gauge(&format!("slo.{}.breached", status.name))
                .set(if status.breached { 1.0 } else { 0.0 });
        }
    }

    /// Publishes per-objective gauges as of now.
    pub fn publish(&self, registry: &Registry) {
        self.publish_at(registry, mono_now_ns());
    }

    /// Renders every verdict as a JSON object at an explicit timestamp
    /// (in-tree schema, no serde): `{"slos": [...]}`.
    pub fn to_json_at(&self, now_ns: u64) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"slos\": [");
        for (i, status) in self.statuses_at(now_ns).iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": \"");
            escape_json(&status.name, &mut out);
            out.push_str("\", \"objective\": \"");
            escape_json(&status.objective, &mut out);
            let _ = write!(
                out,
                "\", \"target\": {}, \"error_budget\": {}, \"burn_alert\": {}, \
                 \"short\": {}, \"long\": {}, \"breached\": {}}}",
                format_f64(status.target),
                format_f64(status.error_budget),
                format_f64(status.burn_alert),
                burn_json(&status.short),
                burn_json(&status.long),
                // The in-tree JsonValue reader has no boolean literals, so
                // verdicts are 0/1 like every other numeric field.
                u8::from(status.breached)
            );
        }
        out.push_str("]}");
        out
    }

    /// Renders every verdict as a JSON object as of now.
    pub fn to_json(&self) -> String {
        self.to_json_at(mono_now_ns())
    }
}

fn burn_json(b: &BurnWindow) -> String {
    format!(
        "{{\"window_ns\": {}, \"events\": {}, \"bad\": {}, \"bad_ratio\": {}, \"burn_rate\": {}}}",
        b.window_ns,
        b.events,
        b.bad,
        format_f64(b.bad_ratio),
        format_f64(b.burn_rate)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JsonValue, PromExporter};
    use std::collections::BTreeMap;

    fn set() -> SloSet {
        SloSet::new(vec![
            SloSpec::latency("lat", Duration::from_millis(10), 0.99),
            SloSpec::availability("avail", 0.999),
        ])
    }

    const MS: u64 = 1_000_000;

    #[test]
    fn healthy_traffic_burns_nothing() {
        let s = set();
        for i in 0..100u64 {
            s.record_at(i * MS, 2 * MS, true);
        }
        for status in s.statuses_at(100 * MS) {
            assert_eq!(status.short.burn_rate, 0.0, "{}", status.name);
            assert_eq!(status.long.burn_rate, 0.0, "{}", status.name);
            assert!(!status.breached);
        }
    }

    #[test]
    fn latency_breaches_only_when_both_windows_burn() {
        let s = SloSet::new(vec![SloSpec::latency(
            "lat",
            Duration::from_millis(10),
            0.99,
        )]);
        // 100 successes, 10 of them over-budget: bad ratio 0.1, budget
        // 0.01 → burn 10 on both windows (all inside 10 s).
        for i in 0..100u64 {
            let latency = if i < 10 { 20 * MS } else { 2 * MS };
            s.record_at(i * MS, latency, true);
        }
        let status = &s.statuses_at(100 * MS)[0];
        assert!((status.short.burn_rate - 10.0).abs() < 1e-9);
        assert!((status.long.burn_rate - 10.0).abs() < 1e-9);
        assert!(status.breached);
        // 11 s later the short window is clean but the long window still
        // remembers: evidence without recurrence is not a breach.
        let later = 11_000 * MS;
        let status = &s.statuses_at(later)[0];
        assert_eq!(status.short.burn_rate, 0.0);
        assert!(status.long.burn_rate > 2.0);
        assert!(!status.breached);
    }

    #[test]
    fn availability_counts_failures_and_latency_ignores_them() {
        let s = set();
        // 1000 requests, 5 failures (slow ones — a timeout pattern).
        for i in 0..1000u64 {
            let failed = i % 200 == 0;
            s.record_at(i * 10_000, if failed { 30_000 * MS } else { MS }, !failed);
        }
        let statuses = s.statuses_at(10 * MS);
        let lat = statuses.iter().find(|s| s.name == "lat").unwrap();
        let avail = statuses.iter().find(|s| s.name == "avail").unwrap();
        // Failures never reach the latency objective...
        assert_eq!(lat.short.events, 995);
        assert_eq!(lat.short.bad, 0);
        // ...but all burn the availability budget: 5/1000 vs budget 0.001.
        assert_eq!(avail.short.events, 1000);
        assert_eq!(avail.short.bad, 5);
        assert!((avail.short.burn_rate - 5.0).abs() < 1e-9);
        assert!(avail.breached);
    }

    #[test]
    fn empty_set_is_inert() {
        let s = SloSet::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        s.record(Duration::from_millis(1), true);
        assert!(s.statuses().is_empty());
        assert_eq!(s.to_json(), "{\"slos\": []}");
    }

    #[test]
    fn json_parses_and_carries_verdicts() {
        let s = set();
        for i in 0..10u64 {
            s.record_at(i * MS, 2 * MS, i != 3);
        }
        let json = s.to_json_at(10 * MS);
        let v = JsonValue::parse(&json).expect("slo json must parse");
        let slos = v.get("slos").and_then(JsonValue::as_array).unwrap();
        assert_eq!(slos.len(), 2);
        for slo in slos {
            for key in [
                "name",
                "objective",
                "target",
                "error_budget",
                "burn_alert",
                "short",
                "long",
                "breached",
            ] {
                assert!(slo.get(key).is_some(), "missing {key}");
            }
            let short = slo.get("short").unwrap();
            assert!(short.get("burn_rate").and_then(JsonValue::as_f64).is_some());
        }
    }

    #[test]
    fn published_gauge_exposition_format_is_locked() {
        // Power-of-two fixture so every burn rate is float-exact: targets
        // of 0.75 give a 0.25 budget; 32 successes with 8 over-budget burn
        // the latency budget at exactly 1.0, and 32 failures out of 64
        // requests burn availability at exactly 2.0. Locks the full gauge
        // block rendered by PromExporter so the /metrics surface cannot
        // drift silently.
        let s = SloSet::new(vec![
            SloSpec::latency("lat", Duration::from_millis(10), 0.75),
            SloSpec::availability("avail", 0.75),
        ]);
        for i in 0..64u64 {
            let failed = i < 32;
            let latency = if (32..40).contains(&i) { 20 * MS } else { MS };
            s.record_at(i * MS, latency, !failed);
        }
        let r = Registry::new();
        s.publish_at(&r, 64 * MS);
        let text = PromExporter::render(
            &r.snapshot(),
            &BTreeMap::new(),
            &crate::WindowSnapshot::default(),
        );
        let expected = "\
# TYPE slo_avail_breached gauge
slo_avail_breached 1.0
# TYPE slo_avail_burn_rate_long gauge
slo_avail_burn_rate_long 2.0
# TYPE slo_avail_burn_rate_short gauge
slo_avail_burn_rate_short 2.0
# TYPE slo_lat_breached gauge
slo_lat_breached 0.0
# TYPE slo_lat_burn_rate_long gauge
slo_lat_burn_rate_long 1.0
# TYPE slo_lat_burn_rate_short gauge
slo_lat_burn_rate_short 1.0
";
        assert_eq!(text, expected);
    }
}
