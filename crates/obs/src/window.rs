//! Fixed-memory rolling time-window aggregation.
//!
//! Every metric in this workspace is cumulative-since-start, which makes
//! `/metrics` useless for "what is p99 *right now*": a latency regression
//! ten minutes into a serve run is averaged into oblivion. A
//! [`RollingWindow`] keeps a ring of sub-window buckets (fixed memory,
//! O(sub_buckets) per metric) and answers windowed count / rate / p50 / p99
//! over the last N seconds.
//!
//! Windows attach lazily to existing registry cells via
//! [`Registry::enable_windows`](crate::Registry::enable_windows) — the
//! record path when windows are *off* is a single `OnceLock` load, keeping
//! the <2% instrumentation-overhead budget intact.
//!
//! Time is passed in explicitly (nanoseconds on the registry's monotonic
//! clock) so the rotation logic is deterministic under test: the proptests
//! drive `record_at`/`stats_at` with synthetic clocks, including wraps,
//! skips and out-of-order writers, and compare against a brute-force
//! oracle.

use crate::histogram::{bucket_index, percentile_from_buckets, quantile_from_buckets};
use crate::BUCKET_COUNT;
use std::sync::Mutex;
use std::time::Duration;

/// One sub-window bucket: a compact histogram plus count/sum, tagged with
/// the bucket epoch it currently represents.
#[derive(Debug, Clone)]
struct WinBucket {
    /// `time_ns / bucket_ns` of the interval this bucket holds. `u64::MAX`
    /// marks a never-used bucket.
    epoch: u64,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    hist: [u64; BUCKET_COUNT],
}

impl WinBucket {
    fn empty() -> Self {
        WinBucket {
            epoch: u64::MAX,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            hist: [0; BUCKET_COUNT],
        }
    }

    fn reset(&mut self, epoch: u64) {
        self.epoch = epoch;
        self.count = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
        self.hist = [0; BUCKET_COUNT];
    }

    fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.hist[bucket_index(value)] += 1;
    }
}

/// Aggregate over the live portion of a [`RollingWindow`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowStats {
    /// Window length this aggregate covers, nanoseconds.
    pub window_ns: u64,
    /// Samples recorded inside the window.
    pub count: u64,
    /// Sum of sample values inside the window.
    pub sum: u64,
    /// Samples (for histograms) or summed increments (for counters) per
    /// second over the window.
    pub rate_per_sec: f64,
    /// Estimated windowed 50th percentile (0 when empty).
    pub p50_ns: u64,
    /// Estimated windowed 99th percentile (0 when empty).
    pub p99_ns: u64,
}

/// Fixed-memory rolling aggregation over the last `window` of time.
///
/// The window is divided into `sub_buckets` equal sub-intervals; each
/// recorded value lands in the bucket for its timestamp's sub-interval, and
/// buckets are recycled in place as time advances (no allocation after
/// construction). Queries merge the buckets still inside the window.
///
/// Timestamps are caller-supplied nanoseconds on any monotonic scale.
/// Records older than the window (or older than what their ring slot
/// currently holds) are dropped; a clock that skips forward simply ages
/// every bucket out, yielding an empty window.
#[derive(Debug)]
pub struct RollingWindow {
    window_ns: u64,
    bucket_ns: u64,
    ring: Mutex<Vec<WinBucket>>,
}

impl RollingWindow {
    /// Creates a window of length `window` split into `sub_buckets` buckets.
    ///
    /// # Panics
    ///
    /// Panics when `window` is zero or shorter than `sub_buckets`
    /// nanoseconds, or when `sub_buckets` is zero.
    pub fn new(window: Duration, sub_buckets: usize) -> Self {
        let window_ns = u64::try_from(window.as_nanos()).unwrap_or(u64::MAX);
        assert!(sub_buckets > 0, "RollingWindow needs at least one bucket");
        let bucket_ns = window_ns / sub_buckets as u64;
        assert!(
            bucket_ns > 0,
            "window {window:?} too short for {sub_buckets} sub-buckets"
        );
        RollingWindow {
            window_ns: bucket_ns * sub_buckets as u64,
            bucket_ns,
            ring: Mutex::new(vec![WinBucket::empty(); sub_buckets]),
        }
    }

    /// The effective window length (the requested window rounded down to a
    /// whole number of sub-buckets), nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Records `value` with timestamp `now_ns`.
    pub fn record_at(&self, now_ns: u64, value: u64) {
        let epoch = now_ns / self.bucket_ns;
        let mut ring = self.ring.lock().expect("rolling window lock poisoned");
        let n = ring.len() as u64;
        let slot = (epoch % n) as usize;
        let bucket = &mut ring[slot];
        if bucket.epoch != epoch {
            if bucket.epoch != u64::MAX && epoch < bucket.epoch {
                // The slot already holds a newer interval: this record is
                // older than the window. Drop it.
                return;
            }
            bucket.reset(epoch);
        }
        bucket.record(value);
    }

    /// Merges every bucket whose epoch is inside
    /// `(now_epoch - sub_buckets, now_epoch]` into one aggregate.
    fn merge_at(&self, now_ns: u64) -> (u64, u64, u64, u64, [u64; BUCKET_COUNT]) {
        let now_epoch = now_ns / self.bucket_ns;
        let ring = self.ring.lock().expect("rolling window lock poisoned");
        let n = ring.len() as u64;
        let oldest = now_epoch.saturating_sub(n - 1);
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut hist = [0u64; BUCKET_COUNT];
        for bucket in ring.iter() {
            if bucket.epoch == u64::MAX || bucket.epoch < oldest || bucket.epoch > now_epoch {
                continue;
            }
            count += bucket.count;
            sum += bucket.sum;
            min = min.min(bucket.min);
            max = max.max(bucket.max);
            for (acc, b) in hist.iter_mut().zip(bucket.hist.iter()) {
                *acc += *b;
            }
        }
        (count, sum, min, max, hist)
    }

    /// Windowed aggregate as of `now_ns`: merges every bucket whose epoch is
    /// inside `(now_epoch - sub_buckets, now_epoch]`.
    pub fn stats_at(&self, now_ns: u64) -> WindowStats {
        let (count, sum, min, max, hist) = self.merge_at(now_ns);
        let secs = self.window_ns as f64 / 1e9;
        WindowStats {
            window_ns: self.window_ns,
            count,
            sum,
            rate_per_sec: if secs > 0.0 { count as f64 / secs } else { 0.0 },
            p50_ns: percentile_from_buckets(&hist, count, min, max, 50.0),
            p99_ns: percentile_from_buckets(&hist, count, min, max, 99.0),
        }
    }

    /// Windowed quantile estimates as of `now_ns`, one per `q ∈ [0, 1]` in
    /// `qs`, nanoseconds, with within-bucket linear interpolation (see
    /// [`Histogram::quantile`](crate::Histogram::quantile)). Unlike the
    /// fixed p50/p99 of [`WindowStats`] the quantile set is caller-chosen,
    /// so deep-tail objectives (p99.9) can be evaluated over the window.
    pub fn quantiles_at(&self, now_ns: u64, qs: &[f64]) -> Vec<u64> {
        let (count, _sum, min, max, hist) = self.merge_at(now_ns);
        qs.iter()
            .map(|&q| quantile_from_buckets(&hist, count, min, max, q))
            .collect()
    }

    /// Sub-bucket width, nanoseconds (exposed for tests).
    pub fn bucket_ns(&self) -> u64 {
        self.bucket_ns
    }
}

/// Windowed view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedHistogram {
    /// Metric name (matches the cumulative histogram).
    pub name: String,
    /// Aggregate over the window.
    pub stats: WindowStats,
}

/// Windowed view of one counter: `stats.sum` is the total increment inside
/// the window and `increment_rate_per_sec` its per-second rate.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedCounter {
    /// Metric name (matches the cumulative counter).
    pub name: String,
    /// Total counter increment inside the window.
    pub increment: u64,
    /// Increment per second over the window.
    pub increment_rate_per_sec: f64,
    /// Window length, nanoseconds.
    pub window_ns: u64,
}

/// Point-in-time windowed aggregates for every windowed metric in a
/// registry, sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WindowSnapshot {
    /// Windowed counters.
    pub counters: Vec<WindowedCounter>,
    /// Windowed histograms.
    pub histograms: Vec<WindowedHistogram>,
}

impl WindowSnapshot {
    /// Looks up a windowed histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&WindowedHistogram> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a windowed counter by name.
    pub fn counter(&self, name: &str) -> Option<&WindowedCounter> {
        self.counters.iter().find(|c| c.name == name)
    }

    /// Renders the snapshot as a JSON object (in-tree schema, no serde).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": \"");
            crate::export::escape_json(&c.name, &mut out);
            let _ = write!(
                out,
                "\", \"window_ns\": {}, \"increment\": {}, \"rate_per_sec\": {}}}",
                c.window_ns,
                c.increment,
                crate::export::format_f64(c.increment_rate_per_sec)
            );
        }
        out.push_str("], \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"name\": \"");
            crate::export::escape_json(&h.name, &mut out);
            let _ = write!(
                out,
                "\", \"window_ns\": {}, \"count\": {}, \"sum_ns\": {}, \"rate_per_sec\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}}}",
                h.stats.window_ns,
                h.stats.count,
                h.stats.sum,
                crate::export::format_f64(h.stats.rate_per_sec),
                h.stats.p50_ns,
                h.stats.p99_ns
            );
        }
        out.push_str("]}");
        out
    }
}

/// Nanoseconds on the process-wide monotonic clock all windowed metrics
/// share (anchored at first use).
pub fn mono_now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_ages_out() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        w.record_at(b, 100);
        w.record_at(2 * b, 200);
        let s = w.stats_at(2 * b);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 300);
        // Advance past the window: everything ages out.
        let s = w.stats_at(2 * b + w.window_ns());
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_ns, 0);
    }

    #[test]
    fn partial_expiry_keeps_recent_buckets() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        w.record_at(b, 100); // epoch 1
        w.record_at(5 * b, 500); // epoch 5
                                 // At epoch 11 the window covers epochs 2..=11: only the second stays.
        let s = w.stats_at(11 * b);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 500);
    }

    #[test]
    fn stale_slot_is_recycled_in_place() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        w.record_at(b, 1); // epoch 1 -> slot 1
        w.record_at(11 * b, 2); // epoch 11 -> slot 1 again, recycled
        let s = w.stats_at(11 * b);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 2);
    }

    #[test]
    fn out_of_window_record_is_dropped() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        w.record_at(20 * b, 5);
        w.record_at(10 * b, 7); // slot (10 % 10)=0 vs epoch-20 bucket: older, dropped
        let s = w.stats_at(20 * b);
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 5);
    }

    #[test]
    fn clock_skip_empties_the_window() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        for e in 0..10u64 {
            w.record_at(e * b, e + 1);
        }
        assert_eq!(w.stats_at(9 * b).count, 10);
        // A huge forward skip ages out every bucket at query time even
        // though no record has recycled them yet.
        assert_eq!(w.stats_at(1_000_000 * b).count, 0);
    }

    #[test]
    fn record_far_past_last_epoch_restarts_cleanly() {
        // A loadgen run that stalls (VM pause, debugger, suspend) resumes
        // with `record_at` timestamps thousands of epochs past the last
        // write. The first record after the gap must not drag any pre-gap
        // bucket back into view.
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        for e in 0..10u64 {
            w.record_at(e * b, 1_000 * (e + 1));
        }
        assert_eq!(w.stats_at(9 * b).count, 10);
        let far = 1_000_000_007u64 * b;
        w.record_at(far, 42);
        let s = w.stats_at(far);
        assert_eq!(s.count, 1, "only the post-gap record may be visible");
        assert_eq!(s.sum, 42);
        assert_eq!(s.p50_ns, 42);
        assert_eq!(s.p99_ns, 42);
        // A write stamped before the gap must stay outside the live view,
        // not resurrect stale data.
        w.record_at(5 * b, 9_999);
        assert_eq!(w.stats_at(far).sum, 42);
    }

    #[test]
    fn empty_window_stats_after_full_idle_rotation() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        for e in 0..10u64 {
            w.record_at(e * b, (e + 1) * 100);
        }
        // Idle for exactly one full window after the last write: every
        // bucket has aged out, and the empty aggregate must be all-zero
        // (not u64::MAX min artifacts or stale percentiles).
        let idle = 9 * b + w.window_ns();
        let s = w.stats_at(idle);
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.rate_per_sec, 0.0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.p99_ns, 0);
        assert_eq!(w.quantiles_at(idle, &[0.5, 0.999]), vec![0, 0]);
        // The ring must accept fresh records immediately after the idle
        // rotation.
        w.record_at(idle, 7);
        let s = w.stats_at(idle);
        assert_eq!((s.count, s.sum), (1, 7));
    }

    #[test]
    fn backwards_timestamp_within_window_still_counts() {
        // Writers race: a thread preempted between reading the clock and
        // recording lands a timestamp a few buckets behind the newest
        // write. As long as its epoch is still inside the window it must
        // be kept.
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        w.record_at(5 * b, 500);
        w.record_at(3 * b, 300); // older epoch, same ring generation
        let s = w.stats_at(5 * b);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 800);
    }

    #[test]
    fn windowed_quantiles_interpolate_within_buckets() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        // Uniformly fill one log2 bucket: (1024, 2048].
        for ns in 1025..=2048u64 {
            w.record_at(b, ns);
        }
        let qs = w.quantiles_at(b, &[0.5, 0.9, 0.999]);
        assert!((1534..=1538).contains(&qs[0]), "windowed p50 {} off", qs[0]);
        assert!(
            qs[1] > qs[0] && qs[2] > qs[1],
            "tail quantiles must resolve"
        );
        assert!(
            (2045..=2048).contains(&qs[2]),
            "windowed p99.9 {} off",
            qs[2]
        );
    }

    #[test]
    fn windowed_percentiles_are_plausible() {
        let w = RollingWindow::new(Duration::from_secs(10), 10);
        let b = w.bucket_ns();
        for i in 1..=100u64 {
            w.record_at(b, i * 1_000_000);
        }
        let s = w.stats_at(b);
        assert_eq!(s.count, 100);
        assert!(s.p50_ns >= 1_000_000 && s.p50_ns <= 100_000_000);
        assert!(s.p99_ns >= s.p50_ns);
        assert!((s.rate_per_sec - 10.0).abs() < 1e-9);
    }
}
