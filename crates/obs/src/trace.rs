//! The flight recorder: a lock-light tracer writing nested spans and
//! instant events into fixed-capacity per-thread ring buffers.
//!
//! Where the [`Registry`](crate::Registry) answers *how long does stage X
//! take on average* (histograms have no time axis), the [`Tracer`] answers
//! *what happened, in order, around frame N*: which frame stalled, which
//! layer inside that frame's forward pass spiked, what the pipeline was
//! doing in the seconds before a stage died. Every event carries a
//! monotonic `frame_id` trace context that flows camera → conform/resize →
//! per-layer forward → decode → NMS through the detection stack, so a
//! merged timeline can be filtered to one frame's causal history.
//!
//! Design constraints, in the spirit of the registry:
//!
//! * **no allocation on the hot path** — event names are `&'static str`,
//!   events are fixed-size structs written into a preallocated ring,
//! * **lock-light** — each thread writes its own shard; the shard's mutex
//!   is only ever contended by a snapshot/black-box read, never by another
//!   writer,
//! * **fixed capacity** — the ring holds the last `capacity` events per
//!   thread and overwrites the oldest beyond that (a flight recorder, not
//!   a log), counting what it dropped,
//! * **[`Tracer::noop`] is a single branch** — instrumented code keeps its
//!   spans unconditionally, like inert registry handles.
//!
//! # Example
//!
//! ```
//! use dronet_obs::Tracer;
//!
//! let tracer = Tracer::new();
//! {
//!     let _frame = tracer.frame_span("frame", 7); // sets the frame context
//!     let _stage = tracer.span("detect.forward"); // inherits frame 7
//!     tracer.instant("decode.start");
//! }
//! let snap = tracer.snapshot();
//! assert_eq!(snap.events.len(), 5, "2 begins + 2 ends + 1 instant");
//! assert!(snap.events.iter().all(|e| e.frame_id == 7));
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

/// Default per-thread ring capacity, in events.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// Sentinel for [`TraceEvent::aux`]: no auxiliary value.
pub const NO_AUX: i64 = -1;

/// What kind of record a [`TraceEvent`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A span opened (the matching [`TraceKind::End`] may be missing if
    /// the span was still open when the trace was captured — crash
    /// evidence, not corruption).
    Begin,
    /// A span closed; carries the span duration and the sequence number of
    /// its `Begin`, so spans survive even when the ring overwrote the
    /// `Begin`.
    End,
    /// A point event with no duration.
    Instant,
}

/// One flight-recorder event. Fixed-size and `Copy`: names are static
/// strings, numeric context rides in `frame_id` / `aux`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Record kind.
    pub kind: TraceKind,
    /// Nanoseconds since the tracer was created. For [`TraceKind::End`]
    /// this is the span's *end* time.
    pub ts_ns: u64,
    /// Span duration in nanoseconds ([`TraceKind::End`] only, else 0).
    pub dur_ns: u64,
    /// Sequence number of the matching `Begin` ([`TraceKind::End`] only,
    /// else `u64::MAX`).
    pub begin_seq: u64,
    /// Recorder-assigned id of the thread that wrote the event.
    pub tid: u64,
    /// The frame this event belongs to (the trace context).
    pub frame_id: u64,
    /// Auxiliary integer (layer index for per-layer spans); [`NO_AUX`]
    /// when unused.
    pub aux: i64,
    /// Event name.
    pub name: &'static str,
}

impl TraceEvent {
    /// Span start time in nanoseconds (for `End` events, `ts - dur`;
    /// otherwise `ts`).
    pub fn start_ns(&self) -> u64 {
        self.ts_ns.saturating_sub(self.dur_ns)
    }
}

/// One thread's ring. The cursor counts every write ever made; the buffer
/// retains the most recent `capacity` of them.
#[derive(Debug)]
struct Shard {
    tid: u64,
    current_frame: AtomicU64,
    cursor: AtomicU64,
    buf: Mutex<Vec<TraceEvent>>,
    /// Human label registered via [`Tracer::name_thread`]; exported as a
    /// Chrome `thread_name` metadata event so Perfetto shows e.g.
    /// `serve-worker-0` instead of a bare tid.
    name: Mutex<Option<String>>,
}

impl Shard {
    fn write(&self, event: TraceEvent) {
        let mut buf = self.buf.lock().expect("trace shard lock poisoned");
        let cursor = self.cursor.load(Ordering::Relaxed) as usize;
        if buf.len() < buf.capacity() {
            buf.push(event);
        } else {
            let cap = buf.len();
            buf[cursor % cap] = event;
        }
        self.cursor.fetch_add(1, Ordering::Relaxed);
    }

    /// Events in write order (oldest retained first), plus the number of
    /// events the ring overwrote.
    fn drain_ordered(&self) -> (Vec<TraceEvent>, u64) {
        let buf = self.buf.lock().expect("trace shard lock poisoned");
        let cursor = self.cursor.load(Ordering::Relaxed);
        let mut events = Vec::with_capacity(buf.len());
        if buf.len() == buf.capacity() && !buf.is_empty() {
            let split = cursor as usize % buf.len();
            events.extend_from_slice(&buf[split..]);
            events.extend_from_slice(&buf[..split]);
        } else {
            events.extend_from_slice(&buf);
        }
        (events, cursor.saturating_sub(buf.len() as u64))
    }
}

#[derive(Debug)]
struct TracerInner {
    /// Identity of this tracer for the thread-local shard cache (never
    /// reused, unlike an `Arc` address).
    id: u64,
    capacity: usize,
    epoch: Instant,
    seq: AtomicU64,
    next_tid: AtomicU64,
    shards: Mutex<Vec<Arc<Shard>>>,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Per-thread cache of (tracer id → shard). Almost always one entry.
    /// Weak so a dropped tracer's rings are freed; dead entries are pruned
    /// on the (cold) cache-miss path.
    static LOCAL_SHARDS: RefCell<Vec<(u64, Weak<Shard>)>> = const { RefCell::new(Vec::new()) };
}

/// The flight recorder handle. Cheap to clone (all clones share the same
/// rings); inert when obtained from [`Tracer::noop`].
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A live tracer with [`DEFAULT_TRACE_CAPACITY`] events per thread.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A live tracer retaining the last `capacity` events per thread
    /// (clamped to at least 2 so a span's begin/end pair can coexist).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Some(Arc::new(TracerInner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                capacity: capacity.max(2),
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                next_tid: AtomicU64::new(1),
                shards: Mutex::new(Vec::new()),
            })),
        }
    }

    /// An inert tracer: every record path is a single branch, no clock
    /// read, no storage.
    pub fn noop() -> Self {
        Tracer { inner: None }
    }

    /// Whether this tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The calling thread's shard, creating and registering it on first
    /// use. Only called on live tracers.
    fn shard(inner: &Arc<TracerInner>) -> Arc<Shard> {
        LOCAL_SHARDS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(shard) = cache
                .iter()
                .find(|(id, _)| *id == inner.id)
                .and_then(|(_, weak)| weak.upgrade())
            {
                return shard;
            }
            cache.retain(|(_, weak)| weak.strong_count() > 0);
            let shard = Arc::new(Shard {
                tid: inner.next_tid.fetch_add(1, Ordering::Relaxed),
                current_frame: AtomicU64::new(0),
                cursor: AtomicU64::new(0),
                buf: Mutex::new(Vec::with_capacity(inner.capacity)),
                name: Mutex::new(None),
            });
            inner
                .shards
                .lock()
                .expect("tracer shard list poisoned")
                .push(Arc::clone(&shard));
            cache.push((inner.id, Arc::downgrade(&shard)));
            shard
        })
    }

    /// Labels the calling thread in trace exports: the Chrome trace gains a
    /// `thread_name` metadata event for this thread's tid, so Perfetto
    /// shows `name` instead of a bare thread number. Last write wins; inert
    /// on a noop tracer.
    pub fn name_thread(&self, name: &str) {
        if let Some(inner) = &self.inner {
            let shard = Self::shard(inner);
            *shard.name.lock().expect("trace shard name poisoned") = Some(name.to_string());
        }
    }

    /// Sets the calling thread's frame context: subsequent [`Tracer::span`]
    /// / [`Tracer::instant`] events carry this `frame_id`.
    pub fn set_frame(&self, frame_id: u64) {
        if let Some(inner) = &self.inner {
            Self::shard(inner)
                .current_frame
                .store(frame_id, Ordering::Relaxed);
        }
    }

    /// The calling thread's current frame context (0 when unset or inert).
    pub fn current_frame(&self) -> u64 {
        match &self.inner {
            Some(inner) => Self::shard(inner).current_frame.load(Ordering::Relaxed),
            None => 0,
        }
    }

    fn open_span(&self, name: &'static str, frame_id: Option<u64>, aux: i64) -> TraceSpan {
        let Some(inner) = &self.inner else {
            return TraceSpan { state: None };
        };
        let shard = Self::shard(inner);
        let frame_id = match frame_id {
            Some(id) => {
                shard.current_frame.store(id, Ordering::Relaxed);
                id
            }
            None => shard.current_frame.load(Ordering::Relaxed),
        };
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let ts_ns = saturating_ns(start - inner.epoch);
        shard.write(TraceEvent {
            seq,
            kind: TraceKind::Begin,
            ts_ns,
            dur_ns: 0,
            begin_seq: u64::MAX,
            tid: shard.tid,
            frame_id,
            aux,
            name,
        });
        TraceSpan {
            state: Some(SpanState {
                inner: Arc::clone(inner),
                shard,
                name,
                frame_id,
                aux,
                begin_seq: seq,
                start,
            }),
        }
    }

    /// Opens a span that inherits the thread's current frame context and
    /// closes (recording its duration) on drop.
    pub fn span(&self, name: &'static str) -> TraceSpan {
        self.open_span(name, None, NO_AUX)
    }

    /// [`Tracer::span`] with an auxiliary integer (e.g. a layer index).
    pub fn span_aux(&self, name: &'static str, aux: i64) -> TraceSpan {
        self.open_span(name, None, aux)
    }

    /// Opens the per-frame root span: sets the thread's frame context to
    /// `frame_id` and opens a span carrying it. Nested spans and instants
    /// on this thread inherit the id until the next `frame_span` /
    /// [`Tracer::set_frame`].
    pub fn frame_span(&self, name: &'static str, frame_id: u64) -> TraceSpan {
        self.open_span(name, Some(frame_id), NO_AUX)
    }

    /// Records a point event with the thread's current frame context.
    pub fn instant(&self, name: &'static str) {
        self.instant_aux(name, NO_AUX);
    }

    /// [`Tracer::instant`] with an explicit frame id (e.g. for a dropped
    /// frame that never becomes the current context).
    pub fn instant_frame(&self, name: &'static str, frame_id: u64) {
        if let Some(inner) = &self.inner {
            let shard = Self::shard(inner);
            self.write_instant(inner, &shard, name, frame_id, NO_AUX);
        }
    }

    /// [`Tracer::instant`] with an auxiliary integer.
    pub fn instant_aux(&self, name: &'static str, aux: i64) {
        if let Some(inner) = &self.inner {
            let shard = Self::shard(inner);
            let frame_id = shard.current_frame.load(Ordering::Relaxed);
            self.write_instant(inner, &shard, name, frame_id, aux);
        }
    }

    fn write_instant(
        &self,
        inner: &Arc<TracerInner>,
        shard: &Shard,
        name: &'static str,
        frame_id: u64,
        aux: i64,
    ) {
        shard.write(TraceEvent {
            seq: inner.seq.fetch_add(1, Ordering::Relaxed),
            kind: TraceKind::Instant,
            ts_ns: saturating_ns(inner.epoch.elapsed()),
            dur_ns: 0,
            begin_seq: u64::MAX,
            tid: shard.tid,
            frame_id,
            aux,
            name,
        });
    }

    /// Merged, time-ordered copy of every thread's retained events. The
    /// rings keep recording; a snapshot is a read, not a drain.
    pub fn snapshot(&self) -> TraceSnapshot {
        let Some(inner) = &self.inner else {
            return TraceSnapshot::default();
        };
        let shards: Vec<Arc<Shard>> = inner
            .shards
            .lock()
            .expect("tracer shard list poisoned")
            .iter()
            .map(Arc::clone)
            .collect();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        let mut thread_names = Vec::new();
        for shard in shards {
            let (mut shard_events, shard_dropped) = shard.drain_ordered();
            events.append(&mut shard_events);
            dropped += shard_dropped;
            if let Some(name) = shard
                .name
                .lock()
                .expect("trace shard name poisoned")
                .clone()
            {
                thread_names.push((shard.tid, name));
            }
        }
        events.sort_by_key(|e| e.seq);
        thread_names.sort_by_key(|(tid, _)| *tid);
        TraceSnapshot {
            events,
            dropped,
            thread_names,
        }
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    d.as_nanos().min(u64::MAX as u128) as u64
}

struct SpanState {
    inner: Arc<TracerInner>,
    shard: Arc<Shard>,
    name: &'static str,
    frame_id: u64,
    aux: i64,
    begin_seq: u64,
    start: Instant,
}

impl std::fmt::Debug for SpanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanState")
            .field("name", &self.name)
            .field("frame_id", &self.frame_id)
            .finish_non_exhaustive()
    }
}

/// RAII guard for an open trace span; writes the `End` event on drop.
/// Obtained from [`Tracer::span`] and friends; inert from a noop tracer.
#[derive(Debug)]
pub struct TraceSpan {
    state: Option<SpanState>,
}

impl TraceSpan {
    /// Closes the span now (identical to dropping it).
    pub fn stop(self) {
        drop(self);
    }

    /// Abandons the span: no `End` event is written (the `Begin` stays in
    /// the ring as evidence of the open span).
    pub fn cancel(mut self) {
        self.state = None;
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            state.shard.write(TraceEvent {
                seq: state.inner.seq.fetch_add(1, Ordering::Relaxed),
                kind: TraceKind::End,
                ts_ns: saturating_ns(state.inner.epoch.elapsed()),
                dur_ns: saturating_ns(state.start.elapsed()),
                begin_seq: state.begin_seq,
                tid: state.shard.tid,
                frame_id: state.frame_id,
                aux: state.aux,
                name: state.name,
            });
        }
    }
}

/// A merged, sequence-ordered copy of the flight recorder's contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// All retained events, ordered by global sequence number.
    pub events: Vec<TraceEvent>,
    /// Events the rings overwrote before this snapshot (flight-recorder
    /// wrap, not an error).
    pub dropped: u64,
    /// Labels registered via [`Tracer::name_thread`], sorted by tid.
    pub thread_names: Vec<(u64, String)>,
}

impl TraceSnapshot {
    /// The last `n` events (the black-box view).
    pub fn tail(&self, n: usize) -> &[TraceEvent] {
        &self.events[self.events.len().saturating_sub(n)..]
    }

    /// An owned snapshot holding only the last `n` events, with thread
    /// names and the wrap count preserved — the crash-black-box capture
    /// shape: small enough to retain per failure, complete enough that
    /// [`TraceSnapshot::to_text`] and the Chrome exporter still label
    /// worker lanes.
    pub fn tail_snapshot(&self, n: usize) -> TraceSnapshot {
        let kept = self.tail(n);
        TraceSnapshot {
            dropped: self.dropped + (self.events.len() - kept.len()) as u64,
            events: kept.to_vec(),
            thread_names: self.thread_names.clone(),
        }
    }

    /// Every event carrying `frame_id`.
    pub fn for_frame(&self, frame_id: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.frame_id == frame_id)
            .collect()
    }

    /// Renders the snapshot as a plain-text timeline, one event per line,
    /// in time order — the greppable companion to the Chrome export.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(self.events.len() * 64 + 64);
        let _ = writeln!(
            out,
            "# trace: {} events ({} overwritten by ring wrap)",
            self.events.len(),
            self.dropped
        );
        for e in &self.events {
            let kind = match e.kind {
                TraceKind::Begin => "B",
                TraceKind::End => "E",
                TraceKind::Instant => "i",
            };
            let _ = write!(
                out,
                "[{:>12.3} ms] tid {:>2} frame {:>6} {} {}",
                e.ts_ns as f64 / 1e6,
                e.tid,
                e.frame_id,
                kind,
                e.name
            );
            if e.aux != NO_AUX {
                let _ = write!(out, "#{}", e.aux);
            }
            if e.kind == TraceKind::End {
                let _ = write!(out, " ({:.3} ms)", e.dur_ns as f64 / 1e6);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_tracer_is_inert() {
        let t = Tracer::noop();
        assert!(!t.is_enabled());
        let span = t.span("x");
        t.instant("y");
        t.set_frame(3);
        drop(span);
        assert_eq!(t.snapshot(), TraceSnapshot::default());
        assert_eq!(t.current_frame(), 0);
    }

    #[test]
    fn spans_nest_and_inherit_frame_context() {
        let t = Tracer::new();
        let frame = t.frame_span("frame", 42);
        let stage = t.span("stage");
        let layer = t.span_aux("conv", 3);
        t.instant("note");
        drop(layer);
        drop(stage);
        drop(frame);
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 7);
        assert!(snap.events.iter().all(|e| e.frame_id == 42));
        // Sequence order is write order; ends come out innermost-first.
        let ends: Vec<_> = snap
            .events
            .iter()
            .filter(|e| e.kind == TraceKind::End)
            .collect();
        assert_eq!(
            ends.iter().map(|e| e.name).collect::<Vec<_>>(),
            vec!["conv", "stage", "frame"]
        );
        // Every end back-references its begin.
        for end in ends {
            let begin = snap.events.iter().find(|e| e.seq == end.begin_seq).unwrap();
            assert_eq!(begin.kind, TraceKind::Begin);
            assert_eq!(begin.name, end.name);
        }
        assert_eq!(
            snap.events.iter().find(|e| e.aux == 3).unwrap().name,
            "conv"
        );
    }

    #[test]
    fn ring_wraps_keeping_most_recent() {
        let t = Tracer::with_capacity(8);
        for i in 0..30u64 {
            t.instant_frame("tick", i);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 8);
        assert_eq!(snap.dropped, 22);
        let ids: Vec<u64> = snap.events.iter().map(|e| e.frame_id).collect();
        assert_eq!(
            ids,
            (22..30).collect::<Vec<_>>(),
            "newest retained, in order"
        );
    }

    #[test]
    fn threads_get_distinct_shards_and_merge_ordered() {
        let t = Tracer::new();
        std::thread::scope(|s| {
            for worker in 0..3u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let _span = t.frame_span("work", worker * 1000 + i);
                    }
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 300, "3 threads x 50 spans x B+E");
        let tids: std::collections::BTreeSet<u64> = snap.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3, "one shard per thread");
        for pair in snap.events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "snapshot is sequence-ordered");
        }
        assert_eq!(snap.dropped, 0);
    }

    #[test]
    fn cancelled_span_leaves_open_begin() {
        let t = Tracer::new();
        t.frame_span("frame", 9).cancel();
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].kind, TraceKind::Begin);
        assert_eq!(snap.tail(5)[0].frame_id, 9);
        assert_eq!(snap.for_frame(9).len(), 1);
        assert!(snap.for_frame(8).is_empty());
    }

    #[test]
    fn tail_snapshot_preserves_names_and_accounts_for_truncation() {
        let t = Tracer::new();
        t.name_thread("serve-worker-0");
        for i in 0..10 {
            t.instant_frame("tick", i);
        }
        let snap = t.snapshot();
        let tail = snap.tail_snapshot(3);
        assert_eq!(tail.events.len(), 3);
        assert_eq!(tail.events[0].frame_id, 7, "kept the newest events");
        assert_eq!(tail.dropped, 7, "truncated events count as dropped");
        assert_eq!(tail.thread_names, snap.thread_names);
        // Asking for more than exists is the whole snapshot.
        let all = snap.tail_snapshot(100);
        assert_eq!(all, snap);
    }

    #[test]
    fn thread_names_are_collected_per_shard() {
        let t = Tracer::new();
        t.name_thread("main-loop");
        t.instant("tick");
        std::thread::scope(|s| {
            let t2 = t.clone();
            s.spawn(move || {
                t2.name_thread("worker-0");
                t2.instant("tock");
            });
        });
        let snap = t.snapshot();
        let names: Vec<&str> = snap.thread_names.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["main-loop", "worker-0"]);
        // Each name's tid matches a shard that actually wrote events.
        for (tid, _) in &snap.thread_names {
            assert!(snap.events.iter().any(|e| e.tid == *tid));
        }
        // Renaming wins over the first registration.
        t.name_thread("renamed");
        assert_eq!(t.snapshot().thread_names[0].1, "renamed");
        Tracer::noop().name_thread("ignored");
    }

    #[test]
    fn text_timeline_renders_all_events() {
        let t = Tracer::new();
        {
            let _f = t.frame_span("frame", 1);
            let _l = t.span_aux("conv", 2);
            t.instant("note");
        }
        let text = t.snapshot().to_text();
        assert!(text.contains("B frame"));
        assert!(text.contains("E conv#2"));
        assert!(text.contains("i note"));
        assert!(text.lines().count() >= 6);
    }
}
