//! Prometheus text exposition format for [`Snapshot`]s.
//!
//! Renders every metric as `# TYPE`-annotated lines a Prometheus scraper
//! (or `promtool check metrics`) accepts: counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum` / `_count`. Metric names are sanitized to the legal
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` alphabet (dots and dashes become
//! underscores), and histogram nanoseconds are converted to seconds, the
//! Prometheus base unit.
//!
//! [`PromExporter::render`] additionally emits `# HELP` lines for metrics
//! with a registered description (see
//! [`Registry::describe`](crate::Registry::describe)) and, for windowed
//! metrics, per-window gauges next to the cumulative series:
//! `{name}_window_rate{window="10s"}` plus `_window_p50_seconds` /
//! `_window_p99_seconds` for histograms.

use crate::export::format_f64;
use crate::window::WindowSnapshot;
use crate::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

/// Renders a [`Snapshot`] in the Prometheus text exposition format.
pub struct PromExporter;

/// Maps an internal metric name onto the Prometheus name alphabet.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let legal =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || { i > 0 && ch.is_ascii_digit() };
        out.push(if legal { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Seconds rendering for nanosecond quantities.
fn seconds(ns: u64) -> String {
    format_f64(ns as f64 / 1e9)
}

/// Escapes `# HELP` text per the exposition format (backslash and newline).
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Human label for a window length, e.g. `10s` or `250ms`.
fn window_label(window_ns: u64) -> String {
    if window_ns.is_multiple_of(1_000_000_000) {
        format!("{}s", window_ns / 1_000_000_000)
    } else if window_ns.is_multiple_of(1_000_000) {
        format!("{}ms", window_ns / 1_000_000)
    } else {
        format!("{window_ns}ns")
    }
}

fn write_help(out: &mut String, help: &BTreeMap<String, String>, raw: &str, name: &str) {
    if let Some(text) = help.get(raw) {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(text));
    }
}

impl PromExporter {
    /// The `Content-Type` an HTTP endpoint should advertise for this
    /// format (Prometheus text exposition v0.0.4).
    pub const CONTENT_TYPE: &'static str = "text/plain; version=0.0.4";

    /// Renders the snapshot as exposition-format text without help text or
    /// windowed series (the registry-free path; see
    /// [`PromExporter::render`]).
    pub fn to_string(snapshot: &Snapshot) -> String {
        Self::render(snapshot, &BTreeMap::new(), &WindowSnapshot::default())
    }

    /// Renders the snapshot with `# HELP` lines (keyed by the *internal*
    /// metric name, pre-sanitization) and windowed gauges interleaved next
    /// to their cumulative series.
    ///
    /// Typical use:
    ///
    /// ```
    /// use dronet_obs::{PromExporter, Registry};
    /// let obs = Registry::new();
    /// obs.describe("frames", "Frames processed since start");
    /// obs.counter("frames").inc();
    /// let text = PromExporter::render(
    ///     &obs.snapshot(),
    ///     &obs.descriptions(),
    ///     &obs.window_snapshot(),
    /// );
    /// assert!(text.starts_with("# HELP frames Frames processed since start\n"));
    /// ```
    pub fn render(
        snapshot: &Snapshot,
        help: &BTreeMap<String, String>,
        windows: &WindowSnapshot,
    ) -> String {
        let mut out = String::new();
        for c in &snapshot.counters {
            let name = sanitize(&c.name);
            write_help(&mut out, help, &c.name, &name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
            if let Some(w) = windows.counter(&c.name) {
                let label = window_label(w.window_ns);
                let _ = writeln!(out, "# TYPE {name}_window_rate gauge");
                let _ = writeln!(
                    out,
                    "{name}_window_rate{{window=\"{label}\"}} {}",
                    format_f64(w.increment_rate_per_sec)
                );
            }
        }
        for g in &snapshot.gauges {
            let name = sanitize(&g.name);
            write_help(&mut out, help, &g.name, &name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", format_f64(g.value));
        }
        for h in &snapshot.histograms {
            let name = sanitize(&h.name);
            write_help(&mut out, help, &h.name, &format!("{name}_seconds"));
            let _ = writeln!(out, "# TYPE {name}_seconds histogram");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                let _ = writeln!(
                    out,
                    "{name}_seconds_bucket{{le=\"{}\"}} {cumulative}",
                    seconds(b.le_ns)
                );
            }
            let _ = writeln!(out, "{name}_seconds_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_seconds_sum {}", seconds(h.sum_ns));
            let _ = writeln!(out, "{name}_seconds_count {}", h.count);
            if let Some(w) = windows.histogram(&h.name) {
                let label = window_label(w.stats.window_ns);
                let _ = writeln!(out, "# TYPE {name}_window_rate gauge");
                let _ = writeln!(
                    out,
                    "{name}_window_rate{{window=\"{label}\"}} {}",
                    format_f64(w.stats.rate_per_sec)
                );
                let _ = writeln!(out, "# TYPE {name}_window_p50_seconds gauge");
                let _ = writeln!(
                    out,
                    "{name}_window_p50_seconds{{window=\"{label}\"}} {}",
                    seconds(w.stats.p50_ns)
                );
                let _ = writeln!(out, "# TYPE {name}_window_p99_seconds gauge");
                let _ = writeln!(
                    out,
                    "{name}_window_p99_seconds{{window=\"{label}\"}} {}",
                    seconds(w.stats.p99_ns)
                );
            }
        }
        out
    }

    /// Writes the exposition text to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_to(snapshot: &Snapshot, writer: &mut dyn io::Write) -> io::Result<()> {
        writer.write_all(Self::to_string(snapshot).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::time::Duration;

    #[test]
    fn exposition_format_is_locked() {
        let r = Registry::new();
        r.counter("pipeline.frames").add(12);
        r.gauge("supervisor.health").set(2.0);
        let h = r.histogram("detect.nms");
        h.record(Duration::from_nanos(100)); // bucket le=128ns
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(200)); // bucket le=256ns
        let text = PromExporter::to_string(&r.snapshot());
        let expected = "\
# TYPE pipeline_frames counter
pipeline_frames 12
# TYPE supervisor_health gauge
supervisor_health 2.0
# TYPE detect_nms_seconds histogram
detect_nms_seconds_bucket{le=\"0.000000128\"} 2
detect_nms_seconds_bucket{le=\"0.000000256\"} 3
detect_nms_seconds_bucket{le=\"+Inf\"} 3
detect_nms_seconds_sum 0.0000004
detect_nms_seconds_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn exposition_format_with_help_and_windows_is_locked() {
        let r = Registry::new();
        r.enable_windows(Duration::from_secs(10), 10);
        r.describe("pipeline.frames", "Frames entering the pipeline");
        r.describe("detect.nms", "NMS stage latency");
        r.counter("pipeline.frames").add(12);
        r.gauge("supervisor.health").set(2.0);
        let h = r.histogram("detect.nms");
        h.record(Duration::from_nanos(100)); // bucket le=128ns
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(200)); // bucket le=256ns
        let text = PromExporter::render(&r.snapshot(), &r.descriptions(), &r.window_snapshot());
        // Windowed percentiles are geometric bucket midpoints clamped to the
        // observed range: p50 = sqrt(100*128) = 113 ns, p99 = sqrt(128*200)
        // = 160 ns. Rates are per-second over the 10 s window.
        let expected = "\
# HELP pipeline_frames Frames entering the pipeline
# TYPE pipeline_frames counter
pipeline_frames 12
# TYPE pipeline_frames_window_rate gauge
pipeline_frames_window_rate{window=\"10s\"} 1.2
# TYPE supervisor_health gauge
supervisor_health 2.0
# HELP detect_nms_seconds NMS stage latency
# TYPE detect_nms_seconds histogram
detect_nms_seconds_bucket{le=\"0.000000128\"} 2
detect_nms_seconds_bucket{le=\"0.000000256\"} 3
detect_nms_seconds_bucket{le=\"+Inf\"} 3
detect_nms_seconds_sum 0.0000004
detect_nms_seconds_count 3
# TYPE detect_nms_window_rate gauge
detect_nms_window_rate{window=\"10s\"} 0.3
# TYPE detect_nms_window_p50_seconds gauge
detect_nms_window_p50_seconds{window=\"10s\"} 0.000000113
# TYPE detect_nms_window_p99_seconds gauge
detect_nms_window_p99_seconds{window=\"10s\"} 0.00000016
";
        assert_eq!(text, expected);
    }

    #[test]
    fn help_text_is_escaped() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn names_are_sanitized_to_legal_alphabet() {
        assert_eq!(sanitize("nn.forward.L00.conv"), "nn_forward_L00_conv");
        assert_eq!(sanitize("weird-name with spaces"), "weird_name_with_spaces");
        assert_eq!(sanitize("0starts_with_digit"), "_starts_with_digit");
        assert_eq!(sanitize(""), "_");
        let legal = |s: &str| {
            s.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
        };
        assert!(legal(&sanitize("üñïçødé.metric")));
    }

    #[test]
    fn buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("h");
        for us in [1u64, 2, 4, 8] {
            h.record(Duration::from_micros(us));
        }
        let text = PromExporter::to_string(&r.snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {counts:?}"
        );
        assert_eq!(*counts.last().unwrap(), 4, "+Inf bucket equals count");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(PromExporter::to_string(&Snapshot::default()), "");
    }
}
