//! Prometheus text exposition format for [`Snapshot`]s.
//!
//! Renders every metric as `# TYPE`-annotated lines a Prometheus scraper
//! (or `promtool check metrics`) accepts: counters and gauges as single
//! samples, histograms as cumulative `_bucket{le="..."}` series plus
//! `_sum` / `_count`. Metric names are sanitized to the legal
//! `[a-zA-Z_:][a-zA-Z0-9_:]*` alphabet (dots and dashes become
//! underscores), and histogram nanoseconds are converted to seconds, the
//! Prometheus base unit.

use crate::export::format_f64;
use crate::Snapshot;
use std::fmt::Write as _;
use std::io;

/// Renders a [`Snapshot`] in the Prometheus text exposition format.
pub struct PromExporter;

/// Maps an internal metric name onto the Prometheus name alphabet.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let legal =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || { i > 0 && ch.is_ascii_digit() };
        out.push(if legal { ch } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Seconds rendering for nanosecond quantities.
fn seconds(ns: u64) -> String {
    format_f64(ns as f64 / 1e9)
}

impl PromExporter {
    /// The `Content-Type` an HTTP endpoint should advertise for this
    /// format (Prometheus text exposition v0.0.4).
    pub const CONTENT_TYPE: &'static str = "text/plain; version=0.0.4";

    /// Renders the snapshot as exposition-format text.
    pub fn to_string(snapshot: &Snapshot) -> String {
        let mut out = String::new();
        for c in &snapshot.counters {
            let name = sanitize(&c.name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {}", c.value);
        }
        for g in &snapshot.gauges {
            let name = sanitize(&g.name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", format_f64(g.value));
        }
        for h in &snapshot.histograms {
            let name = sanitize(&h.name);
            let _ = writeln!(out, "# TYPE {name}_seconds histogram");
            let mut cumulative = 0u64;
            for b in &h.buckets {
                cumulative += b.count;
                let _ = writeln!(
                    out,
                    "{name}_seconds_bucket{{le=\"{}\"}} {cumulative}",
                    seconds(b.le_ns)
                );
            }
            let _ = writeln!(out, "{name}_seconds_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_seconds_sum {}", seconds(h.sum_ns));
            let _ = writeln!(out, "{name}_seconds_count {}", h.count);
        }
        out
    }

    /// Writes the exposition text to `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `writer`.
    pub fn write_to(snapshot: &Snapshot, writer: &mut dyn io::Write) -> io::Result<()> {
        writer.write_all(Self::to_string(snapshot).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::time::Duration;

    #[test]
    fn exposition_format_is_locked() {
        let r = Registry::new();
        r.counter("pipeline.frames").add(12);
        r.gauge("supervisor.health").set(2.0);
        let h = r.histogram("detect.nms");
        h.record(Duration::from_nanos(100)); // bucket le=128ns
        h.record(Duration::from_nanos(100));
        h.record(Duration::from_nanos(200)); // bucket le=256ns
        let text = PromExporter::to_string(&r.snapshot());
        let expected = "\
# TYPE pipeline_frames counter
pipeline_frames 12
# TYPE supervisor_health gauge
supervisor_health 2.0
# TYPE detect_nms_seconds histogram
detect_nms_seconds_bucket{le=\"0.000000128\"} 2
detect_nms_seconds_bucket{le=\"0.000000256\"} 3
detect_nms_seconds_bucket{le=\"+Inf\"} 3
detect_nms_seconds_sum 0.0000004
detect_nms_seconds_count 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn names_are_sanitized_to_legal_alphabet() {
        assert_eq!(sanitize("nn.forward.L00.conv"), "nn_forward_L00_conv");
        assert_eq!(sanitize("weird-name with spaces"), "weird_name_with_spaces");
        assert_eq!(sanitize("0starts_with_digit"), "_starts_with_digit");
        assert_eq!(sanitize(""), "_");
        let legal = |s: &str| {
            s.chars().enumerate().all(|(i, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
            })
        };
        assert!(legal(&sanitize("üñïçødé.metric")));
    }

    #[test]
    fn buckets_are_cumulative() {
        let r = Registry::new();
        let h = r.histogram("h");
        for us in [1u64, 2, 4, 8] {
            h.record(Duration::from_micros(us));
        }
        let text = PromExporter::to_string(&r.snapshot());
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.contains("_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {counts:?}"
        );
        assert_eq!(*counts.last().unwrap(), 4, "+Inf bucket equals count");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(PromExporter::to_string(&Snapshot::default()), "");
    }
}
