//! Instrumented global allocator: process-wide heap telemetry with
//! per-region attribution.
//!
//! PR 4's `ActivationPool` fix for the >32 MiB glibc mmap pathology was
//! found by *manual* diagnosis; this module makes allocator behaviour a
//! first-class observable so the next pathology — and the "zero
//! steady-state allocation" contract of the planned arena executor — can be
//! watched and regression-gated.
//!
//! * [`CountingAlloc`] — a zero-dependency [`GlobalAlloc`] wrapper around
//!   the system allocator. Installing it is opt-in per binary:
//!
//!   ```ignore
//!   #[global_allocator]
//!   static ALLOC: dronet_obs::CountingAlloc = dronet_obs::CountingAlloc::new();
//!   ```
//!
//!   It maintains atomic alloc/dealloc/realloc counts, live and peak bytes,
//!   a power-of-two size-class histogram and a counter for allocations at or
//!   above the 32 MiB glibc dynamic mmap threshold (each of those is a
//!   fresh `mmap`/page-fault storm — exactly the pathology the
//!   `ActivationPool` exists to prevent).
//! * [`AllocScope`] — an RAII region marker that snapshots the *current
//!   thread's* allocation counters at construction and reports the delta,
//!   used by `nn::profile` for per-layer allocs/bytes-per-forward and by
//!   the detector stage spans. Scopes nest: each sees its own deltas plus
//!   those of any inner scope, because the counters are monotonic.
//! * [`stats`] / [`report`] / [`stats_json`] — process-wide totals for the
//!   `/debug/alloc` endpoint and `bench_report`'s steady-state grid.
//!
//! When no `CountingAlloc` is installed every query returns zeros and
//! [`installed`] is `false`, so instrumented call sites can stay
//! unconditional: the disabled cost is one relaxed atomic load.
#![allow(unsafe_code)] // the one place in the workspace that implements GlobalAlloc

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Number of power-of-two size classes tracked by the allocator histogram.
///
/// Class `i` counts allocations with `size <= 2^i` bytes (and larger than
/// `2^(i-1)`); the last class is an overflow bucket for anything bigger.
pub const SIZE_CLASS_COUNT: usize = 33;

/// Allocation size at which glibc's dynamic mmap threshold tops out: requests
/// at or above this come from fresh `mmap` regions that are unmapped on free,
/// so every allocation pays a page-fault storm on first touch.
pub const MMAP_THRESHOLD_BYTES: usize = 32 * 1024 * 1024;

static INSTALLED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);
static LARGE_ALLOCS: AtomicU64 = AtomicU64::new(0);
static SIZE_CLASSES: [AtomicU64; SIZE_CLASS_COUNT] = {
    #[allow(clippy::declare_interior_mutable_const)] // template for array init
    const ZERO: AtomicU64 = AtomicU64::new(0);
    [ZERO; SIZE_CLASS_COUNT]
};

thread_local! {
    // Const-initialised Cells: accessing them never allocates, which makes
    // them safe to touch from inside the global allocator, and u64 has no
    // destructor so no TLS dtor registration happens either.
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Size class index for an allocation of `size` bytes.
pub fn size_class(size: usize) -> usize {
    if size <= 1 {
        return 0;
    }
    let class = (usize::BITS - (size - 1).leading_zeros()) as usize;
    class.min(SIZE_CLASS_COUNT - 1)
}

fn note_alloc(size: usize) {
    INSTALLED.store(true, Ordering::Relaxed);
    let bytes = size as u64;
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(bytes, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    SIZE_CLASSES[size_class(size)].fetch_add(1, Ordering::Relaxed);
    if size >= MMAP_THRESHOLD_BYTES {
        LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
    // try_with: during thread teardown the TLS slot is gone; global totals
    // above still see the event.
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = TL_BYTES.try_with(|c| c.set(c.get() + bytes));
}

fn note_dealloc(size: usize) {
    DEALLOCS.fetch_add(1, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as u64, Ordering::Relaxed);
}

/// Instrumented [`GlobalAlloc`] delegating to [`System`].
///
/// See the [module docs](self) for the install snippet and what it records.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new wrapper (const so it can initialise a `#[global_allocator]`
    /// static).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: delegates every allocation verbatim to `System`, which upholds the
// GlobalAlloc contract; the bookkeeping around the delegation only touches
// atomics and const-initialised thread-locals, neither of which can allocate
// or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            REALLOCS.fetch_add(1, Ordering::Relaxed);
            let old = layout.size() as u64;
            let new = new_size as u64;
            if new > old {
                let grow = new - old;
                TOTAL_BYTES.fetch_add(grow, Ordering::Relaxed);
                let live = LIVE_BYTES.fetch_add(grow, Ordering::Relaxed) + grow;
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
                let _ = TL_BYTES.try_with(|c| c.set(c.get() + grow));
            } else {
                LIVE_BYTES.fetch_sub(old - new, Ordering::Relaxed);
            }
            if new_size >= MMAP_THRESHOLD_BYTES && layout.size() < MMAP_THRESHOLD_BYTES {
                LARGE_ALLOCS.fetch_add(1, Ordering::Relaxed);
            }
            // A realloc that moved is an allocation event for attribution.
            let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
        p
    }
}

/// Whether a [`CountingAlloc`] is installed in this binary (detected on the
/// first counted allocation, which in practice happens before `main`).
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Point-in-time copy of the process-wide allocator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Total successful allocations (`alloc` + `alloc_zeroed`).
    pub allocs: u64,
    /// Total deallocations.
    pub deallocs: u64,
    /// Total reallocations.
    pub reallocs: u64,
    /// Cumulative bytes ever allocated (realloc growth included).
    pub total_bytes: u64,
    /// Bytes currently live.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Allocations at or above [`MMAP_THRESHOLD_BYTES`].
    pub large_allocs: u64,
    /// Allocation counts per power-of-two size class; class `i` holds
    /// allocations of `2^(i-1) < size <= 2^i` bytes.
    pub size_classes: [u64; SIZE_CLASS_COUNT],
}

/// Snapshots the process-wide allocator counters (all zero when no
/// [`CountingAlloc`] is installed).
pub fn stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        total_bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        large_allocs: LARGE_ALLOCS.load(Ordering::Relaxed),
        size_classes: std::array::from_fn(|i| SIZE_CLASSES[i].load(Ordering::Relaxed)),
    }
}

/// Allocation delta observed by an [`AllocScope`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Allocations performed by this thread inside the scope.
    pub allocs: u64,
    /// Bytes allocated by this thread inside the scope (realloc growth
    /// included, frees not subtracted — this measures allocator *pressure*).
    pub bytes: u64,
}

/// RAII marker measuring this thread's allocations over a region.
///
/// Construction snapshots the thread-local counters; [`AllocScope::delta`]
/// reports what accumulated since. Scopes nest naturally — an outer scope's
/// delta includes every inner scope's, because the underlying counters are
/// monotonic. With no [`CountingAlloc`] installed all deltas are zero.
///
/// Only allocations made *by the constructing thread* are attributed; work
/// fanned out to other threads shows up in the process-wide [`stats`]
/// instead.
#[derive(Debug, Clone, Copy)]
pub struct AllocScope {
    start_allocs: u64,
    start_bytes: u64,
}

impl AllocScope {
    /// Opens a scope at the current thread-local counter values.
    pub fn begin() -> Self {
        AllocScope {
            start_allocs: TL_ALLOCS.try_with(Cell::get).unwrap_or(0),
            start_bytes: TL_BYTES.try_with(Cell::get).unwrap_or(0),
        }
    }

    /// Allocations and bytes this thread accumulated since [`begin`](Self::begin).
    pub fn delta(&self) -> AllocDelta {
        AllocDelta {
            allocs: TL_ALLOCS
                .try_with(Cell::get)
                .unwrap_or(0)
                .saturating_sub(self.start_allocs),
            bytes: TL_BYTES
                .try_with(Cell::get)
                .unwrap_or(0)
                .saturating_sub(self.start_bytes),
        }
    }
}

impl Default for AllocScope {
    fn default() -> Self {
        Self::begin()
    }
}

/// Human-readable allocator report for the `/debug/alloc` endpoint.
pub fn report() -> String {
    let s = stats();
    let mut out = String::with_capacity(1024);
    let _ = writeln!(
        out,
        "allocator: {}",
        if installed() {
            "counting"
        } else {
            "system (CountingAlloc not installed)"
        }
    );
    let _ = writeln!(out, "allocs:       {}", s.allocs);
    let _ = writeln!(out, "deallocs:     {}", s.deallocs);
    let _ = writeln!(out, "reallocs:     {}", s.reallocs);
    let _ = writeln!(out, "total_bytes:  {}", s.total_bytes);
    let _ = writeln!(out, "live_bytes:   {}", s.live_bytes);
    let _ = writeln!(out, "peak_bytes:   {}", s.peak_bytes);
    let _ = writeln!(
        out,
        "large_allocs: {} (>= {} MiB mmap threshold)",
        s.large_allocs,
        MMAP_THRESHOLD_BYTES / (1024 * 1024)
    );
    out.push_str("size_classes:\n");
    for (i, &n) in s.size_classes.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let bound = 1u64.checked_shl(i as u32).unwrap_or(u64::MAX);
        let _ = writeln!(out, "  <= {bound:>12} B: {n}");
    }
    out
}

/// Allocator counters as a JSON object (in-tree schema, no serde).
///
/// `installed` is encoded as `0`/`1` — the in-tree [`crate::JsonValue`]
/// reader has no boolean grammar, by convention flags are numbers.
pub fn stats_json() -> String {
    let s = stats();
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"installed\": {}, \"allocs\": {}, \"deallocs\": {}, \"reallocs\": {}, \
         \"total_bytes\": {}, \"live_bytes\": {}, \"peak_bytes\": {}, \"large_allocs\": {}, \
         \"size_classes\": [",
        u8::from(installed()),
        s.allocs,
        s.deallocs,
        s.reallocs,
        s.total_bytes,
        s.live_bytes,
        s.peak_bytes,
        s.large_allocs
    );
    for (i, &n) in s.size_classes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{n}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_class_is_monotone_and_bounded() {
        let mut prev = 0usize;
        for size in [0usize, 1, 2, 3, 4, 1023, 1024, 1025, 1 << 20, usize::MAX] {
            let c = size_class(size);
            assert!(c >= prev, "class not monotone at {size}");
            assert!(c < SIZE_CLASS_COUNT);
            prev = c;
        }
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(2), 1);
        assert_eq!(size_class(1024), 10);
        assert_eq!(size_class(1025), 11);
    }

    #[test]
    fn uninstalled_allocator_reports_zero_deltas() {
        // The unit-test binary does not install CountingAlloc, so scopes and
        // stats must read as inert. (Installed-path behaviour is covered by
        // the `alloc_steadystate` integration suite, which has its own
        // binary with the allocator installed.)
        let scope = AllocScope::begin();
        let _v: Vec<u8> = Vec::with_capacity(4096);
        assert_eq!(scope.delta(), AllocDelta::default());
        assert!(report().contains("allocator:"));
        assert!(stats_json().starts_with("{\"installed\": "));
    }
}
