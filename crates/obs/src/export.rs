//! Snapshot exporters: hand-rolled JSON and CSV writers (no serde — the
//! build environment is offline, and the schema is small and stable).

use crate::Snapshot;
use std::fmt::Write as _;
use std::io;

/// Escapes a metric name for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Formats an `f64` so it round-trips through our parser (always keeps a
/// decimal point or exponent so the value re-parses as a float).
pub(crate) fn format_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; clamp to null-ish sentinel 0.
        "0.0".to_string()
    }
}

/// Writes a [`Snapshot`] as a single JSON document.
///
/// Schema:
///
/// ```json
/// {
///   "counters": [{"name": "...", "value": 1}],
///   "gauges": [{"name": "...", "value": 0.5}],
///   "histograms": [{
///     "name": "...", "count": 2, "sum_ns": 100, "min_ns": 40,
///     "max_ns": 60, "p50_ns": 50, "p90_ns": 60, "p99_ns": 60,
///     "buckets": [{"le_ns": 64, "count": 2}]
///   }]
/// }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonExporter;

impl JsonExporter {
    /// Renders the snapshot as a pretty-printed JSON string.
    pub fn to_string(snapshot: &Snapshot) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": [");
        for (i, c) in snapshot.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": \"");
            escape_json(&c.name, &mut out);
            let _ = write!(out, "\", \"value\": {}}}", c.value);
        }
        out.push_str(if snapshot.counters.is_empty() {
            ""
        } else {
            "\n  "
        });
        out.push_str("],\n  \"gauges\": [");
        for (i, g) in snapshot.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": \"");
            escape_json(&g.name, &mut out);
            let _ = write!(out, "\", \"value\": {}}}", format_f64(g.value));
        }
        out.push_str(if snapshot.gauges.is_empty() {
            ""
        } else {
            "\n  "
        });
        out.push_str("],\n  \"histograms\": [");
        for (i, h) in snapshot.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    {\"name\": \"");
            escape_json(&h.name, &mut out);
            let _ = write!(
                out,
                "\", \"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"buckets\": [",
                h.count, h.sum_ns, h.min_ns, h.max_ns, h.p50_ns, h.p90_ns, h.p99_ns
            );
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{{\"le_ns\": {}, \"count\": {}}}", b.le_ns, b.count);
            }
            out.push_str("]}");
        }
        out.push_str(if snapshot.histograms.is_empty() {
            ""
        } else {
            "\n  "
        });
        out.push_str("]\n}\n");
        out
    }

    /// Writes the snapshot as JSON to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write(snapshot: &Snapshot, w: &mut impl io::Write) -> io::Result<()> {
        w.write_all(Self::to_string(snapshot).as_bytes())
    }
}

/// Escapes a CSV field (quotes fields containing separators or quotes).
fn escape_csv(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Writes a [`Snapshot`] as a flat CSV table, one metric per row.
///
/// Columns: `kind,name,value,count,sum_ns,min_ns,max_ns,p50_ns,p90_ns,p99_ns`.
/// Counter/gauge rows fill `value` and leave histogram columns empty;
/// histogram rows do the opposite.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvExporter;

impl CsvExporter {
    /// Renders the snapshot as a CSV string.
    pub fn to_string(snapshot: &Snapshot) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("kind,name,value,count,sum_ns,min_ns,max_ns,p50_ns,p90_ns,p99_ns\n");
        for c in &snapshot.counters {
            let _ = writeln!(out, "counter,{},{},,,,,,,", escape_csv(&c.name), c.value);
        }
        for g in &snapshot.gauges {
            let _ = writeln!(
                out,
                "gauge,{},{},,,,,,,",
                escape_csv(&g.name),
                format_f64(g.value)
            );
        }
        for h in &snapshot.histograms {
            let _ = writeln!(
                out,
                "histogram,{},,{},{},{},{},{},{},{}",
                escape_csv(&h.name),
                h.count,
                h.sum_ns,
                h.min_ns,
                h.max_ns,
                h.p50_ns,
                h.p90_ns,
                h.p99_ns
            );
        }
        out
    }

    /// Writes the snapshot as CSV to `w`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write(snapshot: &Snapshot, w: &mut impl io::Write) -> io::Result<()> {
        w.write_all(Self::to_string(snapshot).as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;
    use std::time::Duration;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("frames").add(12);
        r.gauge("queue_depth").set(1.5);
        r.histogram("stage.forward")
            .record(Duration::from_micros(800));
        r.histogram("stage.forward")
            .record(Duration::from_micros(950));
        r.snapshot()
    }

    #[test]
    fn json_contains_all_metrics() {
        let json = JsonExporter::to_string(&sample());
        for needle in [
            "frames",
            "queue_depth",
            "stage.forward",
            "p99_ns",
            "buckets",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn csv_has_one_row_per_metric() {
        let csv = CsvExporter::to_string(&sample());
        assert_eq!(csv.lines().count(), 4, "header + 3 metrics:\n{csv}");
        assert!(csv.starts_with("kind,name,"));
        assert!(csv.contains("counter,frames,12"));
        assert!(csv.contains("histogram,stage.forward"));
    }

    #[test]
    fn csv_escapes_awkward_names() {
        let r = Registry::new();
        r.counter("odd,\"name\"").inc();
        let csv = CsvExporter::to_string(&r.snapshot());
        assert!(csv.contains("\"odd,\"\"name\"\"\""));
    }

    #[test]
    fn empty_snapshot_exports_cleanly() {
        let snap = Snapshot::default();
        let json = JsonExporter::to_string(&snap);
        assert!(json.contains("\"counters\": []"));
        assert_eq!(CsvExporter::to_string(&snap).lines().count(), 1);
    }
}
