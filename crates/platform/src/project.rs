use crate::Platform;
use dronet_metrics::Fps;
use dronet_nn::cost::{network_cost, CostReport, LayerCost};
use dronet_nn::Network;
use std::time::Duration;

/// Projected execution time of one layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTime {
    /// Time spent on arithmetic (after cache-spill derating).
    pub compute_s: f64,
    /// Time the memory system needs for the layer's traffic.
    pub memory_s: f64,
    /// Whether the layer's weights overflow the last-level cache.
    pub cache_spill: bool,
}

impl LayerTime {
    /// The layer's projected duration: roofline max of compute and memory,
    /// plus nothing (per-layer overhead is added at network level).
    pub fn seconds(&self) -> f64 {
        self.compute_s.max(self.memory_s)
    }

    /// Whether the layer is memory-bound under the model.
    pub fn memory_bound(&self) -> bool {
        self.memory_s > self.compute_s
    }
}

/// Projected performance of a network on a platform.
#[derive(Debug, Clone, PartialEq)]
pub struct Projection {
    /// Per-layer timing, in execution order.
    pub layers: Vec<LayerTime>,
    /// Total per-frame latency including per-layer overheads.
    pub latency: Duration,
    /// Projected frame rate.
    pub fps: Fps,
}

impl Projection {
    /// Fraction of the total latency spent in cache-spilling layers.
    pub fn spill_fraction(&self) -> f64 {
        let total: f64 = self.layers.iter().map(LayerTime::seconds).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let spill: f64 = self
            .layers
            .iter()
            .filter(|l| l.cache_spill)
            .map(LayerTime::seconds)
            .sum();
        spill / total
    }
}

impl Platform {
    /// Projects one layer's execution time from its cost.
    pub fn layer_time(&self, cost: &LayerCost) -> LayerTime {
        let cache_spill = cost.weight_bytes > self.cache_bytes;
        let gflops = if cache_spill {
            self.effective_gflops * self.cache_spill_factor
        } else {
            self.effective_gflops
        };
        LayerTime {
            compute_s: cost.flops / (gflops * 1e9),
            memory_s: cost.total_bytes() / (self.mem_bw_gbs * 1e9),
            cache_spill,
        }
    }

    /// Projects a whole cost report.
    pub fn project_cost(&self, cost: &CostReport) -> Projection {
        let layers: Vec<LayerTime> = cost.layers.iter().map(|c| self.layer_time(c)).collect();
        let total: f64 = layers.iter().map(LayerTime::seconds).sum::<f64>()
            + self.per_layer_overhead_s * layers.len() as f64;
        Projection {
            layers,
            latency: Duration::from_secs_f64(total),
            fps: Fps(if total > 0.0 {
                1.0 / total
            } else {
                f64::INFINITY
            }),
        }
    }

    /// Projects a network at its configured input size.
    pub fn project(&self, net: &Network) -> Projection {
        self.project_cost(&network_cost(net))
    }

    /// Effective GFLOP/s implied by a measured execution (`cost` work done
    /// in `elapsed`). Useful for calibrating a host measurement against
    /// the model.
    pub fn implied_gflops(cost: &CostReport, elapsed: Duration) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs > 0.0 {
            cost.total_flops() / secs / 1e9
        } else {
            f64::INFINITY
        }
    }

    /// Rescales a host-measured latency to this platform by the ratio of
    /// effective compute rates — the standard cross-platform projection
    /// when only one machine is physically available.
    pub fn scale_from_measurement(
        &self,
        cost: &CostReport,
        host_elapsed: Duration,
        host_effective_gflops: f64,
    ) -> Duration {
        let measured = host_elapsed.as_secs_f64();
        // Split host time into per-layer shares by FLOPs, re-derate each
        // share for this platform's cache behaviour, add overheads.
        let total_flops = cost.total_flops().max(1.0);
        let mut projected = 0.0f64;
        for layer in &cost.layers {
            let share = measured * (layer.flops / total_flops);
            let spill = layer.weight_bytes > self.cache_bytes;
            let gflops = if spill {
                self.effective_gflops * self.cache_spill_factor
            } else {
                self.effective_gflops
            };
            projected += share * (host_effective_gflops / gflops);
        }
        projected += self.per_layer_overhead_s * cost.layers.len() as f64;
        Duration::from_secs_f64(projected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlatformId;
    use dronet_core::{zoo, ModelId};

    fn project(id: PlatformId, model: ModelId, input: usize) -> Projection {
        let net = zoo::build(model, input).unwrap();
        Platform::preset(id).project(&net)
    }

    /// The headline UAV deployment anchors from paper Section IV-B.
    #[test]
    fn odroid_anchors_match_paper() {
        let dronet = project(PlatformId::OdroidXu4, ModelId::DroNet, 512);
        assert!(
            dronet.fps.0 > 6.0 && dronet.fps.0 < 12.0,
            "DroNet-512 on Odroid projected {} (paper: 8-10 FPS)",
            dronet.fps
        );
        let voc = project(PlatformId::OdroidXu4, ModelId::TinyYoloVoc, 512);
        assert!(
            voc.fps.0 > 0.05 && voc.fps.0 < 0.25,
            "TinyYoloVoc on Odroid projected {} (paper: ~0.1 FPS)",
            voc.fps
        );
        // "DroNet was 40x faster than TinyYoloVoc on Odroid" — the paper's
        // own numbers (8-10 vs 0.1) imply 40-100x; assert that envelope.
        let ratio = dronet.fps.0 / voc.fps.0;
        assert!((35.0..=110.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn rpi_anchor_matches_paper() {
        let dronet = project(PlatformId::RaspberryPi3, ModelId::DroNet, 512);
        assert!(
            dronet.fps.0 > 4.0 && dronet.fps.0 < 8.0,
            "DroNet-512 on RPi3 projected {} (paper: 5-6 FPS)",
            dronet.fps
        );
    }

    #[test]
    fn i5_anchors_match_paper() {
        // SmallYoloV3 was the fastest model at ~23 FPS around 384-416.
        let small = project(PlatformId::IntelI5_2520M, ModelId::SmallYoloV3, 384);
        assert!(
            small.fps.0 > 17.0 && small.fps.0 < 29.0,
            "SmallYoloV3-384 on i5 projected {} (paper: 23 FPS)",
            small.fps
        );
        // DroNet ~30x over TinyYoloVoc at the same input size.
        let dronet = project(PlatformId::IntelI5_2520M, ModelId::DroNet, 384);
        let voc = project(PlatformId::IntelI5_2520M, ModelId::TinyYoloVoc, 384);
        let r = dronet.fps.0 / voc.fps.0;
        assert!((20.0..=45.0).contains(&r), "DroNet/TinyYoloVoc on i5 = {r}");
        // TinyYoloNet ~10x over TinyYoloVoc.
        let tnet = project(PlatformId::IntelI5_2520M, ModelId::TinyYoloNet, 384);
        let r = tnet.fps.0 / voc.fps.0;
        assert!(
            (6.0..=15.0).contains(&r),
            "TinyYoloNet/TinyYoloVoc on i5 = {r}"
        );
        // Paper: DroNet peaks at ~18 FPS (the fast end of its 5-18 range).
        assert!(
            dronet.fps.0 > 13.0 && dronet.fps.0 < 24.0,
            "DroNet-384 on i5 projected {}",
            dronet.fps
        );
    }

    #[test]
    fn fps_ordering_matches_paper_everywhere() {
        for id in PlatformId::EVALUATION {
            let small = project(id, ModelId::SmallYoloV3, 416).fps.0;
            let dronet = project(id, ModelId::DroNet, 416).fps.0;
            let tnet = project(id, ModelId::TinyYoloNet, 416).fps.0;
            let voc = project(id, ModelId::TinyYoloVoc, 416).fps.0;
            assert!(
                small > dronet && dronet > tnet && tnet > voc,
                "{id}: {small} {dronet} {tnet} {voc}"
            );
        }
    }

    #[test]
    fn bigger_input_is_slower() {
        for &size in &[352usize, 416, 512, 608] {
            let _ = size; // sweep sanity below
        }
        let f352 = project(PlatformId::OdroidXu4, ModelId::DroNet, 352).fps.0;
        let f608 = project(PlatformId::OdroidXu4, ModelId::DroNet, 608).fps.0;
        assert!(f352 > f608);
    }

    #[test]
    fn tiny_yolo_voc_spills_cache_dronet_does_not() {
        let voc = project(PlatformId::OdroidXu4, ModelId::TinyYoloVoc, 416);
        assert!(voc.spill_fraction() > 0.5, "spill {}", voc.spill_fraction());
        let dronet = project(PlatformId::OdroidXu4, ModelId::DroNet, 416);
        assert_eq!(dronet.spill_fraction(), 0.0);
    }

    #[test]
    fn gpu_is_orders_of_magnitude_faster() {
        let gpu = project(PlatformId::TitanXp, ModelId::TinyYoloVoc, 416);
        let cpu = project(PlatformId::IntelI5_2520M, ModelId::TinyYoloVoc, 416);
        assert!(gpu.fps.0 > 50.0 * cpu.fps.0);
    }

    #[test]
    fn maxpool_layers_are_memory_bound() {
        let net = zoo::build(ModelId::DroNet, 512).unwrap();
        let platform = Platform::preset(PlatformId::OdroidXu4);
        let projection = platform.project(&net);
        // Layer 1 is the first maxpool in the DroNet cfg.
        let pool_time = &projection.layers[1];
        assert!(pool_time.memory_bound());
        // Layer 0 (the first conv) is compute-bound.
        assert!(!projection.layers[0].memory_bound());
    }

    #[test]
    fn implied_gflops_and_scaling_roundtrip() {
        let net = zoo::build(ModelId::DroNet, 416).unwrap();
        let cost = network_cost(&net);
        let platform = Platform::preset(PlatformId::OdroidXu4);
        // Pretend a host ran the model at exactly 10 GFLOP/s.
        let host_time = Duration::from_secs_f64(cost.total_flops() / 10e9);
        assert!((Platform::implied_gflops(&cost, host_time) - 10.0).abs() < 1e-6);
        // Scaling that measurement to the Odroid should land near the
        // analytic projection (same model, no spills for DroNet).
        let scaled = platform.scale_from_measurement(&cost, host_time, 10.0);
        let analytic = platform.project_cost(&cost).latency;
        let ratio = scaled.as_secs_f64() / analytic.as_secs_f64();
        assert!((0.8..=1.25).contains(&ratio), "ratio {ratio}");
    }
}
