//! # dronet-platform
//!
//! Analytic performance models of the embedded platforms the DroNet paper
//! evaluates on — the substitution for hardware we do not have (see
//! `DESIGN.md` §4):
//!
//! * Intel i5-2520M laptop CPU (the paper's design-space exploration
//!   platform),
//! * Odroid-XU4 (Samsung Exynos 5422) — the UAV companion computer of
//!   Fig. 5,
//! * Raspberry Pi 3 Model B,
//! * NVIDIA Titan Xp (the training GPU, for context).
//!
//! The model is a **roofline with a cache-capacity term**: each layer runs
//! at `min(effective_compute, bandwidth)` speed, where effective compute
//! collapses by a platform-specific factor when the layer's weights
//! overflow the last-level cache (this is what makes Tiny-YOLO-VOC's
//! 1024-filter, 37 MB-weight layers catastrophically slow on the Odroid —
//! 0.1 FPS in the paper — while the cache-resident DroNet reaches 8–10
//! FPS). A fixed per-layer dispatch overhead models Darknet's layer loop.
//!
//! Constants are calibrated once against the paper's anchor numbers (see
//! `spec.rs`) and then *every* relative result — model ratios, input-size
//! scaling, platform ordering — emerges from the real per-layer FLOP/byte
//! counts of our networks.
//!
//! # Example
//!
//! ```
//! use dronet_platform::{Platform, PlatformId};
//!
//! # fn main() -> Result<(), dronet_nn::NnError> {
//! let net = dronet_core::zoo::build(dronet_core::ModelId::DroNet, 512)?;
//! let odroid = Platform::preset(PlatformId::OdroidXu4);
//! let projection = odroid.project(&net);
//! // The paper reports 8-10 FPS for DroNet-512 on the Odroid.
//! assert!(projection.fps.0 > 5.0 && projection.fps.0 < 13.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod project;
mod spec;

pub use project::{LayerTime, Projection};
pub use spec::{Platform, PlatformId};
