use std::fmt;

/// Identifier of a modelled platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Intel i5-2520M, 2C/4T Sandy Bridge @ 2.5-3.2 GHz — the paper's
    /// "CPU platform" for the Section IV-A design-space exploration.
    IntelI5_2520M,
    /// Odroid-XU4: Samsung Exynos 5422, 4x Cortex-A15 @ 2.0 GHz +
    /// 4x Cortex-A7, 2 GB LPDDR3 — the on-UAV board of Fig. 5.
    OdroidXu4,
    /// Raspberry Pi 3 Model B: 4x Cortex-A53 @ 1.2 GHz, 1 GB LPDDR2.
    RaspberryPi3,
    /// NVIDIA Titan Xp — the paper's training GPU (context only).
    TitanXp,
}

impl PlatformId {
    /// The three deployment platforms the paper evaluates inference on.
    pub const EVALUATION: [PlatformId; 3] = [
        PlatformId::IntelI5_2520M,
        PlatformId::OdroidXu4,
        PlatformId::RaspberryPi3,
    ];

    /// Human-readable platform name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::IntelI5_2520M => "Intel i5-2520M",
            PlatformId::OdroidXu4 => "Odroid-XU4",
            PlatformId::RaspberryPi3 => "Raspberry Pi 3",
            PlatformId::TitanXp => "NVIDIA Titan Xp",
        }
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An analytic platform performance model.
///
/// See the crate docs for the model structure. `effective_gflops` is the
/// sustained single-precision throughput of a Darknet-style im2col+GEMM
/// CPU implementation (NOT the hardware peak — Darknet's portable C loops
/// reach only a few percent of peak, which is exactly why the paper's
/// absolute FPS numbers are single digits).
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Which platform this models.
    pub id: PlatformId,
    /// Sustained compute throughput for cache-resident GEMMs, in GFLOP/s.
    pub effective_gflops: f64,
    /// Multiplier on `effective_gflops` for layers whose weights overflow
    /// the last-level cache.
    pub cache_spill_factor: f64,
    /// Last-level cache capacity in bytes.
    pub cache_bytes: f64,
    /// Sustained memory bandwidth in GB/s.
    pub mem_bw_gbs: f64,
    /// Fixed dispatch/synchronisation overhead per layer, in seconds.
    pub per_layer_overhead_s: f64,
    /// Hardware peak single-precision throughput in GFLOP/s (for
    /// reporting efficiency, not used by the projection).
    pub peak_gflops: f64,
}

impl Platform {
    /// The calibrated preset for a platform.
    ///
    /// Calibration anchors (paper Section IV):
    /// * i5-2520M: SmallYoloV3 ≈ 23 FPS @ 384–416, DroNet ≈ 30× and
    ///   TinyYoloNet ≈ 10× faster than TinyYoloVoc,
    /// * Odroid-XU4: DroNet-512 ≈ 8–10 FPS, TinyYoloVoc ≈ 0.1 FPS,
    /// * Raspberry Pi 3: DroNet-512 ≈ 5–6 FPS.
    pub fn preset(id: PlatformId) -> Self {
        match id {
            PlatformId::IntelI5_2520M => Platform {
                id,
                // 2 cores x 3.0 GHz x 16 SP FLOPs/cycle = 96 GFLOP/s peak;
                // Darknet's portable GEMM sustains ~6%.
                effective_gflops: 6.0,
                cache_spill_factor: 0.5,
                cache_bytes: 3.0 * 1024.0 * 1024.0,
                mem_bw_gbs: 8.0,
                per_layer_overhead_s: 1.5e-3,
                peak_gflops: 96.0,
            },
            PlatformId::OdroidXu4 => Platform {
                id,
                // 4x A15 @ 2 GHz x 8 SP FLOPs/cycle = 64 GFLOP/s peak; the
                // paper reports only ~50% core utilisation under Darknet.
                effective_gflops: 4.3,
                cache_spill_factor: 0.25,
                cache_bytes: 2.0 * 1024.0 * 1024.0,
                mem_bw_gbs: 2.5,
                per_layer_overhead_s: 1.5e-3,
                peak_gflops: 64.0,
            },
            PlatformId::RaspberryPi3 => Platform {
                id,
                // 4x A53 @ 1.2 GHz x 8 SP FLOPs/cycle = 38.4 GFLOP/s peak.
                effective_gflops: 2.9,
                cache_spill_factor: 0.25,
                cache_bytes: 512.0 * 1024.0,
                mem_bw_gbs: 1.8,
                per_layer_overhead_s: 3.0e-3,
                peak_gflops: 38.4,
            },
            PlatformId::TitanXp => Platform {
                id,
                // 12.15 TFLOP/s peak; cuDNN-era stacks sustain ~30% on
                // these layer shapes.
                effective_gflops: 3600.0,
                cache_spill_factor: 1.0,
                cache_bytes: 3.0 * 1024.0 * 1024.0,
                mem_bw_gbs: 400.0,
                per_layer_overhead_s: 5.0e-5,
                peak_gflops: 12_150.0,
            },
        }
    }

    /// Fraction of hardware peak the model assumes Darknet sustains.
    pub fn efficiency(&self) -> f64 {
        self.effective_gflops / self.peak_gflops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_internally_consistent() {
        for id in PlatformId::EVALUATION {
            let p = Platform::preset(id);
            assert_eq!(p.id, id);
            assert!(p.effective_gflops > 0.0);
            assert!(p.effective_gflops < p.peak_gflops, "{id}");
            assert!(p.cache_spill_factor > 0.0 && p.cache_spill_factor <= 1.0);
            assert!(p.mem_bw_gbs > 0.0);
            assert!(p.efficiency() < 0.2, "{id} efficiency unrealistically high");
        }
    }

    #[test]
    fn platform_ordering_matches_hardware_class() {
        let i5 = Platform::preset(PlatformId::IntelI5_2520M);
        let odroid = Platform::preset(PlatformId::OdroidXu4);
        let rpi = Platform::preset(PlatformId::RaspberryPi3);
        let gpu = Platform::preset(PlatformId::TitanXp);
        assert!(i5.effective_gflops > odroid.effective_gflops);
        assert!(odroid.effective_gflops > rpi.effective_gflops);
        assert!(gpu.effective_gflops > 100.0 * i5.effective_gflops);
    }

    #[test]
    fn names_and_display() {
        assert_eq!(PlatformId::OdroidXu4.to_string(), "Odroid-XU4");
        assert_eq!(PlatformId::EVALUATION.len(), 3);
    }
}
