//! Open-loop load generator for the detection server.
//!
//! "Heavy traffic" is a claim; this module is the instrument that
//! measures it. Unlike a closed-loop client (send → wait → send), the
//! generator draws a *schedule* of intended send times from a seeded
//! Poisson process and sticks to it: a slow server does not slow the
//! arrival rate down, it builds a backlog — exactly what real traffic
//! does. Latency is **coordinated-omission corrected**: every sample is
//! measured from the *intended* send time on the schedule, not from when
//! the socket write finally happened, so queueing delay the server caused
//! is charged to the server.
//!
//! Determinism: the schedule comes from the same SplitMix64 generator
//! ([`ChaosRng`]) the chaos harness uses, so a seed fully reproduces the
//! arrival process — `BENCH_PR8.json` rows are replayable, and the
//! integration tests assert same-seed schedules are identical.
//!
//! The wire protocol is plain HTTP/1.1 keep-alive with pipelining:
//! requests go out on schedule even while earlier responses are pending,
//! and responses are matched FIFO using the chaos harness's incremental
//! [`parse_one_response`] framing.

use dronet_data::{ppm, Image};
use dronet_serve::chaos::{detect_request, parse_one_response, ChaosRng};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// A small fixed PPM corpus for `POST /detect` bodies: same dimensions,
/// different pixel content, so batches are realistic but the offered
/// bytes are fully deterministic.
pub fn frame_corpus(size: usize) -> Vec<Vec<u8>> {
    [[0.4, 0.5, 0.6], [0.8, 0.3, 0.2], [0.1, 0.7, 0.4]]
        .iter()
        .map(|rgb| {
            let img = Image::new(size, size, *rgb);
            let mut bytes = Vec::new();
            ppm::write(&img, &mut bytes).expect("encode frame");
            bytes
        })
        .collect()
}

/// One segment of the arrival process: a Poisson stream at `rate_hz` for
/// `secs` seconds. Chaining phases models bursts (e.g. steady 50 Hz, then
/// a 10× spike, then steady again).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Mean arrival rate, requests per second.
    pub rate_hz: f64,
    /// Phase duration in seconds.
    pub secs: f64,
}

impl Phase {
    /// A steady phase.
    pub fn new(rate_hz: f64, secs: f64) -> Phase {
        Phase { rate_hz, secs }
    }
}

/// The full, deterministic arrival schedule: intended send offsets in
/// nanoseconds from the run's start, ascending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalPlan {
    /// Intended send times, nanoseconds from t=0, sorted ascending.
    pub offsets_ns: Vec<u64>,
}

/// `U(0,1)` from the top 53 bits, offset half a ulp so it is never 0 (a
/// zero would make the exponential gap infinite).
fn unit(rng: &mut ChaosRng) -> f64 {
    ((rng.next_u64() >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

impl ArrivalPlan {
    /// Draws the schedule for `phases` from `seed`. Within each phase,
    /// inter-arrival gaps are exponential with mean `1/rate_hz` — a
    /// Poisson process, so genuine bursts and lulls occur even at a
    /// "steady" rate. Phases with a non-positive rate or duration
    /// contribute dead air (no arrivals) but still advance time.
    pub fn generate(seed: u64, phases: &[Phase]) -> ArrivalPlan {
        let mut rng = ChaosRng::new(seed);
        let mut offsets_ns = Vec::new();
        let mut phase_start = 0.0f64;
        for phase in phases {
            let secs = phase.secs.max(0.0);
            if phase.rate_hz > 0.0 {
                let mut t = -unit(&mut rng).ln() / phase.rate_hz;
                while t < secs {
                    offsets_ns.push(((phase_start + t) * 1e9) as u64);
                    t += -unit(&mut rng).ln() / phase.rate_hz;
                }
            }
            phase_start += secs;
        }
        ArrivalPlan { offsets_ns }
    }

    /// Total scheduled duration of `phases`, seconds.
    pub fn duration_secs(phases: &[Phase]) -> f64 {
        phases.iter().map(|p| p.secs.max(0.0)).sum()
    }
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Schedule seed (SplitMix64); same seed → identical arrival times.
    pub seed: u64,
    /// Concurrent keep-alive connections; arrivals are dealt round-robin.
    pub connections: usize,
    /// The arrival process, phase by phase.
    pub phases: Vec<Phase>,
    /// PPM frame corpus for `POST /detect` bodies; request `i` uses frame
    /// `i % frames.len()`.
    pub frames: Vec<Vec<u8>>,
    /// After the last scheduled send, how long to wait for stragglers
    /// before counting the remainder as timeouts.
    pub drain_timeout: Duration,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            seed: 42,
            connections: 32,
            phases: vec![Phase::new(50.0, 2.0)],
            frames: Vec::new(),
            drain_timeout: Duration::from_secs(10),
        }
    }
}

/// What happened to the offered load.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Scheduled arrivals (every one was sent or accounted for).
    pub offered: u64,
    /// Requests that got a complete HTTP response.
    pub completed: u64,
    /// Completed with 2xx.
    pub ok: u64,
    /// Completed with 503 — load shed, the healthy overload outcome.
    pub shed: u64,
    /// Completed with any other non-2xx status.
    pub errors: u64,
    /// Requests still pending when the drain deadline fired.
    pub timeouts: u64,
    /// Requests lost to clean connection failures: EOF between responses,
    /// failed writes, or an unparseable stream.
    pub dropped: u64,
    /// Requests lost to a *mid-stream* connection reset: a hard read error
    /// (ECONNRESET and friends) or an EOF that tore a partially received
    /// response. Replica kills produce exactly these; keeping them apart
    /// from `dropped` lets the grids tell a killed backend from an
    /// orderly keep-alive reap or parse bug.
    pub reset: u64,
    /// Reconnections performed across all connections.
    pub reconnects: u64,
    /// Wall-clock run duration, seconds.
    pub duration_secs: f64,
    /// Coordinated-omission-corrected latencies (completion − *intended*
    /// send time) for every completed request, sorted ascending, ns.
    pub latencies_ns: Vec<u64>,
    /// Same, restricted to 2xx responses (the "admitted" latency curve).
    pub ok_latencies_ns: Vec<u64>,
}

/// `q`-quantile of a sorted sample set: `sorted[ceil(q·n) − 1]`, the same
/// rank convention as `dronet_obs`' histograms — but exact, since the
/// generator keeps every sample.
pub fn quantile_sorted(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

impl LoadgenReport {
    /// Exact `q`-quantile of admitted (2xx) latency, nanoseconds.
    pub fn ok_quantile_ns(&self, q: f64) -> u64 {
        quantile_sorted(&self.ok_latencies_ns, q)
    }

    /// Successful responses per second of wall-clock time.
    pub fn goodput(&self) -> f64 {
        if self.duration_secs <= 0.0 {
            return 0.0;
        }
        self.ok as f64 / self.duration_secs
    }

    /// The report as a JSON object. No boolean literals — the in-tree
    /// parser accepts only numbers/strings, so flags are 0/1.
    pub fn to_json(&self) -> String {
        let ms = |ns: u64| ns as f64 / 1e6;
        format!(
            concat!(
                "{{\"offered\": {}, \"completed\": {}, \"ok\": {}, \"shed\": {}, ",
                "\"errors\": {}, \"timeouts\": {}, \"dropped\": {}, \"reset\": {}, ",
                "\"reconnects\": {}, ",
                "\"duration_secs\": {:.3}, \"goodput_rps\": {:.2}, ",
                "\"ok_p50_ms\": {:.3}, \"ok_p99_ms\": {:.3}, \"ok_p999_ms\": {:.3}}}"
            ),
            self.offered,
            self.completed,
            self.ok,
            self.shed,
            self.errors,
            self.timeouts,
            self.dropped,
            self.reset,
            self.reconnects,
            self.duration_secs,
            self.goodput(),
            ms(self.ok_quantile_ns(0.50)),
            ms(self.ok_quantile_ns(0.99)),
            ms(self.ok_quantile_ns(0.999)),
        )
    }
}

/// Per-connection tallies, merged into the report at the end.
#[derive(Debug, Default)]
struct ConnStats {
    completed: Vec<(u16, u64)>,
    timeouts: u64,
    dropped: u64,
    reset: u64,
    reconnects: u64,
}

/// Runs the configured load against `addr` and reports what happened.
///
/// Every scheduled arrival is accounted for exactly once:
/// `completed + timeouts + dropped + reset == offered`.
///
/// # Panics
///
/// Panics when `frames` is empty or no phase produces any arrival — a
/// load test that offers nothing is a harness bug, not a result.
pub fn run(addr: SocketAddr, cfg: &LoadgenConfig) -> LoadgenReport {
    assert!(!cfg.frames.is_empty(), "loadgen needs at least one frame");
    let plan = ArrivalPlan::generate(cfg.seed, &cfg.phases);
    assert!(
        !plan.offsets_ns.is_empty(),
        "arrival plan is empty; raise rate or duration"
    );
    run_plan(addr, cfg, &plan)
}

/// [`run`] with a pre-generated plan (lets tests reuse one schedule).
pub fn run_plan(addr: SocketAddr, cfg: &LoadgenConfig, plan: &ArrivalPlan) -> LoadgenReport {
    let connections = cfg.connections.max(1);
    // Round-robin deal: connection c sends arrivals c, c+N, c+2N, …
    // Each sub-schedule stays sorted, and frame choice follows the global
    // arrival index so the corpus mix is identical at any connection count.
    let mut schedules: Vec<Vec<(u64, usize)>> = vec![Vec::new(); connections];
    for (i, &off) in plan.offsets_ns.iter().enumerate() {
        schedules[i % connections].push((off, i % cfg.frames.len()));
    }
    let requests: Vec<Vec<u8>> = cfg
        .frames
        .iter()
        .map(|f| detect_request(f, false))
        .collect();

    // Anchor slightly in the future so offset 0 is not already late.
    let anchor = Instant::now() + Duration::from_millis(50);
    let started = Instant::now();
    let stats: Vec<ConnStats> = thread::scope(|scope| {
        let handles: Vec<_> = schedules
            .iter()
            .map(|schedule| {
                let requests = &requests;
                scope.spawn(move || {
                    drive_connection(addr, requests, anchor, schedule, cfg.drain_timeout)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen connection thread panicked"))
            .collect()
    });
    let duration_secs = started.elapsed().as_secs_f64();

    let mut report = LoadgenReport {
        offered: plan.offsets_ns.len() as u64,
        duration_secs,
        ..LoadgenReport::default()
    };
    for s in stats {
        report.timeouts += s.timeouts;
        report.dropped += s.dropped;
        report.reset += s.reset;
        report.reconnects += s.reconnects;
        for (status, latency_ns) in s.completed {
            report.completed += 1;
            report.latencies_ns.push(latency_ns);
            match status {
                200..=299 => {
                    report.ok += 1;
                    report.ok_latencies_ns.push(latency_ns);
                }
                503 => report.shed += 1,
                _ => report.errors += 1,
            }
        }
    }
    report.latencies_ns.sort_unstable();
    report.ok_latencies_ns.sort_unstable();
    debug_assert_eq!(
        report.completed + report.timeouts + report.dropped + report.reset,
        report.offered
    );
    report
}

fn connect(addr: SocketAddr) -> Option<TcpStream> {
    for _ in 0..3 {
        if let Ok(stream) = TcpStream::connect(addr) {
            let _ = stream.set_nodelay(true);
            return Some(stream);
        }
        thread::sleep(Duration::from_millis(10));
    }
    None
}

fn now_ns(anchor: Instant) -> u64 {
    u64::try_from(Instant::now().saturating_duration_since(anchor).as_nanos()).unwrap_or(u64::MAX)
}

/// Drives one keep-alive connection through its sub-schedule: send on
/// time (open loop — pending responses never delay a send), match
/// responses FIFO, reconnect on EOF/reset with pending requests counted
/// as dropped.
fn drive_connection(
    addr: SocketAddr,
    requests: &[Vec<u8>],
    anchor: Instant,
    schedule: &[(u64, usize)],
    drain_timeout: Duration,
) -> ConnStats {
    let mut stats = ConnStats::default();
    if schedule.is_empty() {
        return stats;
    }
    let mut stream = match connect(addr) {
        Some(s) => s,
        None => {
            stats.dropped = schedule.len() as u64;
            return stats;
        }
    };
    let mut next = 0usize;
    // Intended offsets of requests written but not yet answered, FIFO.
    let mut pending: VecDeque<u64> = VecDeque::new();
    let mut buf: Vec<u8> = Vec::with_capacity(16 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    let mut drain_deadline: Option<Instant> = None;

    loop {
        if next >= schedule.len() && pending.is_empty() {
            return stats;
        }
        if next >= schedule.len() {
            let deadline = *drain_deadline.get_or_insert_with(|| Instant::now() + drain_timeout);
            if Instant::now() >= deadline {
                stats.timeouts += pending.len() as u64;
                return stats;
            }
        }

        // Send everything that is due — open loop: lateness of earlier
        // responses must not throttle the offered rate.
        while next < schedule.len() && now_ns(anchor) >= schedule[next].0 {
            let (intended, frame_idx) = schedule[next];
            let mut wrote = stream.write_all(&requests[frame_idx]).is_ok();
            if !wrote {
                // The socket died with requests in flight: those are lost.
                stats.dropped += pending.len() as u64;
                pending.clear();
                buf.clear();
                if let Some(s) = connect(addr) {
                    stream = s;
                    stats.reconnects += 1;
                    wrote = stream.write_all(&requests[frame_idx]).is_ok();
                }
            }
            if wrote {
                pending.push_back(intended);
            } else {
                stats.dropped += 1;
            }
            next += 1;
        }

        // Wait for the earlier of "next send due" and a short poll slice,
        // reading whatever responses have landed.
        let wait = if next < schedule.len() {
            Duration::from_nanos(schedule[next].0.saturating_sub(now_ns(anchor)))
                .min(Duration::from_millis(5))
        } else {
            Duration::from_millis(5)
        };
        if pending.is_empty() {
            // Nothing to read; just sleep out the gap.
            thread::sleep(wait.max(Duration::from_micros(100)));
            continue;
        }
        let _ = stream.set_read_timeout(Some(wait.max(Duration::from_millis(1))));
        match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF between whole responses is a clean close (keep-alive
                // reaped, request budget exhausted). EOF with a torn
                // response in the buffer is a mid-stream reset: the peer
                // died while answering.
                if buf.is_empty() {
                    stats.dropped += pending.len() as u64;
                } else {
                    stats.reset += pending.len() as u64;
                }
                pending.clear();
                buf.clear();
                if next >= schedule.len() {
                    return stats;
                }
                match connect(addr) {
                    Some(s) => {
                        stream = s;
                        stats.reconnects += 1;
                    }
                    None => {
                        stats.dropped += (schedule.len() - next) as u64;
                        return stats;
                    }
                }
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match parse_one_response(&buf) {
                        Ok(Some((status, consumed))) => {
                            buf.drain(..consumed);
                            if let Some(intended) = pending.pop_front() {
                                // CO correction: latency from the schedule's
                                // intended send, not the actual write.
                                let latency = now_ns(anchor).saturating_sub(intended);
                                stats.completed.push((status, latency));
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Unparseable stream: everything in flight on
                            // this connection is unaccountable.
                            stats.dropped += pending.len() as u64;
                            pending.clear();
                            buf.clear();
                            if let Some(s) = connect(addr) {
                                stream = s;
                                stats.reconnects += 1;
                            }
                            break;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => {
                // Hard read error (ECONNRESET and friends): everything in
                // flight was torn mid-stream.
                stats.reset += pending.len() as u64;
                pending.clear();
                buf.clear();
                match connect(addr) {
                    Some(s) => {
                        stream = s;
                        stats.reconnects += 1;
                    }
                    None => {
                        stats.dropped += (schedule.len() - next) as u64;
                        return stats;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let phases = [Phase::new(100.0, 2.0), Phase::new(400.0, 0.5)];
        let a = ArrivalPlan::generate(7, &phases);
        let b = ArrivalPlan::generate(7, &phases);
        assert_eq!(a, b);
        let c = ArrivalPlan::generate(8, &phases);
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn schedule_is_sorted_and_bounded() {
        let phases = [Phase::new(200.0, 1.0), Phase::new(50.0, 1.0)];
        let plan = ArrivalPlan::generate(3, &phases);
        assert!(plan.offsets_ns.windows(2).all(|w| w[0] <= w[1]));
        let total_ns = (ArrivalPlan::duration_secs(&phases) * 1e9) as u64;
        assert!(plan.offsets_ns.iter().all(|&t| t < total_ns));
    }

    #[test]
    fn phase_rates_shape_the_schedule() {
        // 50 Hz for 2 s then 500 Hz for 2 s: the second phase should hold
        // roughly 10× the arrivals of the first (Poisson noise allowed).
        let phases = [Phase::new(50.0, 2.0), Phase::new(500.0, 2.0)];
        let plan = ArrivalPlan::generate(11, &phases);
        let split = 2_000_000_000u64;
        let first = plan.offsets_ns.iter().filter(|&&t| t < split).count();
        let second = plan.offsets_ns.len() - first;
        assert!((60..=140).contains(&first), "phase 1 count: {first}");
        assert!((800..=1200).contains(&second), "phase 2 count: {second}");
    }

    #[test]
    fn zero_rate_phases_are_dead_air() {
        let phases = [
            Phase::new(0.0, 1.0),
            Phase::new(100.0, 1.0),
            Phase::new(-5.0, 1.0),
        ];
        let plan = ArrivalPlan::generate(5, &phases);
        assert!(!plan.offsets_ns.is_empty());
        // All arrivals fall inside the middle phase's [1s, 2s) span.
        assert!(plan
            .offsets_ns
            .iter()
            .all(|&t| (1_000_000_000..2_000_000_000).contains(&t)));
    }

    #[test]
    fn exact_quantiles_use_ceil_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_sorted(&sorted, 0.50), 50);
        assert_eq!(quantile_sorted(&sorted, 0.99), 99);
        assert_eq!(quantile_sorted(&sorted, 1.0), 100);
        assert_eq!(quantile_sorted(&sorted, 0.0), 1);
        assert_eq!(quantile_sorted(&[], 0.5), 0);
    }

    #[test]
    fn report_json_is_parseable_without_booleans() {
        let report = LoadgenReport {
            offered: 10,
            completed: 8,
            ok: 6,
            shed: 2,
            timeouts: 1,
            dropped: 1,
            reset: 1,
            duration_secs: 2.0,
            ok_latencies_ns: vec![1_000_000, 2_000_000, 3_000_000],
            ..LoadgenReport::default()
        };
        let json = report.to_json();
        let v = dronet_obs::JsonValue::parse(&json).expect("report JSON parses");
        assert_eq!(v.get("offered").and_then(|x| x.as_u64()), Some(10));
        assert_eq!(v.get("shed").and_then(|x| x.as_u64()), Some(2));
        assert_eq!(v.get("reset").and_then(|x| x.as_u64()), Some(1));
        assert!(v.get("goodput_rps").and_then(|x| x.as_f64()).unwrap() > 0.0);
    }

    #[test]
    fn mid_stream_tears_are_classified_as_resets() {
        use std::net::TcpListener;

        // A rogue backend: answers the first request with a *partial*
        // response head, then slams the connection. The generator must
        // classify the in-flight request as `reset`, not `dropped`, and
        // still conserve the offered count.
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().unwrap();
        let rogue = thread::spawn(move || {
            for _ in 0..2 {
                let (mut sock, _) = match listener.accept() {
                    Ok(x) => x,
                    Err(_) => return,
                };
                let mut chunk = [0u8; 4096];
                let _ = sock.read(&mut chunk);
                let _ = sock.write_all(b"HTTP/1.1 200 OK\r\nContent-Le");
                // Dropping the socket here tears the response mid-head.
            }
        });
        let cfg = LoadgenConfig {
            seed: 9,
            connections: 1,
            phases: vec![Phase::new(40.0, 0.25)],
            frames: frame_corpus(8),
            drain_timeout: Duration::from_millis(400),
        };
        let report = run(addr, &cfg);
        rogue.join().unwrap();
        assert!(report.reset >= 1, "torn response must count as reset");
        assert_eq!(
            report.completed + report.timeouts + report.dropped + report.reset,
            report.offered,
            "conservation must hold with resets"
        );
    }
}
