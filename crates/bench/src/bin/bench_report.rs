//! Bench-regression harness: times the zoo models across the paper's
//! input-size ladder plus one traced pipeline run, and writes
//! schema-stable JSON reports (`BENCH_PR3.json` for single-image forwards
//! and the pipeline, `BENCH_PR4.json` for batched serving throughput) that
//! CI archives and the in-tree JSON reader ([`dronet_obs::JsonValue`]) can
//! parse back for regression diffing.
//!
//! ```text
//! cargo run --release -p dronet-bench --bin bench_report \
//!     [report.json [trace.json [batched_report.json]]]
//! cargo run --release -p dronet-bench --bin bench_report -- \
//!     --alloc-grid [BENCH_PR6.json]
//! cargo run --release -p dronet-bench --bin bench_report -- \
//!     --serve-grid [BENCH_PR8.json]
//! cargo run --release -p dronet-bench --bin bench_report -- \
//!     --tile-grid [BENCH_PR9.json]
//! cargo run --release -p dronet-bench --bin bench_report -- \
//!     --replica-grid [BENCH_PR10.json]
//! ```
//!
//! `DRONET_BENCH_ITERS` overrides the timed iterations per configuration
//! (default 5); CI smoke runs set it to 1. The schema deliberately uses
//! only objects, arrays, strings, and numbers — the subset the in-tree
//! reader supports.
//!
//! `--serve-grid` runs the serving-SLO grid (`BENCH_PR8.json`): for each
//! input size × `max_batch`, an in-process server is driven by the
//! open-loop load generator at three offered-load levels (fractions and
//! multiples of the measured forward capacity), reporting
//! coordinated-omission-corrected latency quantiles, goodput, the
//! shed/timeout/drop breakdown, and the server's own SLO verdicts from
//! `GET /debug/slo`. `DRONET_LOADGEN_SECS` / `DRONET_LOADGEN_CONNS`
//! shrink rows for CI smoke runs.
//!
//! `--replica-grid` runs the replica-kill chaos grid (`BENCH_PR10.json`):
//! the same storm of open-loop load is driven at a single-replica server,
//! a 3-replica server, and a 3-replica server whose seeded
//! [`ReplicaChaosPlan`] kills one replica mid-storm (panic or wedge
//! injection, healed in the second half). Each row reports goodput, the
//! hedge and quarantine counters, and the worst service health observed
//! by an in-process sampler. The grid self-asserts its headline claims —
//! the kill row holds ≥ [`REPLICA_GOODPUT_MIN_RATIO`] of baseline
//! goodput, degrades without ever halting, and re-admits the killed
//! replica through the canary gate (one forced canary failure first) —
//! and `tests/bench_report.rs` locks the committed report. Seeded end to
//! end: same `DRONET_REPLICA_SEED` → same kill schedule and arrival
//! plan. `DRONET_REPLICA_SECS` / `DRONET_REPLICA_CONNS` /
//! `DRONET_REPLICA_RATE` shrink rows for CI smoke runs.
//!
//! `--tile-grid` runs the selective-tiling accuracy-vs-FLOPs grid
//! (`BENCH_PR9.json`): synthetic large aerial frames are processed three
//! ways — selective tiling (the `dronet-tile` pipeline), exhaustive
//! all-tiles, and whole-frame downscale to the detector input — and each
//! mode reports IoU/sensitivity/precision against ground truth plus FLOPs
//! and ms/frame. Accuracy uses a geometric detectability oracle (vehicles
//! below [`MIN_DETECT_PX`] apparent pixels are invisible to the network,
//! per the paper's small-object argument) run through the *real* selector,
//! merger and tracker; timing replays the recorded tile sets through the
//! real CNN. `DRONET_TILE_SIZES` / `DRONET_TILE_FRAMES` shrink the grid
//! for CI smoke runs.
//!
//! `--alloc-grid` runs the steady-state-allocation grid instead
//! (`BENCH_PR6.json`): this binary installs the counting allocator, and
//! the grid pins `DRONET_THREADS=1` (scoped GEMM threads allocate their
//! spawn state on the calling thread) before any forward caches the
//! worker count, then reports allocs/bytes per warm pooled forward for
//! DroNet-352 at batch 1 and 8 — expected to be exactly zero.

use dronet_bench::loadgen::{frame_corpus, run_plan, ArrivalPlan, LoadgenConfig, Phase};
use dronet_bench::{input_image, model};
use dronet_core::ModelId;
use dronet_data::scene::{LargeSceneConfig, LargeSceneGenerator};
use dronet_detect::track::{Tracker, TrackerConfig};
use dronet_detect::{resize_frame_bilinear, Detection, DetectorBuilder, IterSource, VideoPipeline};
use dronet_metrics::matching::{match_detections, MatchResult, DEFAULT_IOU_THRESHOLD};
use dronet_metrics::BBox;
use dronet_nn::cost::network_cost;
use dronet_nn::profile::NetworkProfile;
use dronet_nn::summary::NetworkSummary;
use dronet_obs::{AllocScope, ChromeTrace, CountingAlloc, JsonValue, Registry, Tracer};
use dronet_serve::{DetectorFactory, ReplicaChaosPlan, ServeConfig, Server};
use dronet_tile::{
    MergeConfig, SelectorConfig, TileGrid, TileMerger, TileSelector, TiledDetector,
    TiledDetectorConfig,
};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// The schema version stamped into the report; bump when a field changes
/// meaning so regression tooling can refuse to compare across versions.
const SCHEMA_VERSION: u64 = 1;

/// The models × input-size grid of the report (the paper's Fig. 3 ladder,
/// proposed model + accuracy baseline).
const MODELS: [ModelId; 2] = [ModelId::DroNet, ModelId::TinyYoloVoc];
const SIZES: [usize; 4] = [352, 416, 512, 608];

/// The batched-throughput grid (`BENCH_PR4.json`): the serving micro-batch
/// curve for the proposed model at its two real-time input sizes.
const BATCH_INPUTS: [usize; 2] = [352, 416];
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

/// One timed configuration.
struct ForwardRow {
    model: &'static str,
    input: usize,
    iters: usize,
    median_ms: f64,
    p90_ms: f64,
    mean_ms: f64,
    static_gflops: f64,
    achieved_gflops: f64,
}

/// Nearest-rank percentile of an already-sorted sample (exact, no
/// interpolation surprises across harness versions).
fn percentile_ms(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn median_ms(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Times `iters` forward passes of one model at one input size.
fn time_forward(id: ModelId, input: usize, iters: usize) -> ForwardRow {
    let mut net = model(id, input);
    let obs = Registry::new();
    net.set_observability(&obs);
    let summary = NetworkSummary::of(id.name(), &net);
    let x = input_image(input, 42);
    net.forward(&x).expect("warmup forward"); // warm caches, JIT-free
    let mut samples_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(net.forward(&x).expect("timed forward").len());
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let profile = NetworkProfile::new(&summary, &obs.snapshot());
    ForwardRow {
        model: id.name(),
        input,
        iters,
        median_ms: median_ms(&samples_ms),
        p90_ms: percentile_ms(&samples_ms, 90.0),
        mean_ms: samples_ms.iter().sum::<f64>() / samples_ms.len() as f64,
        static_gflops: network_cost(&net).total_gflops(),
        achieved_gflops: profile.achieved_gflops().unwrap_or(0.0),
    }
}

/// One batched-throughput configuration.
struct BatchRow {
    model: &'static str,
    input: usize,
    batch: usize,
    iters: usize,
    median_batch_ms: f64,
    per_image_median_ms: f64,
    images_per_sec: f64,
}

/// Frames pushed through the network per timed iteration of the batch
/// curve — the LCM of [`BATCH_SIZES`], so every batch size processes the
/// identical workload and rows differ only in how it is coalesced.
const FRAMES_PER_ITER: usize = 8;

/// Times the whole batch curve at one input size on a fixed workload:
/// every row pushes the same [`FRAMES_PER_ITER`] distinct frames through
/// the network per iteration, coalesced as `FRAMES_PER_ITER / batch`
/// forwards of `batch`-frame NCHW stacks. Two methodology points:
///
/// - Timing one batch-1 forward of a single repeated frame would flatter
///   batch-1 (its input stays warm in cache across iterations) and
///   measure nothing a server ever does; this is the serving question —
///   same traffic, different coalescing — answered directly.
/// - Iterations are **interleaved** across batch sizes (round-robin, one
///   shared network) rather than timed row after row, so slow machine
///   phases — a shared box's noisy neighbours, frequency drift — land on
///   every row equally instead of biasing whichever row they overlap.
fn time_batch_curve(id: ModelId, input: usize, iters: usize) -> Vec<BatchRow> {
    let mut net = model(id, input);
    let frames: Vec<_> = (0..FRAMES_PER_ITER)
        .map(|i| input_image(input, 42 + i as u64))
        .collect();
    let stacked: Vec<Vec<dronet_tensor::Tensor>> = BATCH_SIZES
        .iter()
        .map(|&batch| {
            assert_eq!(FRAMES_PER_ITER % batch, 0, "batch must divide the workload");
            frames
                .chunks(batch)
                .map(|chunk| dronet_tensor::Tensor::stack_batch(chunk).expect("stack batch"))
                .collect()
        })
        .collect();
    let mut samples_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(iters); BATCH_SIZES.len()];
    for round in 0..=iters {
        for (bi, stacks) in stacked.iter().enumerate() {
            let t0 = Instant::now();
            for x in stacks {
                std::hint::black_box(net.forward(x).expect("timed forward").len());
            }
            // Round 0 is warmup (buffers faulted in, pool warm) — discard.
            if round > 0 {
                samples_ms[bi].push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    BATCH_SIZES
        .iter()
        .zip(samples_ms.iter_mut())
        .map(|(&batch, samples)| {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let median_iter_ms = median_ms(samples);
            let forwards = (FRAMES_PER_ITER / batch) as f64;
            BatchRow {
                model: id.name(),
                input,
                batch,
                iters,
                median_batch_ms: median_iter_ms / forwards,
                per_image_median_ms: median_iter_ms / FRAMES_PER_ITER as f64,
                images_per_sec: FRAMES_PER_ITER as f64 / (median_iter_ms / 1e3),
            }
        })
        .collect()
}

/// A JSON number that the in-tree reader round-trips: finite, plain
/// decimal (Rust's `f64` Display never emits scientific notation).
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.4}")
    } else {
        "0.0".to_string()
    }
}

/// The steady-state-allocation grid (`BENCH_PR6.json`): batch sizes of
/// the DroNet-352 pooled forward measured for heap allocations per pass
/// after warmup.
const ALLOC_INPUT: usize = 352;
const ALLOC_BATCHES: [usize; 2] = [1, 8];
const ALLOC_WARMUP: usize = 3;
const ALLOC_MEASURED: usize = 5;

struct AllocRow {
    batch: usize,
    allocs_per_forward: f64,
    alloc_bytes_per_forward: f64,
}

/// Writes the steady-state allocation grid. Must run before any other
/// forward in the process: it pins `DRONET_THREADS=1` so the GEMM stays
/// on the calling thread, which [`AllocScope`] measures.
fn alloc_grid_main(path: &str) {
    std::env::set_var("DRONET_THREADS", "1");
    assert!(
        dronet_obs::alloc::installed(),
        "bench_report must run under its CountingAlloc"
    );
    let mut rows = Vec::new();
    for batch in ALLOC_BATCHES {
        eprintln!("measuring DroNet @{ALLOC_INPUT} batch {batch} steady-state allocations...");
        let mut net = model(ModelId::DroNet, ALLOC_INPUT);
        let frames: Vec<_> = (0..batch)
            .map(|i| input_image(ALLOC_INPUT, 7 + i as u64))
            .collect();
        let x = dronet_tensor::Tensor::stack_batch(&frames).expect("stack batch");
        // Warmup populates the activation pool, folds batch-norm
        // coefficients and sizes conv scratch; recycling each output
        // mirrors a serving loop returning decoded results.
        for _ in 0..ALLOC_WARMUP {
            let y = net.forward(&x).expect("warmup forward");
            net.recycle(y);
        }
        let scope = AllocScope::begin();
        for _ in 0..ALLOC_MEASURED {
            let y = net.forward(&x).expect("measured forward");
            net.recycle(y);
        }
        let delta = scope.delta();
        let row = AllocRow {
            batch,
            allocs_per_forward: delta.allocs as f64 / ALLOC_MEASURED as f64,
            alloc_bytes_per_forward: delta.bytes as f64 / ALLOC_MEASURED as f64,
        };
        eprintln!(
            "  {:.1} allocs/forward, {:.1} bytes/forward over {ALLOC_MEASURED} forwards",
            row.allocs_per_forward, row.alloc_bytes_per_forward
        );
        rows.push(row);
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR6\",");
    let _ = writeln!(out, "  \"threads\": 1,");
    let _ = writeln!(out, "  \"warmup_forwards\": {ALLOC_WARMUP},");
    let _ = writeln!(out, "  \"measured_forwards\": {ALLOC_MEASURED},");
    out.push_str("  \"steady_state_alloc\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"DroNet\", \"input\": {ALLOC_INPUT}, \"batch\": {}, \
             \"allocs_per_forward\": {}, \"alloc_bytes_per_forward\": {}}}",
            row.batch,
            num(row.allocs_per_forward),
            num(row.alloc_bytes_per_forward),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let parsed = JsonValue::parse(&out).expect("alloc report parses with the in-tree reader");
    let grid = parsed
        .get("steady_state_alloc")
        .and_then(JsonValue::as_array)
        .expect("steady_state_alloc array");
    assert_eq!(grid.len(), ALLOC_BATCHES.len());

    std::fs::write(path, &out).expect("write alloc report");
    eprintln!("wrote {path} ({} alloc rows)", rows.len());
}

/// The serving grid (`BENCH_PR8.json`): input sizes × batch configs ×
/// offered-load levels, each row driven by the open-loop load generator.
const SERVE_INPUTS: [usize; 2] = [64, 96];
const SERVE_BATCHES: [usize; 2] = [1, 8];
/// Offered load as a multiple of the measured single-worker forward
/// capacity: comfortable, busy, and deliberately impossible. 6× (not 2×)
/// because max_batch=8 coalescing can amortize most of the per-forward
/// cost — the overload row must overwhelm the *batched* service rate.
const SERVE_LOADS: [(&str, f64); 3] = [("low", 0.2), ("mid", 0.6), ("overload", 6.0)];

struct ServeGridRow {
    input: usize,
    max_batch: usize,
    load: &'static str,
    rate_hz: f64,
    offered: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    timeouts: u64,
    dropped: u64,
    goodput_rps: f64,
    ok_p50_ms: f64,
    ok_p99_ms: f64,
    ok_p999_ms: f64,
    slo_latency_breached: u8,
    slo_availability_breached: u8,
}

/// One-shot `GET` against the spawned server; returns the body.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for GET");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write GET");
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .expect("read GET response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    String::from_utf8_lossy(&response[split + 4..]).into_owned()
}

/// Measures one worker's un-batched service capacity at `input`, in
/// forwards per second — the grid's load levels are multiples of this.
fn measure_capacity_rps(input: usize, iters: usize) -> f64 {
    let mut net = model(ModelId::DroNet, input);
    let x = input_image(input, 42);
    net.forward(&x).expect("warmup forward");
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(net.forward(&x).expect("timed forward").len());
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

fn serve_grid_main(path: &str) {
    let secs: f64 = std::env::var("DRONET_LOADGEN_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(4.0);
    let connections: usize = std::env::var("DRONET_LOADGEN_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(128);

    let mut rows: Vec<ServeGridRow> = Vec::new();
    for (ii, &input) in SERVE_INPUTS.iter().enumerate() {
        let capacity = measure_capacity_rps(input, 10);
        eprintln!("DroNet @{input}: ~{capacity:.0} forwards/s single-worker capacity");
        let frames = frame_corpus(input);
        for (bi, &max_batch) in SERVE_BATCHES.iter().enumerate() {
            for (li, &(load, factor)) in SERVE_LOADS.iter().enumerate() {
                let rate_hz = (capacity * factor).max(5.0);
                let factory: DetectorFactory = Arc::new(move || {
                    let net = dronet_core::zoo::build(dronet_core::ModelId::DroNet, input)?;
                    DetectorBuilder::new(net).confidence_threshold(0.3).build()
                });
                let config = ServeConfig {
                    workers: 1,
                    max_batch,
                    // Must sit below the connection count: the server
                    // admits at most one in-flight request per connection,
                    // so with queue_capacity >= connections the queue can
                    // never overflow and overload would show up only as
                    // latency, never as 503s.
                    queue_capacity: (connections / 2).max(8),
                    // Loadgen connections live for the whole row: no
                    // request budget, no idle reaping mid-run.
                    max_requests_per_connection: 1_000_000,
                    keep_alive_timeout: Duration::from_secs(30),
                    max_connections: 2048,
                    response_timeout: Duration::from_secs(10),
                    ..ServeConfig::default()
                };
                let server = Server::start(factory, config, &Registry::new(), &Tracer::noop())
                    .expect("spawn grid server");
                // One deterministic seed per row: replayable, and distinct
                // rows see distinct (but fixed) arrival noise.
                let seed = 0xC0FFEE + (ii * 100 + bi * 10 + li) as u64;
                let cfg = LoadgenConfig {
                    seed,
                    connections,
                    phases: vec![Phase::new(rate_hz, secs)],
                    frames: frames.clone(),
                    drain_timeout: Duration::from_secs(15),
                };
                let plan = ArrivalPlan::generate(cfg.seed, &cfg.phases);
                let report = run_plan(server.addr(), &cfg, &plan);
                let slo_body = http_get(server.addr(), "/debug/slo");
                let _ = server.shutdown();

                let slo = JsonValue::parse(&slo_body).expect("/debug/slo parses");
                let breached = |name: &str| -> u8 {
                    slo.get("slos")
                        .and_then(JsonValue::as_array)
                        .and_then(|slos| {
                            slos.iter()
                                .find(|s| s.get("name").and_then(JsonValue::as_str) == Some(name))
                        })
                        .and_then(|s| s.get("breached"))
                        .and_then(JsonValue::as_u64)
                        .map_or(0, |b| (b != 0) as u8)
                };
                let row = ServeGridRow {
                    input,
                    max_batch,
                    load,
                    rate_hz,
                    offered: report.offered,
                    ok: report.ok,
                    shed: report.shed,
                    errors: report.errors,
                    timeouts: report.timeouts,
                    // Schema stability: the serve grid predates the
                    // distinct mid-stream `reset` class, so fold it back
                    // into `dropped` here. The replica grid reports it
                    // separately.
                    dropped: report.dropped + report.reset,
                    goodput_rps: report.goodput(),
                    ok_p50_ms: report.ok_quantile_ns(0.50) as f64 / 1e6,
                    ok_p99_ms: report.ok_quantile_ns(0.99) as f64 / 1e6,
                    ok_p999_ms: report.ok_quantile_ns(0.999) as f64 / 1e6,
                    slo_latency_breached: breached("detect_latency"),
                    slo_availability_breached: breached("detect_availability"),
                };
                eprintln!(
                    "  @{input} batch {max_batch} {load} ({rate_hz:.0} Hz): \
                     ok={} shed={} timeouts={} dropped={} goodput={:.1}/s p99={:.1}ms \
                     slo_lat={} slo_avail={}",
                    row.ok,
                    row.shed,
                    row.timeouts,
                    row.dropped,
                    row.goodput_rps,
                    row.ok_p99_ms,
                    row.slo_latency_breached,
                    row.slo_availability_breached,
                );
                // The grid's headline claims, self-asserted: every row
                // keeps serving, and overload sheds instead of collapsing.
                assert!(row.ok > 0, "row @{input}/{max_batch}/{load} served nothing");
                if load == "overload" {
                    assert!(
                        row.shed > 0,
                        "overload row @{input}/{max_batch} shed nothing — raise the factor"
                    );
                }
                rows.push(row);
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR8\",");
    let _ = writeln!(out, "  \"secs_per_row\": {},", num(secs));
    let _ = writeln!(out, "  \"connections\": {connections},");
    out.push_str("  \"serve_grid\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"DroNet\", \"input\": {}, \"max_batch\": {}, \"load\": \"{}\", \
             \"rate_hz\": {}, \"offered\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
             \"timeouts\": {}, \"dropped\": {}, \"goodput_rps\": {}, \"ok_p50_ms\": {}, \
             \"ok_p99_ms\": {}, \"ok_p999_ms\": {}, \"slo_latency_breached\": {}, \
             \"slo_availability_breached\": {}}}",
            r.input,
            r.max_batch,
            r.load,
            num(r.rate_hz),
            r.offered,
            r.ok,
            r.shed,
            r.errors,
            r.timeouts,
            r.dropped,
            num(r.goodput_rps),
            num(r.ok_p50_ms),
            num(r.ok_p99_ms),
            num(r.ok_p999_ms),
            r.slo_latency_breached,
            r.slo_availability_breached,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let parsed = JsonValue::parse(&out).expect("serve grid parses with the in-tree reader");
    let grid = parsed
        .get("serve_grid")
        .and_then(JsonValue::as_array)
        .expect("serve_grid array");
    assert_eq!(
        grid.len(),
        SERVE_INPUTS.len() * SERVE_BATCHES.len() * SERVE_LOADS.len()
    );

    std::fs::write(path, &out).expect("write serve grid report");
    eprintln!("wrote {path} ({} serve rows)", rows.len());
}

/// The replica grid's detector input: small enough that a 3-replica
/// server plus the load generator fit comfortably in a CI runner.
const REPLICA_INPUT: usize = 64;
/// Offered load as a multiple of single-worker forward capacity: above
/// what one replica can serve alone, well under the 3-replica aggregate,
/// so losing one replica hurts but must not collapse goodput.
const REPLICA_LOAD_FACTOR: f64 = 1.5;
/// The headline claim: killing 1 of 3 replicas mid-storm keeps goodput
/// at or above this fraction of the unkilled 3-replica baseline.
const REPLICA_GOODPUT_MIN_RATIO: f64 = 0.6;

/// One row of the replica-kill grid.
struct ReplicaRow {
    scenario: &'static str,
    replicas: usize,
    rate_hz: f64,
    offered: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    timeouts: u64,
    dropped: u64,
    reset: u64,
    goodput_rps: f64,
    ok_p50_ms: f64,
    ok_p99_ms: f64,
    /// Worst service health the sampler saw: 0 Healthy, 1 Degraded,
    /// 2 Halted.
    worst_health: u8,
    hedge_issued: u64,
    hedge_won: u64,
    hedge_wasted: u64,
    quarantine_entered: u64,
    quarantine_readmitted: u64,
    canary_failed: u64,
}

/// The storm every replica-grid scenario shares: one seeded open-loop
/// arrival schedule, replayed identically against each server shape.
struct ReplicaStorm<'a> {
    rate_hz: f64,
    secs: f64,
    connections: usize,
    frames: &'a [Vec<u8>],
    seed: u64,
}

/// Drives one replica-grid scenario: spawns a server (`replicas`
/// replicas, optional seeded kill schedule), storms it with the open-loop
/// load generator, and samples service health throughout.
fn run_replica_row(
    scenario: &'static str,
    replicas: usize,
    chaos: Option<ReplicaChaosPlan>,
    canary_chaos_failures: usize,
    storm: &ReplicaStorm,
) -> ReplicaRow {
    let &ReplicaStorm {
        rate_hz,
        secs,
        connections,
        frames,
        seed,
    } = storm;
    let factory: DetectorFactory = Arc::new(move || {
        let net = dronet_core::zoo::build(dronet_core::ModelId::DroNet, REPLICA_INPUT)?;
        DetectorBuilder::new(net).confidence_threshold(0.3).build()
    });
    let config = ServeConfig {
        replicas,
        workers: 1,
        max_batch: 4,
        queue_capacity: (connections / 2).max(8),
        max_requests_per_connection: 1_000_000,
        keep_alive_timeout: Duration::from_secs(30),
        max_connections: 2048,
        response_timeout: Duration::from_secs(5),
        // Hedge stranded requests quickly: far above healthy p99 at this
        // input size, far below the wedge timeout.
        hedge_delay: (replicas > 1).then_some(Duration::from_millis(100)),
        // Tight supervision so kill → quarantine → canary → readmission
        // all complete within a CI-smoke-sized storm.
        watchdog_interval: Duration::from_millis(50),
        wedge_timeout: Duration::from_millis(250),
        chaos_wedge_hold: Duration::from_secs(2),
        quarantine_faults: 3,
        canary_chaos_failures,
        replica_chaos: chaos,
        ..ServeConfig::default()
    };
    let obs = Registry::new();
    let server =
        Server::start(factory, config, &obs, &Tracer::noop()).expect("spawn replica grid server");
    let cfg = LoadgenConfig {
        seed,
        connections,
        phases: vec![Phase::new(rate_hz, secs)],
        frames: frames.to_vec(),
        drain_timeout: Duration::from_secs(15),
    };
    let plan = ArrivalPlan::generate(cfg.seed, &cfg.phases);

    // Sample service health while the storm runs: the claim is about the
    // worst state ever reached, not the final state.
    let done = std::sync::atomic::AtomicBool::new(false);
    let (report, worst_health) = std::thread::scope(|scope| {
        let sampler = scope.spawn(|| {
            let mut worst = 0u8;
            while !done.load(std::sync::atomic::Ordering::SeqCst) {
                let h = match server.health() {
                    dronet_detect::Health::Healthy => 0,
                    dronet_detect::Health::Degraded => 1,
                    dronet_detect::Health::Halted => 2,
                };
                worst = worst.max(h);
                std::thread::sleep(Duration::from_millis(20));
            }
            worst
        });
        let report = run_plan(server.addr(), &cfg, &plan);
        done.store(true, std::sync::atomic::Ordering::SeqCst);
        (report, sampler.join().expect("health sampler"))
    });
    let _ = server.shutdown();

    let counter = |name: &str| obs.counter(name).get();
    ReplicaRow {
        scenario,
        replicas,
        rate_hz,
        offered: report.offered,
        ok: report.ok,
        shed: report.shed,
        errors: report.errors,
        timeouts: report.timeouts,
        dropped: report.dropped,
        reset: report.reset,
        goodput_rps: report.goodput(),
        ok_p50_ms: report.ok_quantile_ns(0.50) as f64 / 1e6,
        ok_p99_ms: report.ok_quantile_ns(0.99) as f64 / 1e6,
        worst_health,
        hedge_issued: counter("serve.hedge.issued"),
        hedge_won: counter("serve.hedge.won"),
        hedge_wasted: counter("serve.hedge.wasted"),
        quarantine_entered: counter("serve.quarantine.entered"),
        quarantine_readmitted: counter("serve.quarantine.readmitted"),
        canary_failed: counter("serve.quarantine.canary_failed"),
    }
}

fn replica_grid_main(path: &str) {
    let secs: f64 = std::env::var("DRONET_REPLICA_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(6.0);
    let connections: usize = std::env::var("DRONET_REPLICA_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(64);
    let seed: u64 = std::env::var("DRONET_REPLICA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xD0_0DCA4A);

    let capacity = measure_capacity_rps(REPLICA_INPUT, 10);
    let rate_hz: f64 = std::env::var("DRONET_REPLICA_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0.0)
        .unwrap_or((capacity * REPLICA_LOAD_FACTOR).max(10.0));
    eprintln!(
        "DroNet @{REPLICA_INPUT}: ~{capacity:.0} forwards/s single-worker capacity, \
         storming at {rate_hz:.0} Hz for {secs}s per row"
    );
    let frames = frame_corpus(REPLICA_INPUT);

    // One kill (wedge or panic, seed's choice) in the storm's first half,
    // healed in the second half — the replica must quarantine, pass the
    // canary (after one forced failure), and rejoin.
    let window = Duration::from_secs_f64(secs * 0.9);
    let kill_plan = ReplicaChaosPlan::generate(seed, 3, 1, window);
    for k in &kill_plan.kills {
        eprintln!(
            "  kill plan: {:?} replica {} at {:?}",
            k.kind, k.replica, k.at
        );
    }

    let storm = ReplicaStorm {
        rate_hz,
        secs,
        connections,
        frames: &frames,
        seed,
    };
    let rows = [
        run_replica_row("single", 1, None, 0, &storm),
        run_replica_row("baseline", 3, None, 0, &storm),
        run_replica_row("kill_one", 3, Some(kill_plan), 1, &storm),
    ];
    for r in &rows {
        eprintln!(
            "  {} (replicas={}): ok={} shed={} errors={} timeouts={} goodput={:.1}/s \
             p99={:.1}ms worst_health={} hedge={}({}won/{}wasted) quarantine={}:{}readmit \
             canary_failed={}",
            r.scenario,
            r.replicas,
            r.ok,
            r.shed,
            r.errors,
            r.timeouts,
            r.goodput_rps,
            r.ok_p99_ms,
            r.worst_health,
            r.hedge_issued,
            r.hedge_won,
            r.hedge_wasted,
            r.quarantine_entered,
            r.quarantine_readmitted,
            r.canary_failed,
        );
    }

    let baseline = &rows[1];
    let killed = &rows[2];
    let goodput_ratio = if baseline.goodput_rps > 0.0 {
        killed.goodput_rps / baseline.goodput_rps
    } else {
        0.0
    };

    // The grid's headline claims, self-asserted before anything is
    // written: a report that fails its own claims must not exist.
    for r in &rows {
        assert!(r.ok > 0, "replica row {} served nothing", r.scenario);
    }
    assert!(
        goodput_ratio >= REPLICA_GOODPUT_MIN_RATIO,
        "kill row goodput {:.1}/s is below {REPLICA_GOODPUT_MIN_RATIO} of baseline {:.1}/s",
        killed.goodput_rps,
        baseline.goodput_rps,
    );
    assert!(
        killed.worst_health <= 1,
        "kill row reached Halted — losing 1 of 3 replicas must only degrade"
    );
    assert!(
        killed.quarantine_entered >= 1 && killed.quarantine_readmitted >= 1,
        "kill row must quarantine the killed replica and re-admit it \
         (entered={}, readmitted={})",
        killed.quarantine_entered,
        killed.quarantine_readmitted,
    );
    assert!(
        killed.canary_failed >= 1,
        "kill row forced one canary failure; the counter must show it"
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR10\",");
    let _ = writeln!(out, "  \"secs_per_row\": {},", num(secs));
    let _ = writeln!(out, "  \"connections\": {connections},");
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"input\": {REPLICA_INPUT},");
    let _ = writeln!(out, "  \"rate_hz\": {},", num(rate_hz));
    out.push_str("  \"replica_grid\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"scenario\": \"{}\", \"replicas\": {}, \"rate_hz\": {}, \
             \"offered\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \"timeouts\": {}, \
             \"dropped\": {}, \"reset\": {}, \"goodput_rps\": {}, \"ok_p50_ms\": {}, \
             \"ok_p99_ms\": {}, \"worst_health\": {}, \"hedge_issued\": {}, \
             \"hedge_won\": {}, \"hedge_wasted\": {}, \"quarantine_entered\": {}, \
             \"quarantine_readmitted\": {}, \"canary_failed\": {}}}",
            r.scenario,
            r.replicas,
            num(r.rate_hz),
            r.offered,
            r.ok,
            r.shed,
            r.errors,
            r.timeouts,
            r.dropped,
            r.reset,
            num(r.goodput_rps),
            num(r.ok_p50_ms),
            num(r.ok_p99_ms),
            r.worst_health,
            r.hedge_issued,
            r.hedge_won,
            r.hedge_wasted,
            r.quarantine_entered,
            r.quarantine_readmitted,
            r.canary_failed,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"claims\": {\n");
    let _ = writeln!(
        out,
        "    \"goodput_ratio_kill_vs_baseline\": {},",
        num(goodput_ratio)
    );
    let _ = writeln!(
        out,
        "    \"goodput_ratio_min\": {},",
        num(REPLICA_GOODPUT_MIN_RATIO)
    );
    let _ = writeln!(out, "    \"kill_halted_observed\": 0,");
    let _ = writeln!(
        out,
        "    \"kill_quarantine_entered\": {},",
        killed.quarantine_entered
    );
    let _ = writeln!(
        out,
        "    \"kill_quarantine_readmitted\": {},",
        killed.quarantine_readmitted
    );
    let _ = writeln!(out, "    \"kill_canary_failed\": {}", killed.canary_failed);
    out.push_str("  }\n}\n");

    let parsed = JsonValue::parse(&out).expect("replica grid parses with the in-tree reader");
    let grid = parsed
        .get("replica_grid")
        .and_then(JsonValue::as_array)
        .expect("replica_grid array");
    assert_eq!(grid.len(), 3);

    std::fs::write(path, &out).expect("write replica grid report");
    eprintln!("wrote {path} ({} replica rows)", rows.len());
}

/// The selective-tiling grid (`BENCH_PR9.json`): frame sizes × processing
/// modes, accuracy from a geometric detectability oracle and cost from the
/// real CNN.
///
/// The detector tile is the paper's real-time input size; the overlap
/// exceeds the largest rotated vehicle footprint (≈40 px) so every object
/// is whole in at least one tile and the merge's stitch path is a safety
/// net rather than a crutch.
const TILE_INPUT: usize = 352;
const TILE_OVERLAP: usize = 48;
/// Minimum apparent size (pixels at detector input scale) for the oracle
/// to consider an object detectable. DroNet's receptive field loses
/// vehicles below ~8 px — the reason whole-frame downscale fails on large
/// frames and the quantity this grid varies.
const MIN_DETECT_PX: f32 = 8.0;
/// Minimum fraction of an object's area that must fall inside a tile for
/// the oracle to emit a detection from that tile (mirrors the dataset's
/// half-visible annotation rule, relaxed for clipped fragments).
const ORACLE_MIN_VISIBLE: f32 = 0.25;

/// One row of the tile grid.
struct TileRow {
    frame_size: usize,
    mode: &'static str,
    frames: usize,
    /// Tiles in the grid (1 for the downscale mode's single forward).
    tiles_per_frame: usize,
    /// Total tiles actually run across all frames.
    tiles_run: usize,
    gflops: f64,
    ms_per_frame: f64,
    mean_iou: f64,
    sensitivity: f64,
    precision: f64,
}

/// SplitMix64: cheap deterministic hash for oracle jitter.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic sub-pixel jitter and score noise for one (frame, object,
/// tile) triple: `(dx_px, dy_px, unit)` with `dx/dy` in ±0.5 px.
fn oracle_jitter(frame: u64, object: usize, tile: usize) -> (f32, f32, f32) {
    let h = splitmix64(frame ^ ((object as u64) << 20) ^ ((tile as u64) << 42));
    let u = |shift: u32| ((h >> shift) & 0xFFFF) as f32 / 65535.0;
    (u(0) - 0.5, u(16) - 0.5, u(32))
}

/// What the network would report for one tile, per the detectability
/// model: every ground-truth fragment inside the tile that is at least
/// [`ORACLE_MIN_VISIBLE`] of its object and at least [`MIN_DETECT_PX`]
/// apparent pixels long. Tiles run at native resolution, so apparent size
/// equals true pixel size. Boxes come back in tile-local normalised
/// coordinates — exactly the shape `TileMerger` consumes — so seam
/// clipping, duplicate suppression and re-projection are exercised by the
/// real merge code, not simulated.
fn oracle_tile_detections(
    grid: &TileGrid,
    tile_index: usize,
    gt: &[BBox],
    frame_id: u64,
) -> Vec<Detection> {
    let (fw, fh) = (grid.frame_width() as f32, grid.frame_height() as f32);
    let t = grid.tile_size() as f32;
    let tile = grid.tile(tile_index);
    let (tx0, ty0) = (tile.x0 as f32, tile.y0 as f32);
    let mut out = Vec::new();
    for (oi, b) in gt.iter().enumerate() {
        let (bx0, bx1) = (b.x0() * fw, b.x1() * fw);
        let (by0, by1) = (b.y0() * fh, b.y1() * fh);
        let (cx0, cx1) = (bx0.max(tx0), bx1.min(tx0 + t));
        let (cy0, cy1) = (by0.max(ty0), by1.min(ty0 + t));
        if cx1 <= cx0 || cy1 <= cy0 {
            continue;
        }
        let (cw, ch) = (cx1 - cx0, cy1 - cy0);
        let area = (bx1 - bx0) * (by1 - by0);
        let visible = if area > 0.0 { cw * ch / area } else { 0.0 };
        if visible < ORACLE_MIN_VISIBLE || cw.max(ch) < MIN_DETECT_PX {
            continue;
        }
        let (jx, jy, ju) = oracle_jitter(frame_id, oi, tile_index);
        // Fragments score below whole objects so containment suppression
        // keeps the complete box, as a trained network's confidences do.
        let score = (0.80 + 0.15 * ju) * (0.6 + 0.4 * visible.min(1.0));
        out.push(Detection {
            bbox: BBox::new(
                ((cx0 + cx1) * 0.5 + jx - tx0) / t,
                ((cy0 + cy1) * 0.5 + jy - ty0) / t,
                cw / t,
                ch / t,
            ),
            objectness: score.clamp(0.05, 0.999),
            class: 0,
            class_prob: 1.0,
        });
    }
    out
}

/// What the network would report after downscaling the whole frame to
/// [`TILE_INPUT`]: the same oracle, but apparent size shrinks by the
/// downscale factor, so small vehicles fall below [`MIN_DETECT_PX`] and
/// vanish — the failure mode selective tiling exists to avoid.
fn oracle_downscale_detections(gt: &[BBox], frame_id: u64) -> Vec<(BBox, f32)> {
    let scale = TILE_INPUT as f32;
    let mut out = Vec::new();
    for (oi, b) in gt.iter().enumerate() {
        let apparent = (b.w * scale).max(b.h * scale);
        if apparent < MIN_DETECT_PX {
            continue;
        }
        let (jx, jy, ju) = oracle_jitter(frame_id, oi, usize::MAX);
        out.push((
            BBox::new(b.cx + jx / scale, b.cy + jy / scale, b.w, b.h),
            0.80 + 0.15 * ju,
        ));
    }
    out
}

/// The large-frame scene the grid renders, shared by the accuracy and
/// timing passes so replayed tile sets line up with their frames.
fn tile_scene_config(frame_size: usize) -> LargeSceneConfig {
    LargeSceneConfig {
        width: frame_size,
        height: frame_size,
        // Wider length spread than the default so whole-frame downscale
        // keeps *some* of the largest vehicles at the smaller frame sizes
        // — the comparison stays a gradient, not a cliff.
        vehicle_len_px: (11.0, 34.0),
        ..LargeSceneConfig::default()
    }
}

/// The tiled-pipeline configuration under test. Thresholds are tuned for
/// the synthetic scenes: the static background makes frame differencing
/// near-noiseless, so the motion gate sits just above float dust.
fn tile_pipeline_config() -> TiledDetectorConfig {
    TiledDetectorConfig {
        overlap: TILE_OVERLAP,
        selector: SelectorConfig {
            diff_threshold: 1e-4,
            max_tiles: 5,
            revisit_period: 16,
            seed: 9,
            ..SelectorConfig::default()
        },
        merge: MergeConfig::default(),
        tracker: TrackerConfig {
            // Clipped cluster boxes at frame edges churn IDs without the
            // boundary slack; dust below ~3 px² is never a vehicle.
            boundary_slack: 0.25,
            min_box_area: 1e-5,
            ..TrackerConfig::default()
        },
    }
}

/// Accuracy results for one frame size: per-mode matching totals, the
/// selective tile sets chosen per frame (for timing replay), and the
/// selective/exhaustive tile counts.
struct TileAccuracy {
    selective: MatchResult,
    exhaustive: MatchResult,
    downscale: MatchResult,
    selective_tiles: Vec<Vec<usize>>,
    tiles_run_selective: usize,
    tiles_per_frame: usize,
}

/// Accuracy pass: runs the real selector → oracle → real merger → real
/// tracker loop over a generated sequence, plus the exhaustive and
/// downscale baselines on identical frames and ground truth.
fn tile_accuracy_pass(frame_size: usize, frames: usize) -> TileAccuracy {
    let config = tile_pipeline_config();
    let grid = TileGrid::new(TILE_INPUT, config.overlap, frame_size, frame_size)
        .expect("bench grid geometry is valid");
    let mut selector = TileSelector::new(config.selector).expect("selector config");
    let merger = TileMerger::new(config.merge).expect("merge config");
    let mut tracker = Tracker::new(config.tracker);
    let mut gen =
        LargeSceneGenerator::new(tile_scene_config(frame_size), 42).expect("scene config");
    let all_tiles: Vec<usize> = (0..grid.len()).collect();

    let mut acc = TileAccuracy {
        selective: MatchResult::default(),
        exhaustive: MatchResult::default(),
        downscale: MatchResult::default(),
        selective_tiles: Vec::with_capacity(frames),
        tiles_run_selective: 0,
        tiles_per_frame: grid.len(),
    };
    for frame_id in 0..frames as u64 {
        let scene = gen.next_frame();
        let tensor = scene.image.to_tensor();
        let gt: Vec<BBox> = scene.annotations.iter().map(|a| a.bbox).collect();

        // Selective: the attention loop picks tiles, the oracle stands in
        // for the per-tile network, and merged detections feed the
        // tracker, closing the loop for the next frame's hot tiles.
        let hot: Vec<BBox> = tracker.confirmed_tracks().map(|t| t.bbox).collect();
        let selection = selector.select(&grid, &tensor, &hot).expect("select");
        let per_tile: Vec<(usize, Vec<Detection>)> = selection
            .tiles
            .iter()
            .map(|&ti| (ti, oracle_tile_detections(&grid, ti, &gt, frame_id)))
            .collect();
        let merged = merger.merge(&grid, &per_tile);
        tracker.update(&merged);
        let dets: Vec<(BBox, f32)> = merged.iter().map(|d| (d.bbox, d.score())).collect();
        acc.selective
            .merge(&match_detections(&dets, &gt, DEFAULT_IOU_THRESHOLD));
        acc.tiles_run_selective += selection.tiles.len();
        acc.selective_tiles.push(selection.tiles);

        // Exhaustive: every tile, same oracle, same merge.
        let per_tile: Vec<(usize, Vec<Detection>)> = all_tiles
            .iter()
            .map(|&ti| (ti, oracle_tile_detections(&grid, ti, &gt, frame_id)))
            .collect();
        let merged = merger.merge(&grid, &per_tile);
        let dets: Vec<(BBox, f32)> = merged.iter().map(|d| (d.bbox, d.score())).collect();
        acc.exhaustive
            .merge(&match_detections(&dets, &gt, DEFAULT_IOU_THRESHOLD));

        // Downscale: one whole-frame forward at the detector input size.
        let dets = oracle_downscale_detections(&gt, frame_id);
        acc.downscale
            .merge(&match_detections(&dets, &gt, DEFAULT_IOU_THRESHOLD));
    }
    acc
}

/// Timing pass: replays the recorded selective tile sets (and the
/// all-tiles baseline) through the real CNN via `run_tiles`, and times
/// bilinear downscale + single forward for the whole-frame mode. Returns
/// `(selective_ms, exhaustive_ms, downscale_ms)` per frame, plus the
/// per-tile FLOPs of one forward.
fn tile_timing_pass(frame_size: usize, selective_tiles: &[Vec<usize>]) -> (f64, f64, f64, f64) {
    let config = tile_pipeline_config();
    let detector = DetectorBuilder::new(model(ModelId::DroNet, TILE_INPUT))
        // Random-init logits hover near the decode threshold; a high bar
        // keeps decode/NMS box counts realistic so the forward dominates
        // the measurement, as it does with trained weights.
        .confidence_threshold(0.95)
        .build()
        .expect("tile detector builds");
    let mut tiled =
        TiledDetector::new(detector, (frame_size, frame_size), config).expect("tiled detector");
    let per_tile_flops = tiled.per_tile_flops();
    let mut downscale_detector = DetectorBuilder::new(model(ModelId::DroNet, TILE_INPUT))
        .confidence_threshold(0.95)
        .build()
        .expect("downscale detector builds");
    let all_tiles: Vec<usize> = (0..tiled.grid().len()).collect();
    let mut gen =
        LargeSceneGenerator::new(tile_scene_config(frame_size), 42).expect("scene config");

    let frames = selective_tiles.len();
    let (mut sel_ms, mut exh_ms, mut down_ms) = (0.0f64, 0.0f64, 0.0f64);
    for (frame_id, tiles) in selective_tiles.iter().enumerate() {
        let tensor = gen.next_frame().image.to_tensor();

        let start = Instant::now();
        tiled
            .run_tiles(&tensor, tiles, frame_id as u64)
            .expect("selective replay");
        sel_ms += start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        tiled
            .run_tiles(&tensor, &all_tiles, frame_id as u64)
            .expect("exhaustive replay");
        exh_ms += start.elapsed().as_secs_f64() * 1e3;

        let start = Instant::now();
        let small = resize_frame_bilinear(&tensor, TILE_INPUT, TILE_INPUT);
        downscale_detector.detect(&small).expect("downscale detect");
        down_ms += start.elapsed().as_secs_f64() * 1e3;
    }
    let n = frames.max(1) as f64;
    (sel_ms / n, exh_ms / n, down_ms / n, per_tile_flops)
}

/// Writes the accuracy-vs-FLOPs tile grid.
fn tile_grid_main(path: &str) {
    let frame_sizes: Vec<usize> = std::env::var("DRONET_TILE_SIZES")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|s| s.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1408, 2112]);
    let frames: usize = std::env::var("DRONET_TILE_FRAMES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(6);

    let mut rows: Vec<TileRow> = Vec::new();
    for &frame_size in &frame_sizes {
        eprintln!("tile grid @{frame_size}²: accuracy pass ({frames} frames)...");
        let acc = tile_accuracy_pass(frame_size, frames);
        eprintln!(
            "  selective ran {}/{} tile-forwards",
            acc.tiles_run_selective,
            acc.tiles_per_frame * frames
        );
        eprintln!("tile grid @{frame_size}²: timing pass (real CNN replay)...");
        let (sel_ms, exh_ms, down_ms, per_tile_flops) =
            tile_timing_pass(frame_size, &acc.selective_tiles);
        let gflop = per_tile_flops / 1e9;

        let mut push = |mode: &'static str,
                        result: &MatchResult,
                        tiles_per_frame: usize,
                        tiles_run: usize,
                        ms_per_frame: f64| {
            let stats = result.stats();
            eprintln!(
                "  {mode:>10}: sens {:.3}, prec {:.3}, iou {:.3}, {:.1} GFLOP, {:.1} ms/frame",
                stats.sensitivity,
                stats.precision,
                result.mean_iou(),
                tiles_run as f64 * gflop,
                ms_per_frame
            );
            rows.push(TileRow {
                frame_size,
                mode,
                frames,
                tiles_per_frame,
                tiles_run,
                gflops: tiles_run as f64 * gflop,
                ms_per_frame,
                mean_iou: result.mean_iou() as f64,
                sensitivity: stats.sensitivity as f64,
                precision: stats.precision as f64,
            });
        };
        push(
            "selective",
            &acc.selective,
            acc.tiles_per_frame,
            acc.tiles_run_selective,
            sel_ms,
        );
        push(
            "exhaustive",
            &acc.exhaustive,
            acc.tiles_per_frame,
            acc.tiles_per_frame * frames,
            exh_ms,
        );
        push("downscale", &acc.downscale, 1, frames, down_ms);

        // The headline claims, asserted at generation time so a tuning
        // regression can never write a report that contradicts them.
        let sel = &rows[rows.len() - 3];
        let exh = &rows[rows.len() - 2];
        let down = &rows[rows.len() - 1];
        assert!(
            sel.gflops <= 0.5 * exh.gflops,
            "@{frame_size}: selective spent {:.1} GFLOP, over half of exhaustive's {:.1}",
            sel.gflops,
            exh.gflops
        );
        assert!(
            sel.sensitivity >= down.sensitivity,
            "@{frame_size}: selective sensitivity {:.3} below downscale's {:.3}",
            sel.sensitivity,
            down.sensitivity
        );
        assert!(
            sel.sensitivity > 0.5,
            "@{frame_size}: selective sensitivity {:.3} — attention loop is losing vehicles",
            sel.sensitivity
        );
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR9\",");
    let _ = writeln!(out, "  \"tile\": {TILE_INPUT},");
    let _ = writeln!(out, "  \"overlap\": {TILE_OVERLAP},");
    let _ = writeln!(out, "  \"min_detect_px\": {},", num(MIN_DETECT_PX as f64));
    let _ = writeln!(out, "  \"frames_per_size\": {frames},");
    out.push_str("  \"tile_grid\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"DroNet\", \"frame_size\": {}, \"mode\": \"{}\", \
             \"frames\": {}, \"tiles_per_frame\": {}, \"tiles_run\": {}, \"gflops\": {}, \
             \"ms_per_frame\": {}, \"mean_iou\": {}, \"sensitivity\": {}, \"precision\": {}}}",
            row.frame_size,
            row.mode,
            row.frames,
            row.tiles_per_frame,
            row.tiles_run,
            num(row.gflops),
            num(row.ms_per_frame),
            num(row.mean_iou),
            num(row.sensitivity),
            num(row.precision),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let parsed = JsonValue::parse(&out).expect("tile report parses with the in-tree reader");
    let grid = parsed
        .get("tile_grid")
        .and_then(JsonValue::as_array)
        .expect("tile_grid array");
    assert_eq!(grid.len(), frame_sizes.len() * 3);

    std::fs::write(path, &out).expect("write tile grid report");
    eprintln!("wrote {path} ({} tile rows)", rows.len());
}

fn main() {
    let iters: usize = std::env::var("DRONET_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--alloc-grid") {
        let path = args.next().unwrap_or_else(|| "BENCH_PR6.json".to_string());
        alloc_grid_main(&path);
        return;
    }
    if first.as_deref() == Some("--serve-grid") {
        let path = args.next().unwrap_or_else(|| "BENCH_PR8.json".to_string());
        serve_grid_main(&path);
        return;
    }
    if first.as_deref() == Some("--replica-grid") {
        let path = args.next().unwrap_or_else(|| "BENCH_PR10.json".to_string());
        replica_grid_main(&path);
        return;
    }
    if first.as_deref() == Some("--tile-grid") {
        let path = args.next().unwrap_or_else(|| "BENCH_PR9.json".to_string());
        tile_grid_main(&path);
        return;
    }
    let report_path = first.unwrap_or_else(|| "BENCH_PR3.json".to_string());
    let trace_path = args
        .next()
        .unwrap_or_else(|| "bench_trace.json".to_string());
    let batched_path = args.next().unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let mut rows = Vec::new();
    for id in MODELS {
        for input in SIZES {
            eprintln!("timing {} @{input} ({iters} iters)...", id.name());
            let row = time_forward(id, input, iters);
            eprintln!(
                "  median {:.2} ms, p90 {:.2} ms, {:.2} GFLOP/s achieved",
                row.median_ms, row.p90_ms, row.achieved_gflops
            );
            rows.push(row);
        }
    }

    // One traced pipeline run: camera → frame → stage → layer spans land
    // in the Chrome trace, and the before/after registry diff yields the
    // pipeline counters for the report.
    let pipeline_input = 352;
    let pipeline_frames = 4;
    let obs = Registry::new();
    let tracer = Tracer::new();
    let mut detector = DetectorBuilder::new(model(ModelId::DroNet, pipeline_input))
        .observability(&obs)
        .tracing(&tracer)
        .build()
        .expect("detector builds");
    let before = obs.snapshot();
    let frames: Vec<_> = (0..pipeline_frames)
        .map(|i| input_image(pipeline_input, 100 + i as u64))
        .collect();
    let report =
        VideoPipeline::run_source_traced(&mut detector, IterSource::new(frames), &obs, &tracer)
            .expect("pipeline run");
    let frames_delta = obs
        .snapshot()
        .diff(&before)
        .counter("pipeline.frames")
        .unwrap_or(0);
    let snapshot = tracer.snapshot();
    std::fs::write(&trace_path, ChromeTrace::to_string(&snapshot)).expect("write trace");
    eprintln!(
        "pipeline: {} frames, {} trace events -> {trace_path}",
        report.processed(),
        snapshot.events.len()
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR3\",");
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"forward\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"input\": {}, \"iters\": {}, \"median_ms\": {}, \
             \"p90_ms\": {}, \"mean_ms\": {}, \"gflops\": {}, \"achieved_gflops\": {}}}",
            row.model,
            row.input,
            row.iters,
            num(row.median_ms),
            num(row.p90_ms),
            num(row.mean_ms),
            num(row.static_gflops),
            num(row.achieved_gflops),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let mean_frame_ms = report.mean_latency().as_secs_f64() * 1e3;
    let _ = writeln!(
        out,
        "  \"pipeline\": {{\"model\": \"DroNet\", \"input\": {pipeline_input}, \
         \"frames\": {}, \"dropped\": {}, \"frames_delta\": {frames_delta}, \
         \"mean_frame_ms\": {}, \"fps\": {}, \"trace_events\": {}}}",
        report.processed(),
        report.dropped,
        num(mean_frame_ms),
        num(report.fps().0),
        snapshot.events.len(),
    );
    out.push_str("}\n");

    // The report must stay parseable by the in-tree reader: fail loudly
    // here rather than letting CI archive a malformed artifact.
    let parsed = JsonValue::parse(&out).expect("report parses with the in-tree JSON reader");
    let forward = parsed
        .get("forward")
        .and_then(JsonValue::as_array)
        .expect("forward array");
    assert_eq!(forward.len(), MODELS.len() * SIZES.len());

    std::fs::write(&report_path, &out).expect("write report");
    eprintln!("wrote {report_path} ({} forward rows)", rows.len());

    // Batched serving throughput (BENCH_PR4.json): the micro-batch curve
    // the serve crate's coalescing is justified by — measured, not
    // asserted.
    let mut batch_rows = Vec::new();
    for input in BATCH_INPUTS {
        eprintln!(
            "timing DroNet @{input} batch curve {BATCH_SIZES:?} ({iters} interleaved iters)..."
        );
        for row in time_batch_curve(ModelId::DroNet, input, iters) {
            eprintln!(
                "  batch {}: median {:.2} ms/forward, {:.2} ms/image, {:.2} images/s",
                row.batch, row.median_batch_ms, row.per_image_median_ms, row.images_per_sec
            );
            batch_rows.push(row);
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR4\",");
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"batched_throughput\": [\n");
    for (i, row) in batch_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"input\": {}, \"batch\": {}, \"iters\": {}, \
             \"median_batch_ms\": {}, \"per_image_median_ms\": {}, \"images_per_sec\": {}}}",
            row.model,
            row.input,
            row.batch,
            row.iters,
            num(row.median_batch_ms),
            num(row.per_image_median_ms),
            num(row.images_per_sec),
        );
        out.push_str(if i + 1 < batch_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");

    let parsed = JsonValue::parse(&out).expect("batched report parses with the in-tree reader");
    let throughput = parsed
        .get("batched_throughput")
        .and_then(JsonValue::as_array)
        .expect("batched_throughput array");
    assert_eq!(throughput.len(), BATCH_INPUTS.len() * BATCH_SIZES.len());

    std::fs::write(&batched_path, &out).expect("write batched report");
    eprintln!("wrote {batched_path} ({} batched rows)", batch_rows.len());
}
