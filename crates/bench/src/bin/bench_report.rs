//! Bench-regression harness: times the zoo models across the paper's
//! input-size ladder plus one traced pipeline run, and writes
//! schema-stable JSON reports (`BENCH_PR3.json` for single-image forwards
//! and the pipeline, `BENCH_PR4.json` for batched serving throughput) that
//! CI archives and the in-tree JSON reader ([`dronet_obs::JsonValue`]) can
//! parse back for regression diffing.
//!
//! ```text
//! cargo run --release -p dronet-bench --bin bench_report \
//!     [report.json [trace.json [batched_report.json]]]
//! cargo run --release -p dronet-bench --bin bench_report -- \
//!     --alloc-grid [BENCH_PR6.json]
//! cargo run --release -p dronet-bench --bin bench_report -- \
//!     --serve-grid [BENCH_PR8.json]
//! ```
//!
//! `DRONET_BENCH_ITERS` overrides the timed iterations per configuration
//! (default 5); CI smoke runs set it to 1. The schema deliberately uses
//! only objects, arrays, strings, and numbers — the subset the in-tree
//! reader supports.
//!
//! `--serve-grid` runs the serving-SLO grid (`BENCH_PR8.json`): for each
//! input size × `max_batch`, an in-process server is driven by the
//! open-loop load generator at three offered-load levels (fractions and
//! multiples of the measured forward capacity), reporting
//! coordinated-omission-corrected latency quantiles, goodput, the
//! shed/timeout/drop breakdown, and the server's own SLO verdicts from
//! `GET /debug/slo`. `DRONET_LOADGEN_SECS` / `DRONET_LOADGEN_CONNS`
//! shrink rows for CI smoke runs.
//!
//! `--alloc-grid` runs the steady-state-allocation grid instead
//! (`BENCH_PR6.json`): this binary installs the counting allocator, and
//! the grid pins `DRONET_THREADS=1` (scoped GEMM threads allocate their
//! spawn state on the calling thread) before any forward caches the
//! worker count, then reports allocs/bytes per warm pooled forward for
//! DroNet-352 at batch 1 and 8 — expected to be exactly zero.

use dronet_bench::loadgen::{frame_corpus, run_plan, ArrivalPlan, LoadgenConfig, Phase};
use dronet_bench::{input_image, model};
use dronet_core::ModelId;
use dronet_detect::{DetectorBuilder, IterSource, VideoPipeline};
use dronet_nn::cost::network_cost;
use dronet_nn::profile::NetworkProfile;
use dronet_nn::summary::NetworkSummary;
use dronet_obs::{AllocScope, ChromeTrace, CountingAlloc, JsonValue, Registry, Tracer};
use dronet_serve::{DetectorFactory, ServeConfig, Server};
use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// The schema version stamped into the report; bump when a field changes
/// meaning so regression tooling can refuse to compare across versions.
const SCHEMA_VERSION: u64 = 1;

/// The models × input-size grid of the report (the paper's Fig. 3 ladder,
/// proposed model + accuracy baseline).
const MODELS: [ModelId; 2] = [ModelId::DroNet, ModelId::TinyYoloVoc];
const SIZES: [usize; 4] = [352, 416, 512, 608];

/// The batched-throughput grid (`BENCH_PR4.json`): the serving micro-batch
/// curve for the proposed model at its two real-time input sizes.
const BATCH_INPUTS: [usize; 2] = [352, 416];
const BATCH_SIZES: [usize; 4] = [1, 2, 4, 8];

/// One timed configuration.
struct ForwardRow {
    model: &'static str,
    input: usize,
    iters: usize,
    median_ms: f64,
    p90_ms: f64,
    mean_ms: f64,
    static_gflops: f64,
    achieved_gflops: f64,
}

/// Nearest-rank percentile of an already-sorted sample (exact, no
/// interpolation surprises across harness versions).
fn percentile_ms(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty());
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn median_ms(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Times `iters` forward passes of one model at one input size.
fn time_forward(id: ModelId, input: usize, iters: usize) -> ForwardRow {
    let mut net = model(id, input);
    let obs = Registry::new();
    net.set_observability(&obs);
    let summary = NetworkSummary::of(id.name(), &net);
    let x = input_image(input, 42);
    net.forward(&x).expect("warmup forward"); // warm caches, JIT-free
    let mut samples_ms = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(net.forward(&x).expect("timed forward").len());
        samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let profile = NetworkProfile::new(&summary, &obs.snapshot());
    ForwardRow {
        model: id.name(),
        input,
        iters,
        median_ms: median_ms(&samples_ms),
        p90_ms: percentile_ms(&samples_ms, 90.0),
        mean_ms: samples_ms.iter().sum::<f64>() / samples_ms.len() as f64,
        static_gflops: network_cost(&net).total_gflops(),
        achieved_gflops: profile.achieved_gflops().unwrap_or(0.0),
    }
}

/// One batched-throughput configuration.
struct BatchRow {
    model: &'static str,
    input: usize,
    batch: usize,
    iters: usize,
    median_batch_ms: f64,
    per_image_median_ms: f64,
    images_per_sec: f64,
}

/// Frames pushed through the network per timed iteration of the batch
/// curve — the LCM of [`BATCH_SIZES`], so every batch size processes the
/// identical workload and rows differ only in how it is coalesced.
const FRAMES_PER_ITER: usize = 8;

/// Times the whole batch curve at one input size on a fixed workload:
/// every row pushes the same [`FRAMES_PER_ITER`] distinct frames through
/// the network per iteration, coalesced as `FRAMES_PER_ITER / batch`
/// forwards of `batch`-frame NCHW stacks. Two methodology points:
///
/// - Timing one batch-1 forward of a single repeated frame would flatter
///   batch-1 (its input stays warm in cache across iterations) and
///   measure nothing a server ever does; this is the serving question —
///   same traffic, different coalescing — answered directly.
/// - Iterations are **interleaved** across batch sizes (round-robin, one
///   shared network) rather than timed row after row, so slow machine
///   phases — a shared box's noisy neighbours, frequency drift — land on
///   every row equally instead of biasing whichever row they overlap.
fn time_batch_curve(id: ModelId, input: usize, iters: usize) -> Vec<BatchRow> {
    let mut net = model(id, input);
    let frames: Vec<_> = (0..FRAMES_PER_ITER)
        .map(|i| input_image(input, 42 + i as u64))
        .collect();
    let stacked: Vec<Vec<dronet_tensor::Tensor>> = BATCH_SIZES
        .iter()
        .map(|&batch| {
            assert_eq!(FRAMES_PER_ITER % batch, 0, "batch must divide the workload");
            frames
                .chunks(batch)
                .map(|chunk| dronet_tensor::Tensor::stack_batch(chunk).expect("stack batch"))
                .collect()
        })
        .collect();
    let mut samples_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(iters); BATCH_SIZES.len()];
    for round in 0..=iters {
        for (bi, stacks) in stacked.iter().enumerate() {
            let t0 = Instant::now();
            for x in stacks {
                std::hint::black_box(net.forward(x).expect("timed forward").len());
            }
            // Round 0 is warmup (buffers faulted in, pool warm) — discard.
            if round > 0 {
                samples_ms[bi].push(t0.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    BATCH_SIZES
        .iter()
        .zip(samples_ms.iter_mut())
        .map(|(&batch, samples)| {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            let median_iter_ms = median_ms(samples);
            let forwards = (FRAMES_PER_ITER / batch) as f64;
            BatchRow {
                model: id.name(),
                input,
                batch,
                iters,
                median_batch_ms: median_iter_ms / forwards,
                per_image_median_ms: median_iter_ms / FRAMES_PER_ITER as f64,
                images_per_sec: FRAMES_PER_ITER as f64 / (median_iter_ms / 1e3),
            }
        })
        .collect()
}

/// A JSON number that the in-tree reader round-trips: finite, plain
/// decimal (Rust's `f64` Display never emits scientific notation).
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.4}")
    } else {
        "0.0".to_string()
    }
}

/// The steady-state-allocation grid (`BENCH_PR6.json`): batch sizes of
/// the DroNet-352 pooled forward measured for heap allocations per pass
/// after warmup.
const ALLOC_INPUT: usize = 352;
const ALLOC_BATCHES: [usize; 2] = [1, 8];
const ALLOC_WARMUP: usize = 3;
const ALLOC_MEASURED: usize = 5;

struct AllocRow {
    batch: usize,
    allocs_per_forward: f64,
    alloc_bytes_per_forward: f64,
}

/// Writes the steady-state allocation grid. Must run before any other
/// forward in the process: it pins `DRONET_THREADS=1` so the GEMM stays
/// on the calling thread, which [`AllocScope`] measures.
fn alloc_grid_main(path: &str) {
    std::env::set_var("DRONET_THREADS", "1");
    assert!(
        dronet_obs::alloc::installed(),
        "bench_report must run under its CountingAlloc"
    );
    let mut rows = Vec::new();
    for batch in ALLOC_BATCHES {
        eprintln!("measuring DroNet @{ALLOC_INPUT} batch {batch} steady-state allocations...");
        let mut net = model(ModelId::DroNet, ALLOC_INPUT);
        let frames: Vec<_> = (0..batch)
            .map(|i| input_image(ALLOC_INPUT, 7 + i as u64))
            .collect();
        let x = dronet_tensor::Tensor::stack_batch(&frames).expect("stack batch");
        // Warmup populates the activation pool, folds batch-norm
        // coefficients and sizes conv scratch; recycling each output
        // mirrors a serving loop returning decoded results.
        for _ in 0..ALLOC_WARMUP {
            let y = net.forward(&x).expect("warmup forward");
            net.recycle(y);
        }
        let scope = AllocScope::begin();
        for _ in 0..ALLOC_MEASURED {
            let y = net.forward(&x).expect("measured forward");
            net.recycle(y);
        }
        let delta = scope.delta();
        let row = AllocRow {
            batch,
            allocs_per_forward: delta.allocs as f64 / ALLOC_MEASURED as f64,
            alloc_bytes_per_forward: delta.bytes as f64 / ALLOC_MEASURED as f64,
        };
        eprintln!(
            "  {:.1} allocs/forward, {:.1} bytes/forward over {ALLOC_MEASURED} forwards",
            row.allocs_per_forward, row.alloc_bytes_per_forward
        );
        rows.push(row);
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR6\",");
    let _ = writeln!(out, "  \"threads\": 1,");
    let _ = writeln!(out, "  \"warmup_forwards\": {ALLOC_WARMUP},");
    let _ = writeln!(out, "  \"measured_forwards\": {ALLOC_MEASURED},");
    out.push_str("  \"steady_state_alloc\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"DroNet\", \"input\": {ALLOC_INPUT}, \"batch\": {}, \
             \"allocs_per_forward\": {}, \"alloc_bytes_per_forward\": {}}}",
            row.batch,
            num(row.allocs_per_forward),
            num(row.alloc_bytes_per_forward),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let parsed = JsonValue::parse(&out).expect("alloc report parses with the in-tree reader");
    let grid = parsed
        .get("steady_state_alloc")
        .and_then(JsonValue::as_array)
        .expect("steady_state_alloc array");
    assert_eq!(grid.len(), ALLOC_BATCHES.len());

    std::fs::write(path, &out).expect("write alloc report");
    eprintln!("wrote {path} ({} alloc rows)", rows.len());
}

/// The serving grid (`BENCH_PR8.json`): input sizes × batch configs ×
/// offered-load levels, each row driven by the open-loop load generator.
const SERVE_INPUTS: [usize; 2] = [64, 96];
const SERVE_BATCHES: [usize; 2] = [1, 8];
/// Offered load as a multiple of the measured single-worker forward
/// capacity: comfortable, busy, and deliberately impossible. 6× (not 2×)
/// because max_batch=8 coalescing can amortize most of the per-forward
/// cost — the overload row must overwhelm the *batched* service rate.
const SERVE_LOADS: [(&str, f64); 3] = [("low", 0.2), ("mid", 0.6), ("overload", 6.0)];

struct ServeGridRow {
    input: usize,
    max_batch: usize,
    load: &'static str,
    rate_hz: f64,
    offered: u64,
    ok: u64,
    shed: u64,
    errors: u64,
    timeouts: u64,
    dropped: u64,
    goodput_rps: f64,
    ok_p50_ms: f64,
    ok_p99_ms: f64,
    ok_p999_ms: f64,
    slo_latency_breached: u8,
    slo_availability_breached: u8,
}

/// One-shot `GET` against the spawned server; returns the body.
fn http_get(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect for GET");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let head = format!("GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write GET");
    let mut response = Vec::new();
    stream
        .read_to_end(&mut response)
        .expect("read GET response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response head terminator");
    String::from_utf8_lossy(&response[split + 4..]).into_owned()
}

/// Measures one worker's un-batched service capacity at `input`, in
/// forwards per second — the grid's load levels are multiples of this.
fn measure_capacity_rps(input: usize, iters: usize) -> f64 {
    let mut net = model(ModelId::DroNet, input);
    let x = input_image(input, 42);
    net.forward(&x).expect("warmup forward");
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(net.forward(&x).expect("timed forward").len());
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

fn serve_grid_main(path: &str) {
    let secs: f64 = std::env::var("DRONET_LOADGEN_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(4.0);
    let connections: usize = std::env::var("DRONET_LOADGEN_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&c| c > 0)
        .unwrap_or(128);

    let mut rows: Vec<ServeGridRow> = Vec::new();
    for (ii, &input) in SERVE_INPUTS.iter().enumerate() {
        let capacity = measure_capacity_rps(input, 10);
        eprintln!("DroNet @{input}: ~{capacity:.0} forwards/s single-worker capacity");
        let frames = frame_corpus(input);
        for (bi, &max_batch) in SERVE_BATCHES.iter().enumerate() {
            for (li, &(load, factor)) in SERVE_LOADS.iter().enumerate() {
                let rate_hz = (capacity * factor).max(5.0);
                let factory: DetectorFactory = Arc::new(move || {
                    let net = dronet_core::zoo::build(dronet_core::ModelId::DroNet, input)?;
                    DetectorBuilder::new(net).confidence_threshold(0.3).build()
                });
                let config = ServeConfig {
                    workers: 1,
                    max_batch,
                    // Must sit below the connection count: the server
                    // admits at most one in-flight request per connection,
                    // so with queue_capacity >= connections the queue can
                    // never overflow and overload would show up only as
                    // latency, never as 503s.
                    queue_capacity: (connections / 2).max(8),
                    // Loadgen connections live for the whole row: no
                    // request budget, no idle reaping mid-run.
                    max_requests_per_connection: 1_000_000,
                    keep_alive_timeout: Duration::from_secs(30),
                    max_connections: 2048,
                    response_timeout: Duration::from_secs(10),
                    ..ServeConfig::default()
                };
                let server = Server::start(factory, config, &Registry::new(), &Tracer::noop())
                    .expect("spawn grid server");
                // One deterministic seed per row: replayable, and distinct
                // rows see distinct (but fixed) arrival noise.
                let seed = 0xC0FFEE + (ii * 100 + bi * 10 + li) as u64;
                let cfg = LoadgenConfig {
                    seed,
                    connections,
                    phases: vec![Phase::new(rate_hz, secs)],
                    frames: frames.clone(),
                    drain_timeout: Duration::from_secs(15),
                };
                let plan = ArrivalPlan::generate(cfg.seed, &cfg.phases);
                let report = run_plan(server.addr(), &cfg, &plan);
                let slo_body = http_get(server.addr(), "/debug/slo");
                let _ = server.shutdown();

                let slo = JsonValue::parse(&slo_body).expect("/debug/slo parses");
                let breached = |name: &str| -> u8 {
                    slo.get("slos")
                        .and_then(JsonValue::as_array)
                        .and_then(|slos| {
                            slos.iter()
                                .find(|s| s.get("name").and_then(JsonValue::as_str) == Some(name))
                        })
                        .and_then(|s| s.get("breached"))
                        .and_then(JsonValue::as_u64)
                        .map_or(0, |b| (b != 0) as u8)
                };
                let row = ServeGridRow {
                    input,
                    max_batch,
                    load,
                    rate_hz,
                    offered: report.offered,
                    ok: report.ok,
                    shed: report.shed,
                    errors: report.errors,
                    timeouts: report.timeouts,
                    dropped: report.dropped,
                    goodput_rps: report.goodput(),
                    ok_p50_ms: report.ok_quantile_ns(0.50) as f64 / 1e6,
                    ok_p99_ms: report.ok_quantile_ns(0.99) as f64 / 1e6,
                    ok_p999_ms: report.ok_quantile_ns(0.999) as f64 / 1e6,
                    slo_latency_breached: breached("detect_latency"),
                    slo_availability_breached: breached("detect_availability"),
                };
                eprintln!(
                    "  @{input} batch {max_batch} {load} ({rate_hz:.0} Hz): \
                     ok={} shed={} timeouts={} dropped={} goodput={:.1}/s p99={:.1}ms \
                     slo_lat={} slo_avail={}",
                    row.ok,
                    row.shed,
                    row.timeouts,
                    row.dropped,
                    row.goodput_rps,
                    row.ok_p99_ms,
                    row.slo_latency_breached,
                    row.slo_availability_breached,
                );
                // The grid's headline claims, self-asserted: every row
                // keeps serving, and overload sheds instead of collapsing.
                assert!(row.ok > 0, "row @{input}/{max_batch}/{load} served nothing");
                if load == "overload" {
                    assert!(
                        row.shed > 0,
                        "overload row @{input}/{max_batch} shed nothing — raise the factor"
                    );
                }
                rows.push(row);
            }
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR8\",");
    let _ = writeln!(out, "  \"secs_per_row\": {},", num(secs));
    let _ = writeln!(out, "  \"connections\": {connections},");
    out.push_str("  \"serve_grid\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"DroNet\", \"input\": {}, \"max_batch\": {}, \"load\": \"{}\", \
             \"rate_hz\": {}, \"offered\": {}, \"ok\": {}, \"shed\": {}, \"errors\": {}, \
             \"timeouts\": {}, \"dropped\": {}, \"goodput_rps\": {}, \"ok_p50_ms\": {}, \
             \"ok_p99_ms\": {}, \"ok_p999_ms\": {}, \"slo_latency_breached\": {}, \
             \"slo_availability_breached\": {}}}",
            r.input,
            r.max_batch,
            r.load,
            num(r.rate_hz),
            r.offered,
            r.ok,
            r.shed,
            r.errors,
            r.timeouts,
            r.dropped,
            num(r.goodput_rps),
            num(r.ok_p50_ms),
            num(r.ok_p99_ms),
            num(r.ok_p999_ms),
            r.slo_latency_breached,
            r.slo_availability_breached,
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");

    let parsed = JsonValue::parse(&out).expect("serve grid parses with the in-tree reader");
    let grid = parsed
        .get("serve_grid")
        .and_then(JsonValue::as_array)
        .expect("serve_grid array");
    assert_eq!(
        grid.len(),
        SERVE_INPUTS.len() * SERVE_BATCHES.len() * SERVE_LOADS.len()
    );

    std::fs::write(path, &out).expect("write serve grid report");
    eprintln!("wrote {path} ({} serve rows)", rows.len());
}

fn main() {
    let iters: usize = std::env::var("DRONET_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(5);
    let mut args = std::env::args().skip(1);
    let first = args.next();
    if first.as_deref() == Some("--alloc-grid") {
        let path = args.next().unwrap_or_else(|| "BENCH_PR6.json".to_string());
        alloc_grid_main(&path);
        return;
    }
    if first.as_deref() == Some("--serve-grid") {
        let path = args.next().unwrap_or_else(|| "BENCH_PR8.json".to_string());
        serve_grid_main(&path);
        return;
    }
    let report_path = first.unwrap_or_else(|| "BENCH_PR3.json".to_string());
    let trace_path = args
        .next()
        .unwrap_or_else(|| "bench_trace.json".to_string());
    let batched_path = args.next().unwrap_or_else(|| "BENCH_PR4.json".to_string());

    let mut rows = Vec::new();
    for id in MODELS {
        for input in SIZES {
            eprintln!("timing {} @{input} ({iters} iters)...", id.name());
            let row = time_forward(id, input, iters);
            eprintln!(
                "  median {:.2} ms, p90 {:.2} ms, {:.2} GFLOP/s achieved",
                row.median_ms, row.p90_ms, row.achieved_gflops
            );
            rows.push(row);
        }
    }

    // One traced pipeline run: camera → frame → stage → layer spans land
    // in the Chrome trace, and the before/after registry diff yields the
    // pipeline counters for the report.
    let pipeline_input = 352;
    let pipeline_frames = 4;
    let obs = Registry::new();
    let tracer = Tracer::new();
    let mut detector = DetectorBuilder::new(model(ModelId::DroNet, pipeline_input))
        .observability(&obs)
        .tracing(&tracer)
        .build()
        .expect("detector builds");
    let before = obs.snapshot();
    let frames: Vec<_> = (0..pipeline_frames)
        .map(|i| input_image(pipeline_input, 100 + i as u64))
        .collect();
    let report =
        VideoPipeline::run_source_traced(&mut detector, IterSource::new(frames), &obs, &tracer)
            .expect("pipeline run");
    let frames_delta = obs
        .snapshot()
        .diff(&before)
        .counter("pipeline.frames")
        .unwrap_or(0);
    let snapshot = tracer.snapshot();
    std::fs::write(&trace_path, ChromeTrace::to_string(&snapshot)).expect("write trace");
    eprintln!(
        "pipeline: {} frames, {} trace events -> {trace_path}",
        report.processed(),
        snapshot.events.len()
    );

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR3\",");
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"forward\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"input\": {}, \"iters\": {}, \"median_ms\": {}, \
             \"p90_ms\": {}, \"mean_ms\": {}, \"gflops\": {}, \"achieved_gflops\": {}}}",
            row.model,
            row.input,
            row.iters,
            num(row.median_ms),
            num(row.p90_ms),
            num(row.mean_ms),
            num(row.static_gflops),
            num(row.achieved_gflops),
        );
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let mean_frame_ms = report.mean_latency().as_secs_f64() * 1e3;
    let _ = writeln!(
        out,
        "  \"pipeline\": {{\"model\": \"DroNet\", \"input\": {pipeline_input}, \
         \"frames\": {}, \"dropped\": {}, \"frames_delta\": {frames_delta}, \
         \"mean_frame_ms\": {}, \"fps\": {}, \"trace_events\": {}}}",
        report.processed(),
        report.dropped,
        num(mean_frame_ms),
        num(report.fps().0),
        snapshot.events.len(),
    );
    out.push_str("}\n");

    // The report must stay parseable by the in-tree reader: fail loudly
    // here rather than letting CI archive a malformed artifact.
    let parsed = JsonValue::parse(&out).expect("report parses with the in-tree JSON reader");
    let forward = parsed
        .get("forward")
        .and_then(JsonValue::as_array)
        .expect("forward array");
    assert_eq!(forward.len(), MODELS.len() * SIZES.len());

    std::fs::write(&report_path, &out).expect("write report");
    eprintln!("wrote {report_path} ({} forward rows)", rows.len());

    // Batched serving throughput (BENCH_PR4.json): the micro-batch curve
    // the serve crate's coalescing is justified by — measured, not
    // asserted.
    let mut batch_rows = Vec::new();
    for input in BATCH_INPUTS {
        eprintln!(
            "timing DroNet @{input} batch curve {BATCH_SIZES:?} ({iters} interleaved iters)..."
        );
        for row in time_batch_curve(ModelId::DroNet, input, iters) {
            eprintln!(
                "  batch {}: median {:.2} ms/forward, {:.2} ms/image, {:.2} images/s",
                row.batch, row.median_batch_ms, row.per_image_median_ms, row.images_per_sec
            );
            batch_rows.push(row);
        }
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"dronet-bench-report\",");
    let _ = writeln!(out, "  \"version\": {SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"pr\": \"PR4\",");
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"batched_throughput\": [\n");
    for (i, row) in batch_rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"model\": \"{}\", \"input\": {}, \"batch\": {}, \"iters\": {}, \
             \"median_batch_ms\": {}, \"per_image_median_ms\": {}, \"images_per_sec\": {}}}",
            row.model,
            row.input,
            row.batch,
            row.iters,
            num(row.median_batch_ms),
            num(row.per_image_median_ms),
            num(row.images_per_sec),
        );
        out.push_str(if i + 1 < batch_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ]\n}\n");

    let parsed = JsonValue::parse(&out).expect("batched report parses with the in-tree reader");
    let throughput = parsed
        .get("batched_throughput")
        .and_then(JsonValue::as_array)
        .expect("batched_throughput array");
    assert_eq!(throughput.len(), BATCH_INPUTS.len() * BATCH_SIZES.len());

    std::fs::write(&batched_path, &out).expect("write batched report");
    eprintln!("wrote {batched_path} ({} batched rows)", batch_rows.len());
}
