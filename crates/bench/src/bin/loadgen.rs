//! CLI for the open-loop load generator (`crates/bench/src/loadgen.rs`).
//!
//! Drives a running detection server — or spawns one in-process with
//! `--spawn` — with a seeded Poisson arrival schedule and prints a
//! coordinated-omission-corrected JSON report.
//!
//! ```text
//! loadgen --spawn --seed 42 --rate 50 --secs 5 --connections 64
//! loadgen --addr 127.0.0.1:8080 --rate 200 --secs 10 --burst 800:2 --out report.json
//! ```

use dronet_bench::loadgen::{frame_corpus, run, LoadgenConfig, Phase};
use dronet_detect::DetectorBuilder;
use dronet_obs::{Registry, Tracer};
use dronet_serve::{DetectorFactory, ServeConfig, Server};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--addr HOST:PORT | --spawn] [--seed N] [--rate HZ] [--secs S]\n\
         \x20              [--burst RATE:SECS] [--connections N] [--size PX] [--out PATH]\n\
         \n\
         --addr        target server (default: --spawn)\n\
         --spawn       spawn an in-process DroNet server and load it\n\
         --seed        arrival-schedule seed (default 42)\n\
         --rate        steady arrival rate in Hz (default 50)\n\
         --secs        steady-phase duration in seconds (default 5)\n\
         --burst       append a burst phase, e.g. 400:2 = 400 Hz for 2 s\n\
         --connections concurrent keep-alive connections (default 64)\n\
         --size        frame edge in pixels for the PPM corpus (default 64)\n\
         --out         write the JSON report here instead of stdout"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("bad or missing value for {flag}");
        usage()
    })
}

fn spawn_server(size: usize) -> Server {
    let factory: DetectorFactory = Arc::new(move || {
        let net = dronet_core::zoo::build(dronet_core::ModelId::DroNet, size)?;
        DetectorBuilder::new(net).confidence_threshold(0.3).build()
    });
    let config = ServeConfig {
        workers: 2,
        // Long-lived loadgen connections: don't let the per-connection
        // request budget or idle reaper churn them mid-run.
        max_requests_per_connection: 1_000_000,
        keep_alive_timeout: Duration::from_secs(30),
        max_connections: 2048,
        response_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    Server::start(factory, config, &Registry::new(), &Tracer::noop()).expect("spawn server")
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut addr: Option<SocketAddr> = None;
    let mut spawn = false;
    let mut seed = 42u64;
    let mut rate = 50.0f64;
    let mut secs = 5.0f64;
    let mut bursts: Vec<Phase> = Vec::new();
    let mut connections = 64usize;
    let mut size = 64usize;
    let mut out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(parse("--addr", args.next())),
            "--spawn" => spawn = true,
            "--seed" => seed = parse("--seed", args.next()),
            "--rate" => rate = parse("--rate", args.next()),
            "--secs" => secs = parse("--secs", args.next()),
            "--burst" => {
                let v: String = parse("--burst", args.next());
                let Some((r, s)) = v.split_once(':') else {
                    eprintln!("--burst wants RATE:SECS, got {v:?}");
                    usage();
                };
                bursts.push(Phase::new(
                    parse("--burst rate", Some(r.to_string())),
                    parse("--burst secs", Some(s.to_string())),
                ));
            }
            "--connections" => connections = parse("--connections", args.next()),
            "--size" => size = parse("--size", args.next()),
            "--out" => out = args.next().or_else(|| usage()),
            _ => {
                eprintln!("unknown flag {arg:?}");
                usage();
            }
        }
    }

    let server = if addr.is_none() || spawn {
        Some(spawn_server(size))
    } else {
        None
    };
    let target = server.as_ref().map(|s| s.addr()).or(addr).unwrap();

    let mut phases = vec![Phase::new(rate, secs)];
    phases.extend(bursts);
    let cfg = LoadgenConfig {
        seed,
        connections,
        phases,
        frames: frame_corpus(size),
        drain_timeout: Duration::from_secs(15),
    };
    eprintln!(
        "loadgen: target={target} seed={seed} connections={} phases={:?}",
        cfg.connections, cfg.phases
    );
    let report = run(target, &cfg);
    let json = format!("{}\n", report.to_json());
    match &out {
        Some(path) => std::fs::write(path, &json).expect("write report"),
        None => print!("{json}"),
    }
    eprintln!(
        "loadgen: offered={} ok={} shed={} errors={} timeouts={} dropped={} reset={} p99={:.1}ms",
        report.offered,
        report.ok,
        report.shed,
        report.errors,
        report.timeouts,
        report.dropped,
        report.reset,
        report.ok_quantile_ns(0.99) as f64 / 1e6,
    );
    if let Some(server) = server {
        let _ = server.shutdown();
    }
    // A run where nothing completed is a failed run, whatever the report
    // says — make CI smoke jobs fail loudly.
    if report.ok == 0 {
        eprintln!("loadgen: no successful responses");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
