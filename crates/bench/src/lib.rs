//! # dronet-bench
//!
//! Shared fixtures for the Criterion benchmark suite that regenerates the
//! paper's tables and figures. Each bench target corresponds to one
//! artifact of the evaluation section (see `DESIGN.md` §3):
//!
//! | bench | artifact |
//! |-------|----------|
//! | `fig1_architectures` | Fig. 1/2 — per-model forward latency + layer tables |
//! | `fig3_design_space`  | Fig. 3 — input-size sweep, measured + projected |
//! | `fig4_score`         | Fig. 4 — weighted score harness |
//! | `fig5_uav_deployment`| Fig. 5/§IV-B — platform projections + host anchor |
//! | `tab_a_claims`       | §IV-A claim extraction |
//! | `abl_quantization`   | §V future work — INT8 vs fp32 |
//! | `abl_altitude`       | §III-D — altitude gating effect |
//! | `abl_design_choices` | §III-C — DroNet design-rule ablation |
//! | `micro_engine`       | engine kernels: GEMM, im2col, conv, pool, NMS |
//! | `train_step`         | one SGD step of the training pipeline |
//!
//! Benches print the regenerated tables once (via `eprintln!`) before
//! measuring, so `cargo bench` output doubles as the reproduction log.

pub mod loadgen;

use dronet_core::zoo;
use dronet_data::dataset::VehicleDataset;
use dronet_data::scene::SceneConfig;
use dronet_nn::Network;
use dronet_tensor::{Shape, Tensor};
use rand::SeedableRng;

/// Deterministic RNG for benchmark inputs.
pub fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// A random `[1, 3, size, size]` input image tensor.
pub fn input_image(size: usize, seed: u64) -> Tensor {
    dronet_tensor::init::uniform(Shape::nchw(1, 3, size, size), 0.0, 1.0, &mut rng(seed))
}

/// Builds a zoo model with randomised weights at the given input size.
pub fn model(id: dronet_core::ModelId, input: usize) -> Network {
    let mut net = zoo::build(id, input).expect("embedded cfg builds");
    net.init_weights(&mut rng(7));
    net
}

/// A small synthetic dataset for training/eval benches.
pub fn bench_dataset(input: usize, scenes: usize) -> VehicleDataset {
    VehicleDataset::generate(
        SceneConfig {
            width: input,
            height: input,
            min_vehicles: 2,
            max_vehicles: 6,
            vehicle_len_frac: (0.12, 0.22),
            occlusion_prob: 0.05,
            ..SceneConfig::default()
        },
        scenes,
        0.8,
        42,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_deterministic() {
        assert_eq!(input_image(32, 1), input_image(32, 1));
        let d = bench_dataset(64, 4);
        assert_eq!(d.scenes().len(), 4);
    }

    #[test]
    fn model_fixture_builds() {
        let net = model(dronet_core::ModelId::DroNet, 96);
        assert_eq!(net.input_chw(), (3, 96, 96));
    }
}
