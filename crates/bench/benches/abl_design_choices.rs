//! ABL-D — ablation of DroNet's own design choices (the rules §III-C
//! states: grow filters gradually with depth, mix 1x1 bottlenecks into
//! the head, keep 5 pools). Each variant differs from DroNet in exactly
//! one choice; we compare cost, projected UAV frame rate and measured
//! host latency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dronet_bench::{input_image, rng};
use dronet_nn::cost::network_cost;
use dronet_nn::{cfg, Network};
use dronet_platform::{Platform, PlatformId};
use std::time::Duration;

const INPUT: usize = 256;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn variant(name: &str, body: &str) -> (String, Network) {
    let text = format!(
        "[net]\nchannels=3\nheight={INPUT}\nwidth={INPUT}\n{body}\n[region]\nanchors=0.74,0.81, 1.18,1.26, 1.75,1.82, 2.61,2.68, 4.03,4.12\nnum=5\nclasses=1\n"
    );
    let mut net = cfg::parse(&text).unwrap_or_else(|e| panic!("variant {name}: {e}"));
    net.init_weights(&mut rng(3));
    (name.to_string(), net)
}

fn conv(filters: usize, size: usize, bn: bool) -> String {
    format!(
        "[convolutional]\nbatch_normalize={}\nfilters={filters}\nsize={size}\nstride=1\npad=1\nactivation=leaky\n",
        u8::from(bn)
    )
}

fn pool() -> String {
    "[maxpool]\nsize=2\nstride=2\n".to_string()
}

fn head() -> String {
    "[convolutional]\nfilters=30\nsize=1\nstride=1\nactivation=linear\n".to_string()
}

fn dronet_like(with_bottleneck: bool, with_bn: bool, pools: usize) -> String {
    let mut s = String::new();
    // Backbone: filters grow 8,8,16,32,64 with a pool between stages.
    for (i, f) in [8usize, 8, 16, 32, 64].iter().enumerate() {
        s += &conv(*f, 3, with_bn);
        if i < pools {
            s += &pool();
        }
    }
    // Head: 3x3(128) then either the 1x1 bottleneck or a second 3x3(128).
    s += &conv(128, 3, with_bn);
    if with_bottleneck {
        s += "[convolutional]\nbatch_normalize=1\nfilters=64\nsize=1\nstride=1\nactivation=leaky\n";
    } else {
        s += &conv(128, 3, with_bn);
    }
    s += &conv(128, 3, with_bn);
    s += &head();
    s
}

fn bench_design_choices(c: &mut Criterion) {
    let variants = vec![
        variant("dronet-baseline", &dronet_like(true, true, 5)),
        variant("no-1x1-bottleneck", &dronet_like(false, true, 5)),
        variant("no-batchnorm", &dronet_like(true, false, 5)),
        variant("4-pools-finer-grid", &dronet_like(true, true, 4)),
    ];

    eprintln!("\n==== ABL-D: DroNet design-choice ablation @{INPUT} ====");
    eprintln!(
        "{:<22} {:>10} {:>10} {:>14}",
        "variant", "GFLOPs", "params", "Odroid FPS"
    );
    let odroid = Platform::preset(PlatformId::OdroidXu4);
    for (name, net) in &variants {
        let cost = network_cost(net);
        eprintln!(
            "{:<22} {:>10.3} {:>10} {:>14.2}",
            name,
            cost.total_gflops(),
            cost.total_params(),
            odroid.project_cost(&cost).fps.0
        );
    }
    eprintln!();

    let x = input_image(INPUT, 5);
    let mut group = c.benchmark_group("abl_design_forward");
    for (name, mut net) in variants {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| std::hint::black_box(net.forward(&x).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_design_choices
}
criterion_main!(benches);
