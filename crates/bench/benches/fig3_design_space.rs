//! FIG3 — the input-size design-space sweep. Prints the regenerated
//! Fig. 3 table (normalised metrics for 4 models x 9 sizes) and measures
//! (a) the harness itself and (b) real host forward latency of DroNet
//! across the paper's input-size range, whose relative scaling is the
//! physical basis of the FPS axis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dronet_bench::{input_image, model};
use dronet_core::ModelId;
use dronet_eval::figures;
use dronet_eval::sweep::{cpu_sweep, SweepConfig};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_sweep_harness(c: &mut Criterion) {
    let results = cpu_sweep(&SweepConfig::paper());
    eprintln!("\n{}", figures::fig3_table(&results).to_text());
    c.bench_function("fig3_full_sweep", |b| {
        b.iter(|| std::hint::black_box(cpu_sweep(&SweepConfig::paper()).len()))
    });
}

fn bench_dronet_across_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_dronet_forward");
    for &input in &[352usize, 416, 512, 608] {
        let mut net = model(ModelId::DroNet, input);
        let x = input_image(input, 1);
        group.bench_function(BenchmarkId::from_parameter(input), |b| {
            b.iter(|| std::hint::black_box(net.forward(&x).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sweep_harness, bench_dronet_across_sizes
}
criterion_main!(benches);
