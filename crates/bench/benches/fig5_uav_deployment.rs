//! FIG5/§IV-B — the UAV deployment experiment. Prints the regenerated
//! deployment table (DroNet-512 and TinyYoloVoc-512 on i5/Odroid/RPi3),
//! measures the host forward pass that anchors the projections, and
//! benchmarks a full pipeline frame (inference + decode + NMS) like the
//! on-board loop of Fig. 5.

use criterion::{criterion_group, criterion_main, Criterion};
use dronet_bench::{input_image, model};
use dronet_core::ModelId;
use dronet_detect::DetectorBuilder;
use dronet_eval::figures;
use dronet_nn::cost::network_cost;
use dronet_platform::{Platform, PlatformId};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

fn bench_deployment(c: &mut Criterion) {
    eprintln!("\n{}", figures::fig5_table().to_text());

    // Host anchor: measure DroNet-512 on this machine and show how the
    // model scales it to each platform.
    let mut net = model(ModelId::DroNet, 512);
    let x = input_image(512, 9);
    let cost = network_cost(&net);
    let t0 = std::time::Instant::now();
    let reps = 5;
    for _ in 0..reps {
        std::hint::black_box(net.forward(&x).unwrap().len());
    }
    let host = t0.elapsed() / reps;
    let host_gflops = Platform::implied_gflops(&cost, host);
    eprintln!(
        "host anchor: DroNet-512 forward {:.1} ms (~{host_gflops:.1} GFLOP/s effective)",
        host.as_secs_f64() * 1e3
    );
    for id in PlatformId::EVALUATION {
        let platform = Platform::preset(id);
        let scaled = platform.scale_from_measurement(&cost, host, host_gflops);
        eprintln!(
            "  scaled to {:16} {:>7.1} ms ({:.2} FPS) vs analytic {:.2} FPS",
            id.name(),
            scaled.as_secs_f64() * 1e3,
            1.0 / scaled.as_secs_f64(),
            platform.project_cost(&cost).fps.0
        );
    }

    c.bench_function("fig5_dronet512_forward_host", |b| {
        b.iter(|| std::hint::black_box(net.forward(&x).unwrap().len()))
    });

    // Full on-board frame: inference + decode + NMS at the deployed size.
    let mut detector = DetectorBuilder::new(model(ModelId::DroNet, 512))
        .confidence_threshold(0.4)
        .build()
        .unwrap();
    c.bench_function("fig5_full_detection_frame", |b| {
        b.iter(|| std::hint::black_box(detector.detect(&x).unwrap().len()))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_deployment
}
criterion_main!(benches);
