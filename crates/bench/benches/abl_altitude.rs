//! ABL-ALT — the §III-D ablation: altitude-based size gating. Quantifies
//! the precision gain from discarding size-infeasible detections on a
//! controlled detection stream (ground truth + synthetic clutter), and
//! benchmarks the filter itself.

use criterion::{criterion_group, criterion_main, Criterion};
use dronet_data::flight::{FlightSimulator, Waypoint, World, WorldConfig};
use dronet_detect::altitude::{AltitudeFilter, CameraModel};
use dronet_metrics::matching::match_detections;
use dronet_metrics::BBox;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

/// Detections = ground truth + clutter of infeasible sizes (buildings,
/// specks), mimicking a detector with size-agnostic false positives.
/// Per frame: scored detections plus the ground-truth boxes.
type Frame = (Vec<(BBox, f32)>, Vec<BBox>);

fn synthetic_stream(altitude: f32, px: usize) -> Vec<Frame> {
    let world = World::generate(WorldConfig::default(), 3);
    let flight = FlightSimulator::new(
        world,
        vec![
            Waypoint {
                x: 40.0,
                y: 200.0,
                altitude_m: altitude,
            },
            Waypoint {
                x: 360.0,
                y: 200.0,
                altitude_m: altitude,
            },
        ],
        16.0,
        2.0,
        px,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    flight
        .map(|frame| {
            let gt: Vec<BBox> = frame.annotations.iter().map(|a| a.bbox).collect();
            let mut dets: Vec<(BBox, f32)> = gt.iter().map(|b| (*b, 0.9f32)).collect();
            // Clutter: 3 infeasible false positives per frame.
            for _ in 0..3 {
                let fp = if rng.gen() {
                    BBox::new(rng.gen(), rng.gen(), 0.3 + rng.gen::<f32>() * 0.3, 0.25)
                } else {
                    BBox::new(rng.gen(), rng.gen(), 0.004, 0.004)
                };
                dets.push((fp, 0.8));
            }
            (dets, gt)
        })
        .collect()
}

fn bench_altitude(c: &mut Criterion) {
    let altitude = 60.0f32;
    let px = 96usize;
    let stream = synthetic_stream(altitude, px);
    let camera = CameraModel::new(60f32.to_radians(), px);
    let filter = AltitudeFilter::new(camera, altitude, (3.5, 5.5), 0.45).unwrap();

    let evaluate = |gated: bool| -> (f32, f32) {
        let (mut tp, mut fp, mut fn_) = (0usize, 0usize, 0usize);
        for (dets, gt) in &stream {
            let kept: Vec<(BBox, f32)> = dets
                .iter()
                .filter(|(b, _)| !gated || filter.is_feasible(b))
                .copied()
                .collect();
            let m = match_detections(&kept, gt, 0.5);
            tp += m.true_positives;
            fp += m.false_positives;
            fn_ += m.false_negatives;
        }
        (
            tp as f32 / (tp + fn_).max(1) as f32,
            tp as f32 / (tp + fp).max(1) as f32,
        )
    };
    let (sens_off, prec_off) = evaluate(false);
    let (sens_on, prec_on) = evaluate(true);
    eprintln!("\n==== ABL-ALT: altitude gating (paper III-D) ====");
    eprintln!("without gate: sens {sens_off:.3} prec {prec_off:.3}");
    eprintln!("with gate:    sens {sens_on:.3} prec {prec_on:.3}");
    eprintln!(
        "precision gain: +{:.1} points at {:.1} points sensitivity cost\n",
        (prec_on - prec_off) * 100.0,
        (sens_off - sens_on) * 100.0
    );

    let boxes: Vec<BBox> = stream
        .iter()
        .flat_map(|(d, _)| d.iter().map(|(b, _)| *b))
        .collect();
    c.bench_function("ablalt_filter_per_box", |b| {
        b.iter(|| {
            let kept = boxes.iter().filter(|bx| filter.is_feasible(bx)).count();
            std::hint::black_box(kept)
        })
    });
    c.bench_function("ablalt_full_stream_gating", |b| {
        b.iter(|| std::hint::black_box(evaluate(true).1))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_altitude
}
criterion_main!(benches);
