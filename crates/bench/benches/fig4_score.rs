//! FIG4 — the weighted composite Score. Prints the regenerated Fig. 4
//! table (best configuration per model under eq. 3's weights) and
//! benchmarks the scoring pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use dronet_eval::figures;
use dronet_eval::sweep::{best_per_model, cpu_sweep, SweepConfig};
use dronet_metrics::score::score_candidates;
use dronet_metrics::{MetricVector, ScoreWeights};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2))
}

fn bench_fig4(c: &mut Criterion) {
    let results = cpu_sweep(&SweepConfig::paper());
    eprintln!("\n{}", figures::fig4_table(&results).to_text());
    let best = best_per_model(&results);
    eprintln!(
        "winner: {} at input {}\n",
        best.iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap()
            .model,
        best.iter()
            .max_by(|a, b| a.score.total_cmp(&b.score))
            .unwrap()
            .input
    );

    let raw: Vec<MetricVector> = results.iter().map(|r| r.metrics).collect();
    let weights = ScoreWeights::paper();
    c.bench_function("fig4_score_36_candidates", |b| {
        b.iter(|| std::hint::black_box(score_candidates(&raw, &weights).len()))
    });
    c.bench_function("fig4_best_per_model", |b| {
        b.iter(|| std::hint::black_box(best_per_model(&results).len()))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig4
}
criterion_main!(benches);
