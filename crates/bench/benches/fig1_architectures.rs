//! FIG1/FIG2 — regenerates the architecture tables of Figs. 1-2 and
//! measures real host forward latency per model (at a reduced 192-pixel
//! input so the Tiny-YOLO-VOC baseline stays benchable; relative ratios
//! are preserved because every model is measured at the same size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dronet_bench::{input_image, model};
use dronet_core::ModelId;
use dronet_eval::figures;
use dronet_nn::cost::network_cost;
use std::time::Duration;

const BENCH_INPUT: usize = 192;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

fn print_tables_once() {
    eprintln!("\n==== FIG 1: baseline network structures ====");
    for summary in figures::fig1_architectures() {
        eprintln!("{summary}");
    }
    eprintln!("==== FIG 2: DroNet @512 ====\n{}", figures::fig2_dronet());
}

fn bench_forward_per_model(c: &mut Criterion) {
    print_tables_once();
    let mut group = c.benchmark_group("fig1_forward_latency");
    for id in ModelId::ALL {
        let mut net = model(id, BENCH_INPUT);
        let x = input_image(BENCH_INPUT, 42);
        let gflops = network_cost(&net).total_gflops();
        eprintln!("{:<14} {:.3} GFLOPs @{BENCH_INPUT}", id.name(), gflops);
        group.bench_function(BenchmarkId::from_parameter(id.name()), |b| {
            b.iter(|| std::hint::black_box(net.forward(&x).unwrap().len()))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_forward_per_model
}
criterion_main!(benches);
