//! TAB-A — extraction and verification of every Section IV claim. Prints
//! the full claim report and benchmarks the checker (it exercises the
//! whole analytic stack: zoo builds, cost model, projections, response
//! model, sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use dronet_eval::claims::check_all;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

fn bench_claims(c: &mut Criterion) {
    eprintln!("\n==== Section IV claims ====");
    for claim in check_all() {
        eprintln!("{claim}");
    }
    eprintln!();
    c.bench_function("tab_a_check_all_claims", |b| {
        b.iter(|| std::hint::black_box(check_all().len()))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_claims
}
criterion_main!(benches);
