//! Engine microbenchmarks: the kernels every experiment rests on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dronet_bench::rng;
use dronet_detect::nms::non_max_suppression;
use dronet_detect::Detection;
use dronet_metrics::BBox;
use dronet_nn::{Activation, Conv2d, MaxPool2d};
use dronet_tensor::im2col::{im2col, ConvGeometry};
use dronet_tensor::{gemm, init, Shape, Tensor};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2))
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    // Representative DroNet layer shapes as (m, k, n) GEMMs.
    for &(m, k, n, label) in &[
        (8usize, 27usize, 262_144usize, "c1@512"),
        (128, 576, 256, "c6@512-grid16"),
        (30, 128, 256, "head@512"),
        (256, 256, 1024, "square-mid"),
    ] {
        let mut r = rng(1);
        let a = init::uniform(Shape::matrix(m, k), -1.0, 1.0, &mut r);
        let b = init::uniform(Shape::matrix(k, n), -1.0, 1.0, &mut r);
        let mut out = Tensor::zeros(Shape::matrix(m, n));
        group.bench_function(BenchmarkId::from_parameter(label), |bench| {
            bench.iter(|| {
                gemm::sgemm(false, false, 1.0, &a, &b, 0.0, &mut out).unwrap();
                std::hint::black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

fn bench_im2col(c: &mut Criterion) {
    let mut group = c.benchmark_group("im2col");
    for &(ch, hw) in &[(3usize, 256usize), (16, 64), (64, 16)] {
        let geom = ConvGeometry {
            channels: ch,
            height: hw,
            width: hw,
            kernel: 3,
            stride: 1,
            pad: 1,
        };
        let x = init::uniform(Shape::nchw(1, ch, hw, hw), -1.0, 1.0, &mut rng(2));
        group.bench_function(
            BenchmarkId::from_parameter(format!("{ch}x{hw}x{hw}")),
            |b| b.iter(|| std::hint::black_box(im2col(&x, &geom).unwrap().len())),
        );
    }
    group.finish();
}

fn bench_conv_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward");
    for &(cin, cout, hw, label) in &[(3usize, 8usize, 256usize, "stem"), (64, 128, 16, "deep")] {
        let mut conv = Conv2d::new(cin, cout, 3, 1, 1, Activation::Leaky, true).unwrap();
        conv.init_weights(&mut rng(3));
        let x = init::uniform(Shape::nchw(1, cin, hw, hw), -1.0, 1.0, &mut rng(4));
        group.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| std::hint::black_box(conv.forward(&x).unwrap().len()))
        });
    }
    group.finish();
}

fn bench_maxpool(c: &mut Criterion) {
    let mut pool = MaxPool2d::new(2, 2).unwrap();
    let x = init::uniform(Shape::nchw(1, 16, 256, 256), -1.0, 1.0, &mut rng(5));
    c.bench_function("maxpool_2x2_16x256", |b| {
        b.iter(|| std::hint::black_box(pool.forward(&x).unwrap().len()))
    });
}

fn bench_nms(c: &mut Criterion) {
    let mut r = rng(6);
    let detections: Vec<Detection> = (0..500)
        .map(|i| {
            use rand::Rng;
            Detection {
                bbox: BBox::new(r.gen(), r.gen(), 0.05 + r.gen::<f32>() * 0.1, 0.05),
                objectness: 0.3 + 0.7 * (i as f32 / 500.0),
                class: 0,
                class_prob: 1.0,
            }
        })
        .collect();
    c.bench_function("nms_500_boxes", |b| {
        b.iter(|| std::hint::black_box(non_max_suppression(detections.clone(), 0.45).len()))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_gemm, bench_im2col, bench_conv_layer, bench_maxpool, bench_nms
}
criterion_main!(benches);
