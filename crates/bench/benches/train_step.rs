//! Training-pipeline benchmark: one forward+loss+backward+SGD step of
//! MicroDroNet on a synthetic batch — the unit of work behind the paper's
//! training stage.

use criterion::{criterion_group, criterion_main, Criterion};
use dronet_bench::bench_dataset;
use dronet_core::zoo;
use dronet_data::dataset::VehicleDataset;
use dronet_metrics::BBox;
use dronet_tensor::Tensor;
use dronet_train::{Sgd, YoloLoss, YoloLossConfig};
use std::time::Duration;

const INPUT: usize = 64;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

fn bench_train_step(c: &mut Criterion) {
    let dataset = bench_dataset(INPUT, 8);
    let anchors = vec![(0.8f32, 0.8f32), (1.4, 1.4), (2.0, 2.0)];
    let mut net = zoo::micro_dronet_with_width(INPUT, anchors, 2).unwrap();
    let region = net
        .layers()
        .last()
        .unwrap()
        .as_region()
        .unwrap()
        .config()
        .clone();
    let loss = YoloLoss::new(region, YoloLossConfig::default());
    let mut opt = Sgd::new(1e-3);

    // A fixed 8-image batch.
    let samples: Vec<_> = dataset
        .scenes()
        .iter()
        .map(|s| VehicleDataset::sample(s, INPUT))
        .collect();
    let images: Vec<Tensor> = samples.iter().map(|s| s.image.clone()).collect();
    let batch = Tensor::stack_batch(&images).unwrap();
    let truths: Vec<Vec<BBox>> = samples.iter().map(|s| s.boxes.clone()).collect();

    c.bench_function("train_forward_only_batch8", |b| {
        b.iter(|| std::hint::black_box(net.forward(&batch).unwrap().len()))
    });

    c.bench_function("train_full_sgd_step_batch8", |b| {
        b.iter(|| {
            let out = net.forward_train(&batch).unwrap();
            let (breakdown, grad) = loss.evaluate(&out, &truths).unwrap();
            net.backward(&grad).unwrap();
            opt.step(&mut net, 8);
            net.zero_grads();
            std::hint::black_box(breakdown.total())
        })
    });

    c.bench_function("train_loss_eval_only", |b| {
        let out = net.forward(&batch).unwrap();
        b.iter(|| std::hint::black_box(loss.evaluate(&out, &truths).unwrap().0.total()))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_train_step
}
criterion_main!(benches);
