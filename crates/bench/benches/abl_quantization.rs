//! ABL-Q — the §V future-work ablation: INT8 post-training quantization.
//! Compares fp32 vs int8 forward latency, reports model-size compression
//! and output divergence, and projects the memory-roofline benefit.

use criterion::{criterion_group, criterion_main, Criterion};
use dronet_bench::{input_image, model};
use dronet_core::quant::{relative_output_error, QuantizedNetwork};
use dronet_core::ModelId;
use dronet_nn::cost::network_cost;
use std::time::Duration;

const INPUT: usize = 192;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3))
}

fn bench_quantization(c: &mut Criterion) {
    let mut fp32 = model(ModelId::DroNet, INPUT);
    let mut int8 = QuantizedNetwork::from_network(&fp32);
    let x = input_image(INPUT, 3);

    let rel = relative_output_error(&mut fp32, &mut int8, &x).unwrap();
    let compression = int8.compression_vs(&fp32);
    eprintln!("\n==== ABL-Q: INT8 post-training quantization (DroNet @{INPUT}) ====");
    eprintln!("weight compression: {compression:.2}x");
    eprintln!("relative output error: {rel:.4}");
    eprintln!(
        "fp32 weight footprint: {:.2} MB -> int8 {:.2} MB",
        network_cost(&fp32).weight_bytes() / (1024.0 * 1024.0),
        int8.weight_bytes() as f64 / (1024.0 * 1024.0)
    );

    c.bench_function("ablq_fp32_forward", |b| {
        b.iter(|| std::hint::black_box(fp32.forward(&x).unwrap().len()))
    });
    c.bench_function("ablq_int8_forward", |b| {
        b.iter(|| std::hint::black_box(int8.forward(&x).unwrap().len()))
    });
    c.bench_function("ablq_quantize_network", |b| {
        b.iter(|| std::hint::black_box(QuantizedNetwork::from_network(&fp32).weight_bytes()))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_quantization
}
criterion_main!(benches);
