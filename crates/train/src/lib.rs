//! # dronet-train
//!
//! The training stage of the DroNet pipeline: the YOLO detection loss the
//! paper trains with ("All models were trained using the loss function
//! defined in \[9\]"), stochastic gradient descent with momentum and weight
//! decay (Darknet's optimizer), learning-rate schedules, and a batch
//! training loop with checkpointing.
//!
//! * [`YoloLoss`] — region-layer detection loss: coordinate regression,
//!   objectness with no-object suppression, and class cross-entropy, with
//!   analytic gradients matching the region layer's gradient contract,
//! * [`Sgd`] — SGD + momentum + weight decay over a [`dronet_nn::Network`],
//! * [`LrSchedule`] — constant, burn-in polynomial, and step schedules,
//! * [`Trainer`] — epoch loop over a [`dronet_data::dataset::VehicleDataset`]
//!   with per-epoch loss reporting and optional weight checkpoints,
//! * [`CheckpointStore`] — durable, CRC-guarded, rotating training
//!   checkpoints (weights + optimizer + schedule position) with torn-write
//!   recovery, enabling bit-identical crash/resume via
//!   [`Trainer::train_resumable`],
//! * [`DivergenceSentry`] — NaN/spike detection with
//!   rollback-to-last-good-checkpoint and LR backoff under a bounded retry
//!   budget,
//! * [`crash`] — deterministic crash/fault injection used by the chaos
//!   tests to prove the recovery paths.
//!
//! # Example
//!
//! ```no_run
//! use dronet_data::dataset::VehicleDataset;
//! use dronet_data::scene::SceneConfig;
//! use dronet_train::{Trainer, TrainConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dataset = VehicleDataset::generate(SceneConfig::default(), 32, 0.75, 1);
//! let mut net = dronet_nn::cfg::parse(include_str!("../../core/cfgs/dronet.cfg"))?;
//! net.set_input_size(128, 128)?;
//! let report = Trainer::new(TrainConfig::default()).train(&mut net, &dataset)?;
//! println!("final loss {}", report.epoch_losses.last().unwrap());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adam;
mod checkpoint;
mod loss;
mod optimizer;
mod schedule;
mod sentry;
mod trainer;

pub mod crash;
pub mod gradcheck;

pub use adam::{Adam, AdamState};
pub use checkpoint::{
    crc32, Checkpoint, CheckpointError, CheckpointStore, OptimizerState, Recovery, CHECKPOINT_EXT,
};
pub use loss::{LossBreakdown, YoloLoss, YoloLossConfig};
pub use optimizer::{Sgd, SgdState};
pub use schedule::LrSchedule;
pub use sentry::{DivergenceSentry, SentryConfig, TrainHealth, TripReason};
pub use trainer::{TrainConfig, TrainError, TrainEvent, TrainReport, Trainer, TRAIN_EVENT_TAIL};
