use dronet_nn::Network;

/// Serializable snapshot of an [`Adam`] optimizer's mutable state.
///
/// Crucially includes `step_count`: Adam's bias correction divides by
/// `1 - beta^t`, so a restart that zeroes the timestep re-applies the large
/// early-step corrections to late-training moments and kicks the weights.
/// Before [`Adam::state`]/[`Adam::restore_state`] existed the timestep was
/// unrecoverable after a restart; now it round-trips with the buffers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AdamState {
    /// Number of steps taken (the `t` in the bias-correction terms).
    pub step_count: u64,
    /// First-moment buffers in parameter-visitation order.
    pub m: Vec<Vec<f32>>,
    /// Second-moment buffers in parameter-visitation order.
    pub v: Vec<Vec<f32>>,
}

/// Adam optimizer (Kingma & Ba) over a [`Network`].
///
/// The paper trains with Darknet's SGD+momentum ([`crate::Sgd`]); Adam is
/// provided as the conventional alternative for the synthetic-benchmark
/// experiments — it typically reaches a usable detector in fewer epochs on
/// the MicroDroNet scale, at the cost of straying from the paper's exact
/// recipe.
///
/// # Example
///
/// ```
/// use dronet_train::Adam;
/// let mut opt = Adam::new(1e-3);
/// assert_eq!(opt.learning_rate(), 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates Adam with the canonical defaults (`beta1=0.9`,
    /// `beta2=0.999`, `eps=1e-8`) and no weight decay.
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is non-positive.
    pub fn new(learning_rate: f32) -> Self {
        Adam::with_hyperparams(learning_rate, 0.9, 0.999, 0.0)
    }

    /// Creates Adam with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics for a non-positive learning rate or betas outside `[0, 1)`.
    pub fn with_hyperparams(learning_rate: f32, beta1: f32, beta2: f32, weight_decay: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 {beta1} outside [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 {beta2} outside [0, 1)");
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Adam {
            learning_rate,
            beta1,
            beta2,
            eps: 1e-8,
            weight_decay,
            step_count: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Updates the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
    }

    /// Number of steps taken so far (the bias-correction timestep).
    pub fn step_count(&self) -> u64 {
        self.step_count
    }

    /// Snapshot of the moment buffers and timestep for checkpointing.
    pub fn state(&self) -> AdamState {
        AdamState {
            step_count: self.step_count,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::state`], including the
    /// bias-correction timestep. Layout is validated lazily on the next
    /// [`Adam::step`]; validate against the target network first when the
    /// state comes from an untrusted checkpoint.
    pub fn restore_state(&mut self, state: AdamState) {
        self.step_count = state.step_count;
        self.m = state.m;
        self.v = state.v;
    }

    /// Applies one Adam step using the gradients accumulated in `net`,
    /// normalised by `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero or the parameter layout changed
    /// since the first step.
    pub fn step(&mut self, net: &mut Network, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        self.step_count += 1;
        let scale = 1.0 / batch_size as f32;
        let lr = self.learning_rate;
        let (b1, b2, eps, decay) = (self.beta1, self.beta2, self.eps, self.weight_decay);
        // Bias correction.
        let bc1 = 1.0 - b1.powi(self.step_count as i32);
        let bc2 = 1.0 - b2.powi(self.step_count as i32);
        let m_buf = &mut self.m;
        let v_buf = &mut self.v;
        let first_run = m_buf.is_empty();
        let mut slot = 0usize;
        net.visit_params_mut(|params, grads| {
            if first_run {
                m_buf.push(vec![0.0f32; params.len()]);
                v_buf.push(vec![0.0f32; params.len()]);
            }
            let m = &mut m_buf[slot];
            let v = &mut v_buf[slot];
            assert_eq!(
                m.len(),
                params.len(),
                "parameter group {slot} changed size since the first step"
            );
            for i in 0..params.len() {
                let g = grads[i] * scale + decay * params[i];
                m[i] = b1 * m[i] + (1.0 - b1) * g;
                v[i] = b2 * v[i] + (1.0 - b2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                params[i] -= lr * m_hat / (v_hat.sqrt() + eps);
            }
            slot += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_nn::{Activation, Conv2d, Layer};
    use dronet_tensor::{Shape, Tensor};

    fn one_conv_net() -> Network {
        let mut net = Network::new(1, 4, 4);
        net.push(Layer::conv(
            Conv2d::new(1, 1, 1, 1, 0, Activation::Linear, false).unwrap(),
        ));
        net.visit_params_mut(|p, _| p.iter_mut().for_each(|x| *x = 0.0));
        net
    }

    fn quadratic_loss_run(opt: &mut Adam, steps: usize) -> f32 {
        let mut net = one_conv_net();
        let x = Tensor::ones(Shape::nchw(1, 1, 4, 4));
        let target = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
        let mut loss = f32::INFINITY;
        for _ in 0..steps {
            let y = net.forward_train(&x).unwrap();
            let diff = y.sub(&target).unwrap();
            loss = diff.dot(&diff).unwrap();
            let mut grad = diff;
            grad.scale(2.0);
            net.zero_grads();
            net.forward_train(&x).unwrap();
            net.backward(&grad).unwrap();
            opt.step(&mut net, 1);
        }
        loss
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05);
        let loss = quadratic_loss_run(&mut opt, 300);
        assert!(loss < 1e-2, "Adam failed to converge: {loss}");
    }

    #[test]
    fn bias_correction_gives_large_first_step() {
        // With bias correction, the very first step has magnitude ~lr
        // regardless of gradient scale.
        let mut net = one_conv_net();
        net.visit_params_mut(|_, g| g.iter_mut().for_each(|x| *x = 1000.0));
        let mut opt = Adam::new(0.01);
        opt.step(&mut net, 1);
        let mut w = 0.0;
        net.visit_params_mut(|p, _| w = p[0]);
        assert!((w + 0.01).abs() < 1e-4, "first step {w}, expected ~-lr");
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut net = one_conv_net();
        net.visit_params_mut(|p, _| p.iter_mut().for_each(|x| *x = 1.0));
        let mut opt = Adam::with_hyperparams(0.01, 0.9, 0.999, 0.1);
        for _ in 0..50 {
            net.zero_grads();
            opt.step(&mut net, 1);
        }
        let mut w = 1.0;
        net.visit_params_mut(|p, _| w = p[0]);
        assert!(w < 0.9, "decay did not shrink weight: {w}");
    }

    #[test]
    fn state_roundtrip_preserves_timestep_and_trajectory() {
        let drive = |net: &mut Network, opt: &mut Adam, steps: usize| {
            let x = Tensor::ones(Shape::nchw(1, 1, 4, 4));
            let target = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
            for _ in 0..steps {
                let y = net.forward_train(&x).unwrap();
                let mut grad = y.sub(&target).unwrap();
                grad.scale(2.0);
                net.zero_grads();
                net.forward_train(&x).unwrap();
                net.backward(&grad).unwrap();
                opt.step(net, 1);
            }
        };
        let weight = |net: &mut Network| {
            let mut w = 0.0;
            net.visit_params_mut(|p, _| w = p[0]);
            w
        };
        let mut net_a = one_conv_net();
        let mut opt_a = Adam::new(0.05);
        drive(&mut net_a, &mut opt_a, 20);

        let mut net_b = one_conv_net();
        let mut opt_b = Adam::new(0.05);
        drive(&mut net_b, &mut opt_b, 10);
        let snapshot = opt_b.state();
        assert_eq!(snapshot.step_count, 10, "timestep must be recoverable");
        let mut opt_c = Adam::new(0.05);
        opt_c.restore_state(snapshot.clone());
        assert_eq!(opt_c.state(), snapshot);
        assert_eq!(opt_c.step_count(), 10);
        drive(&mut net_b, &mut opt_c, 10);
        assert_eq!(
            weight(&mut net_a).to_bits(),
            weight(&mut net_b).to_bits(),
            "restored Adam must continue bit-identically"
        );
    }

    #[test]
    fn dropping_the_timestep_perturbs_the_trajectory() {
        // The bug state()/restore_state() fixes: a restart that keeps the
        // moments but zeroes step_count changes the update (stale bias
        // correction), so the two runs diverge.
        let drive = |net: &mut Network, opt: &mut Adam, steps: usize| {
            let x = Tensor::ones(Shape::nchw(1, 1, 4, 4));
            let target = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
            for _ in 0..steps {
                let y = net.forward_train(&x).unwrap();
                let mut grad = y.sub(&target).unwrap();
                grad.scale(2.0);
                net.zero_grads();
                net.forward_train(&x).unwrap();
                net.backward(&grad).unwrap();
                opt.step(net, 1);
            }
        };
        let weight = |net: &mut Network| {
            let mut w = 0.0;
            net.visit_params_mut(|p, _| w = p[0]);
            w
        };
        let mut net_a = one_conv_net();
        let mut opt_a = Adam::new(0.05);
        drive(&mut net_a, &mut opt_a, 20);

        let mut net_b = one_conv_net();
        let mut opt_b = Adam::new(0.05);
        drive(&mut net_b, &mut opt_b, 10);
        let mut amnesiac = opt_b.state();
        amnesiac.step_count = 0; // simulate the pre-fix restart
        let mut opt_c = Adam::new(0.05);
        opt_c.restore_state(amnesiac);
        drive(&mut net_b, &mut opt_c, 10);
        assert_ne!(
            weight(&mut net_a).to_bits(),
            weight(&mut net_b).to_bits(),
            "zeroed timestep should not reproduce the straight run"
        );
    }

    #[test]
    #[should_panic(expected = "learning rate")]
    fn zero_lr_rejected() {
        Adam::new(0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        Adam::new(0.1).step(&mut one_conv_net(), 0);
    }
}
