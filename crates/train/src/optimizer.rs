use dronet_nn::Network;

/// Serializable snapshot of an [`Sgd`] optimizer's mutable state: the
/// per-parameter-group momentum buffers. Hyper-parameters (learning rate,
/// momentum, decay) are configuration, not state — a restored run rebuilds
/// them from its [`crate::TrainConfig`] and restores only the buffers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SgdState {
    /// Momentum buffers in parameter-visitation order; empty before the
    /// first step.
    pub velocity: Vec<Vec<f32>>,
}

/// Stochastic gradient descent with momentum and weight decay — Darknet's
/// optimizer, with its default hyper-parameters (`momentum=0.9`,
/// `decay=0.0005`).
///
/// Momentum buffers are allocated lazily on the first step and keyed by the
/// network's stable parameter visitation order; using one `Sgd` instance
/// across networks with different architectures is rejected.
///
/// # Example
///
/// ```
/// use dronet_train::Sgd;
/// let mut opt = Sgd::new(1e-3);
/// assert_eq!(opt.learning_rate(), 1e-3);
/// opt.set_learning_rate(1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    /// Creates SGD with Darknet's default momentum (0.9) and decay (5e-4).
    pub fn new(learning_rate: f32) -> Self {
        Sgd::with_hyperparams(learning_rate, 0.9, 5e-4)
    }

    /// Creates SGD with explicit hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics when the learning rate is non-positive or momentum is outside
    /// `[0, 1)`.
    pub fn with_hyperparams(learning_rate: f32, momentum: f32, weight_decay: f32) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum {momentum} outside [0, 1)"
        );
        assert!(weight_decay >= 0.0, "weight decay must be non-negative");
        Sgd {
            learning_rate,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Updates the learning rate (called by schedules between batches).
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.learning_rate = lr;
    }

    /// Snapshot of the momentum buffers for checkpointing. Empty until the
    /// first [`Sgd::step`].
    pub fn state(&self) -> SgdState {
        SgdState {
            velocity: self.velocity.clone(),
        }
    }

    /// Restores momentum buffers captured by [`Sgd::state`]. The layout is
    /// validated lazily: the next [`Sgd::step`] panics if the buffers do
    /// not match the network's parameter groups, so validate against the
    /// target network first when loading untrusted checkpoints (the
    /// trainer's checkpoint restore path does).
    pub fn restore_state(&mut self, state: SgdState) {
        self.velocity = state.velocity;
    }

    /// Applies one update step using the gradients accumulated in `net`,
    /// normalised by `batch_size`, then leaves the gradients untouched
    /// (call [`Network::zero_grads`] before the next accumulation).
    ///
    /// # Panics
    ///
    /// Panics when `batch_size` is zero or the network's parameter layout
    /// changed since the first step.
    pub fn step(&mut self, net: &mut Network, batch_size: usize) {
        assert!(batch_size > 0, "batch size must be positive");
        let scale = 1.0 / batch_size as f32;
        let lr = self.learning_rate;
        let momentum = self.momentum;
        let decay = self.weight_decay;
        let velocity = &mut self.velocity;
        let mut slot = 0usize;
        let first_run = velocity.is_empty();
        net.visit_params_mut(|params, grads| {
            if first_run {
                velocity.push(vec![0.0f32; params.len()]);
            }
            let v = velocity
                .get_mut(slot)
                .unwrap_or_else(|| panic!("optimizer saw a new parameter group {slot}"));
            assert_eq!(
                v.len(),
                params.len(),
                "parameter group {slot} changed size since the first step"
            );
            for i in 0..params.len() {
                let g = grads[i] * scale + decay * params[i];
                v[i] = momentum * v[i] - lr * g;
                params[i] += v[i];
            }
            slot += 1;
        });
        if !first_run {
            assert_eq!(
                slot,
                velocity.len(),
                "network has {slot} parameter groups but optimizer tracked {}",
                velocity.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_nn::{Activation, Conv2d, Layer};
    use dronet_tensor::{Shape, Tensor};

    fn one_conv_net() -> Network {
        let mut net = Network::new(1, 4, 4);
        net.push(Layer::conv(
            Conv2d::new(1, 1, 1, 1, 0, Activation::Linear, false).unwrap(),
        ));
        net
    }

    /// Quadratic toy problem: minimise sum((w*x - t)^2) over one 1x1 conv.
    #[test]
    fn sgd_descends_a_quadratic() {
        let mut net = one_conv_net();
        // start from a known weight
        net.visit_params_mut(|p, _| {
            for v in p.iter_mut() {
                *v = 0.0;
            }
        });
        let x = Tensor::ones(Shape::nchw(1, 1, 4, 4));
        let target = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
        let mut opt = Sgd::with_hyperparams(0.01, 0.0, 0.0);
        let mut last_loss = f32::INFINITY;
        for _ in 0..200 {
            let y = net.forward_train(&x).unwrap();
            let diff = y.sub(&target).unwrap();
            let loss = diff.dot(&diff).unwrap();
            let mut grad = diff.clone();
            grad.scale(2.0);
            net.zero_grads();
            // re-run forward to restore the cache consumed by backward
            net.forward_train(&x).unwrap();
            net.backward(&grad).unwrap();
            opt.step(&mut net, 1);
            assert!(
                loss <= last_loss + 1e-3,
                "loss went up: {last_loss} -> {loss}"
            );
            last_loss = loss;
        }
        assert!(last_loss < 1e-2, "did not converge: {last_loss}");
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let run = |momentum: f32| -> f32 {
            let mut net = one_conv_net();
            net.visit_params_mut(|p, _| p.iter_mut().for_each(|v| *v = 0.0));
            let x = Tensor::ones(Shape::nchw(1, 1, 4, 4));
            let target = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
            let mut opt = Sgd::with_hyperparams(0.001, momentum, 0.0);
            let mut best = f32::INFINITY;
            for _ in 0..60 {
                let y = net.forward_train(&x).unwrap();
                let diff = y.sub(&target).unwrap();
                best = best.min(diff.dot(&diff).unwrap());
                let mut grad = diff;
                grad.scale(2.0);
                net.zero_grads();
                net.forward_train(&x).unwrap();
                net.backward(&grad).unwrap();
                opt.step(&mut net, 1);
            }
            best
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut net = one_conv_net();
        net.visit_params_mut(|p, _| p.iter_mut().for_each(|v| *v = 1.0));
        let mut opt = Sgd::with_hyperparams(0.1, 0.0, 0.01);
        // no forward/backward: gradients are zero, only decay acts
        opt.step(&mut net, 1);
        let mut w = 0.0;
        net.visit_params_mut(|p, _| w = p[0]);
        assert!(w < 1.0 && w > 0.99 - 0.01, "w = {w}");
    }

    #[test]
    fn batch_size_scales_gradient() {
        let make = |batch: usize| -> f32 {
            let mut net = one_conv_net();
            net.visit_params_mut(|p, _| p.iter_mut().for_each(|v| *v = 0.0));
            // manually set gradient to 1.0
            net.visit_params_mut(|_, g| g.iter_mut().for_each(|v| *v = 1.0));
            let mut opt = Sgd::with_hyperparams(1.0, 0.0, 0.0);
            opt.step(&mut net, batch);
            let mut w = 0.0;
            net.visit_params_mut(|p, _| w = p[0]);
            w
        };
        assert!((make(1) - -1.0).abs() < 1e-6);
        assert!((make(4) - -0.25).abs() < 1e-6);
    }

    #[test]
    fn state_roundtrip_resumes_identically() {
        let drive = |net: &mut Network, opt: &mut Sgd, steps: usize| {
            let x = Tensor::ones(Shape::nchw(1, 1, 4, 4));
            let target = Tensor::full(Shape::nchw(1, 1, 4, 4), 3.0);
            for _ in 0..steps {
                let y = net.forward_train(&x).unwrap();
                let mut grad = y.sub(&target).unwrap();
                grad.scale(2.0);
                net.zero_grads();
                net.forward_train(&x).unwrap();
                net.backward(&grad).unwrap();
                opt.step(net, 1);
            }
        };
        let weight = |net: &mut Network| {
            let mut w = 0.0;
            net.visit_params_mut(|p, _| w = p[0]);
            w
        };
        // Straight run: 6 steps.
        let mut net_a = one_conv_net();
        net_a.visit_params_mut(|p, _| p.iter_mut().for_each(|v| *v = 0.0));
        let mut opt_a = Sgd::with_hyperparams(0.01, 0.9, 0.0);
        drive(&mut net_a, &mut opt_a, 6);
        // Split run: 3 steps, snapshot, fresh optimizer restored, 3 more.
        let mut net_b = one_conv_net();
        net_b.visit_params_mut(|p, _| p.iter_mut().for_each(|v| *v = 0.0));
        let mut opt_b = Sgd::with_hyperparams(0.01, 0.9, 0.0);
        drive(&mut net_b, &mut opt_b, 3);
        let snapshot = opt_b.state();
        assert_eq!(
            snapshot.velocity.len(),
            2,
            "bias + weights parameter groups"
        );
        let mut opt_c = Sgd::with_hyperparams(0.01, 0.9, 0.0);
        opt_c.restore_state(snapshot.clone());
        assert_eq!(opt_c.state(), snapshot);
        drive(&mut net_b, &mut opt_c, 3);
        // Momentum survived the restart: trajectories are bit-identical.
        assert_eq!(weight(&mut net_a).to_bits(), weight(&mut net_b).to_bits());
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_rejected() {
        Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_rejected() {
        let mut net = one_conv_net();
        Sgd::new(0.1).step(&mut net, 0);
    }
}
