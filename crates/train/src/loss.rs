use dronet_metrics::BBox;
use dronet_nn::{NnError, RegionConfig};
use dronet_tensor::Tensor;

/// Scales and thresholds of the YOLO region loss.
///
/// Defaults are Darknet's region-layer defaults (`object_scale=5`,
/// `noobject_scale=1`, `coord_scale=1`, `class_scale=1`, ignore threshold
/// 0.6), which is what the paper's training used.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YoloLossConfig {
    /// Weight on the coordinate regression terms.
    pub coord_scale: f32,
    /// Weight on the objectness term of matched anchors.
    pub object_scale: f32,
    /// Weight on the objectness suppression of unmatched anchors.
    pub noobject_scale: f32,
    /// Weight on the classification term.
    pub class_scale: f32,
    /// Predicted boxes overlapping ground truth above this IoU are exempt
    /// from no-object suppression.
    pub ignore_thresh: f32,
}

impl Default for YoloLossConfig {
    fn default() -> Self {
        YoloLossConfig {
            coord_scale: 1.0,
            object_scale: 5.0,
            noobject_scale: 1.0,
            class_scale: 1.0,
            ignore_thresh: 0.6,
        }
    }
}

/// Loss value broken into its components (useful for training diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LossBreakdown {
    /// Coordinate regression loss.
    pub coord: f32,
    /// Objectness loss on matched anchors.
    pub object: f32,
    /// No-object suppression loss.
    pub noobject: f32,
    /// Classification cross-entropy.
    pub class: f32,
    /// Number of ground-truth boxes that were assigned an anchor.
    pub matched: usize,
}

impl LossBreakdown {
    /// Total scalar loss.
    pub fn total(&self) -> f32 {
        self.coord + self.object + self.noobject + self.class
    }
}

/// The YOLO detection loss over a region layer's transformed output.
///
/// The forward/gradient pair follows the region layer's gradient contract
/// (see [`dronet_nn::RegionLayer`]): gradients on x/y/objectness are with
/// respect to the post-logistic values, gradients on w/h are with respect
/// to the raw values, and gradients on classes are with respect to the
/// logits (`p - t`).
#[derive(Debug, Clone)]
pub struct YoloLoss {
    region: RegionConfig,
    config: YoloLossConfig,
}

impl YoloLoss {
    /// Creates the loss for a region head configuration.
    pub fn new(region: RegionConfig, config: YoloLossConfig) -> Self {
        YoloLoss { region, config }
    }

    /// The region configuration this loss was built for.
    pub fn region(&self) -> &RegionConfig {
        &self.region
    }

    /// Computes the loss and its gradient for a batch.
    ///
    /// `output` is the region layer's transformed output
    /// `[n, A*(5+C), H, W]`; `truths[b]` holds the ground-truth boxes of
    /// batch item `b` (class 0 is assumed for every truth, matching the
    /// paper's single-class task; multi-class truths use
    /// [`YoloLoss::evaluate_with_classes`]).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on shape mismatch.
    pub fn evaluate(
        &self,
        output: &Tensor,
        truths: &[Vec<BBox>],
    ) -> Result<(LossBreakdown, Tensor), NnError> {
        let with_classes: Vec<Vec<(BBox, usize)>> = truths
            .iter()
            .map(|boxes| boxes.iter().map(|&b| (b, 0usize)).collect())
            .collect();
        self.evaluate_with_classes(output, &with_classes)
    }

    /// Multi-class variant of [`YoloLoss::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] on shape mismatch or out-of-range
    /// class indices.
    pub fn evaluate_with_classes(
        &self,
        output: &Tensor,
        truths: &[Vec<(BBox, usize)>],
    ) -> Result<(LossBreakdown, Tensor), NnError> {
        let s = output.shape();
        let a = self.region.num_anchors();
        let classes = self.region.classes;
        let entries = 5 + classes;
        if s.rank() != 4 || s.channels() != a * entries {
            return Err(NnError::BadInput {
                expected: vec![truths.len(), a * entries, 0, 0],
                actual: s.dims().to_vec(),
            });
        }
        if s.batch() != truths.len() {
            return Err(NnError::BadInput {
                expected: vec![truths.len(), a * entries, 0, 0],
                actual: s.dims().to_vec(),
            });
        }
        let (n, gh, gw) = (s.batch(), s.height(), s.width());
        let plane = gh * gw;
        let out = output.as_slice();
        let mut grad = Tensor::zeros(*s);
        let g = grad.as_mut_slice();
        let mut breakdown = LossBreakdown::default();
        let cfg = &self.config;

        // Entry accessor: flat index of (batch, anchor, entry, cell).
        let at = |b: usize, anchor: usize, entry: usize, cell: usize| -> usize {
            ((b * a + anchor) * entries + entry) * plane + cell
        };

        #[allow(clippy::needless_range_loop)] // b also feeds the flat-index closure
        for b in 0..n {
            for truth in &truths[b] {
                let (_bbox, class) = truth;
                if *class >= classes {
                    return Err(NnError::BadInput {
                        expected: vec![classes],
                        actual: vec![*class],
                    });
                }
            }

            // 1. No-object suppression everywhere (matched cells are fixed
            //    up afterwards), skipping predictions that already overlap a
            //    truth well.
            for anchor in 0..a {
                let (aw, ah) = self.region.anchors[anchor];
                for cell in 0..plane {
                    let row = cell / gw;
                    let col = cell % gw;
                    let obj_idx = at(b, anchor, 4, cell);
                    let obj = out[obj_idx];
                    let pred = self.decode_box(out, &at, b, anchor, cell, col, row, gw, gh, aw, ah);
                    let best_iou = truths[b]
                        .iter()
                        .map(|(t, _)| pred.iou(t))
                        .fold(0.0f32, f32::max);
                    if best_iou < cfg.ignore_thresh {
                        breakdown.noobject += cfg.noobject_scale * obj * obj;
                        g[obj_idx] += 2.0 * cfg.noobject_scale * obj;
                    }
                }
            }

            // 2. Matched anchors: coordinates, objectness, class.
            for (bbox, class) in &truths[b] {
                if bbox.w <= 0.0 || bbox.h <= 0.0 {
                    continue;
                }
                let col =
                    ((bbox.cx * gw as f32).floor() as isize).clamp(0, gw as isize - 1) as usize;
                let row =
                    ((bbox.cy * gh as f32).floor() as isize).clamp(0, gh as isize - 1) as usize;
                let cell = row * gw + col;

                // Best anchor by shape IoU (both centred at the origin).
                let tw_cells = bbox.w * gw as f32;
                let th_cells = bbox.h * gh as f32;
                let mut best_anchor = 0usize;
                let mut best_iou = -1.0f32;
                for (i, &(aw, ah)) in self.region.anchors.iter().enumerate() {
                    let iou = shape_iou(tw_cells, th_cells, aw, ah);
                    if iou > best_iou {
                        best_iou = iou;
                        best_anchor = i;
                    }
                }
                let (aw, ah) = self.region.anchors[best_anchor];

                // Coordinate targets.
                let tx = bbox.cx * gw as f32 - col as f32;
                let ty = bbox.cy * gh as f32 - row as f32;
                let tw = (tw_cells / aw).max(1e-9).ln();
                let th = (th_cells / ah).max(1e-9).ln();

                let xi = at(b, best_anchor, 0, cell);
                let yi = at(b, best_anchor, 1, cell);
                let wi = at(b, best_anchor, 2, cell);
                let hi = at(b, best_anchor, 3, cell);
                let oi = at(b, best_anchor, 4, cell);

                // Darknet scales the coord loss by (2 - w*h) to emphasise
                // small boxes; we keep that refinement.
                let size_scale = cfg.coord_scale * (2.0 - bbox.w * bbox.h);
                for (idx, target) in [(xi, tx), (yi, ty), (wi, tw), (hi, th)] {
                    let diff = out[idx] - target;
                    breakdown.coord += size_scale * diff * diff;
                    g[idx] += 2.0 * size_scale * diff;
                }

                // Objectness: replace whatever the no-object pass wrote.
                let obj = out[oi];
                let noobj_exempt = {
                    let pred =
                        self.decode_box(out, &at, b, best_anchor, cell, col, row, gw, gh, aw, ah);
                    let iou = pred.iou(bbox);
                    iou >= cfg.ignore_thresh
                };
                if !noobj_exempt {
                    // Undo the suppression applied in pass 1.
                    breakdown.noobject -= cfg.noobject_scale * obj * obj;
                    g[oi] -= 2.0 * cfg.noobject_scale * obj;
                }
                let odiff = obj - 1.0;
                breakdown.object += cfg.object_scale * odiff * odiff;
                g[oi] += 2.0 * cfg.object_scale * odiff;
                breakdown.matched += 1;

                // Classification: cross-entropy on the softmax output; the
                // gradient on logits is (p - t).
                if classes > 1 {
                    for c in 0..classes {
                        let ci = at(b, best_anchor, 5 + c, cell);
                        let p = out[ci].clamp(1e-7, 1.0);
                        let t = if c == *class { 1.0 } else { 0.0 };
                        if c == *class {
                            breakdown.class += -cfg.class_scale * p.ln();
                        }
                        g[ci] += cfg.class_scale * (p - t);
                    }
                }
                // With a single class the softmax output is constant 1 and
                // contributes neither loss nor gradient.
            }
        }
        Ok((breakdown, grad))
    }

    /// Decodes the predicted box at (batch, anchor, cell) into normalised
    /// image coordinates.
    #[allow(clippy::too_many_arguments)]
    fn decode_box(
        &self,
        out: &[f32],
        at: &impl Fn(usize, usize, usize, usize) -> usize,
        b: usize,
        anchor: usize,
        cell: usize,
        col: usize,
        row: usize,
        gw: usize,
        gh: usize,
        aw: f32,
        ah: f32,
    ) -> BBox {
        let x = out[at(b, anchor, 0, cell)];
        let y = out[at(b, anchor, 1, cell)];
        // Clamp the raw extents so exp() cannot overflow early in training.
        let w_raw = out[at(b, anchor, 2, cell)].clamp(-8.0, 8.0);
        let h_raw = out[at(b, anchor, 3, cell)].clamp(-8.0, 8.0);
        BBox::new(
            (col as f32 + x) / gw as f32,
            (row as f32 + y) / gh as f32,
            aw * w_raw.exp() / gw as f32,
            ah * h_raw.exp() / gh as f32,
        )
    }
}

/// IoU of two boxes compared by shape only (both centred at the origin).
fn shape_iou(w1: f32, h1: f32, w2: f32, h2: f32) -> f32 {
    let inter = w1.min(w2) * h1.min(h2);
    let union = w1 * h1 + w2 * h2 - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_nn::RegionLayer;
    use dronet_tensor::{init, Shape};
    use rand::SeedableRng;

    fn region_1class() -> RegionConfig {
        RegionConfig {
            anchors: vec![(1.0, 1.0), (3.0, 3.0)],
            classes: 1,
        }
    }

    fn loss_1class() -> YoloLoss {
        YoloLoss::new(region_1class(), YoloLossConfig::default())
    }

    /// Build a region output where one anchor/cell predicts `truth`
    /// perfectly with objectness `obj`, everything else silent.
    fn perfect_output(gw: usize, gh: usize, truth: &BBox, obj: f32) -> Tensor {
        let region = region_1class();
        let entries = 6;
        let a = region.num_anchors();
        let mut t = Tensor::zeros(Shape::nchw(1, a * entries, gh, gw));
        let col = (truth.cx * gw as f32).floor() as usize;
        let row = (truth.cy * gh as f32).floor() as usize;
        let cell = row * gw + col;
        let plane = gw * gh;
        // pick best anchor like the loss does
        let tw = truth.w * gw as f32;
        let th = truth.h * gh as f32;
        let anchor = if shape_iou(tw, th, 1.0, 1.0) >= shape_iou(tw, th, 3.0, 3.0) {
            0
        } else {
            1
        };
        let (aw, ah) = region.anchors[anchor];
        let base = anchor * entries * plane;
        let d = t.as_mut_slice();
        d[base + cell] = truth.cx * gw as f32 - col as f32;
        d[base + plane + cell] = truth.cy * gh as f32 - row as f32;
        d[base + 2 * plane + cell] = (tw / aw).ln();
        d[base + 3 * plane + cell] = (th / ah).ln();
        d[base + 4 * plane + cell] = obj;
        // class prob entry (softmax of one class) is 1 everywhere
        for a_i in 0..a {
            let cb = a_i * entries * plane + 5 * plane;
            for i in 0..plane {
                d[cb + i] = 1.0;
            }
        }
        t
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss() {
        let truth = BBox::new(0.53, 0.48, 0.20, 0.15);
        let out = perfect_output(4, 4, &truth, 1.0);
        let loss = loss_1class();
        let (breakdown, grad) = loss.evaluate(&out, &[vec![truth]]).unwrap();
        assert_eq!(breakdown.matched, 1);
        assert!(breakdown.coord < 1e-8, "coord {}", breakdown.coord);
        assert!(breakdown.object < 1e-8, "object {}", breakdown.object);
        // The matched objectness entry has no gradient.
        assert!(grad.norm() < 1e-4, "grad norm {}", grad.norm());
    }

    #[test]
    fn zero_objectness_on_match_is_punished() {
        let truth = BBox::new(0.53, 0.48, 0.20, 0.15);
        let out = perfect_output(4, 4, &truth, 0.0);
        let (breakdown, grad) = loss_1class().evaluate(&out, &[vec![truth]]).unwrap();
        // object loss = 5 * (0 - 1)^2
        assert!((breakdown.object - 5.0).abs() < 1e-5);
        assert!(grad.norm() > 0.0);
    }

    #[test]
    fn spurious_objectness_is_suppressed() {
        let truth = BBox::new(0.53, 0.48, 0.20, 0.15);
        let mut out = perfect_output(4, 4, &truth, 1.0);
        // Light up a far-away cell on anchor 0.
        let plane = 16;
        let idx = 4 * plane + 2; // anchor 0, obj entry, cell 2
        out.as_mut_slice()[idx] = 0.9;
        let (breakdown, grad) = loss_1class().evaluate(&out, &[vec![truth]]).unwrap();
        assert!((breakdown.noobject - 0.81).abs() < 1e-4);
        assert!((grad.as_slice()[idx] - 1.8).abs() < 1e-4);
    }

    #[test]
    fn empty_truth_suppresses_everything() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let out = init::uniform(Shape::nchw(1, 12, 3, 3), 0.01, 0.99, &mut rng);
        let (breakdown, grad) = loss_1class().evaluate(&out, &[vec![]]).unwrap();
        assert_eq!(breakdown.matched, 0);
        assert_eq!(breakdown.coord, 0.0);
        assert!(breakdown.noobject > 0.0);
        // Only objectness entries carry gradient.
        let plane = 9;
        for anchor in 0..2 {
            for entry in 0..6 {
                for cell in 0..plane {
                    let idx = (anchor * 6 + entry) * plane + cell;
                    if entry == 4 {
                        assert!(grad.as_slice()[idx] != 0.0);
                    } else {
                        assert_eq!(grad.as_slice()[idx], 0.0, "entry {entry}");
                    }
                }
            }
        }
    }

    #[test]
    fn bad_shapes_are_rejected() {
        let out = Tensor::zeros(Shape::nchw(1, 10, 3, 3)); // wrong channels
        assert!(loss_1class().evaluate(&out, &[vec![]]).is_err());
        let out = Tensor::zeros(Shape::nchw(2, 12, 3, 3)); // batch mismatch
        assert!(loss_1class().evaluate(&out, &[vec![]]).is_err());
    }

    #[test]
    fn out_of_range_class_is_rejected() {
        let out = Tensor::zeros(Shape::nchw(1, 12, 3, 3));
        let truths = vec![vec![(BBox::new(0.5, 0.5, 0.2, 0.2), 1usize)]];
        assert!(loss_1class().evaluate_with_classes(&out, &truths).is_err());
    }

    #[test]
    fn big_box_picks_big_anchor() {
        // A nearly grid-sized box should match the (3,3) anchor, not (1,1).
        let truth = BBox::new(0.55, 0.55, 0.7, 0.7);
        let out = Tensor::zeros(Shape::nchw(1, 12, 4, 4));
        let (_, grad) = loss_1class().evaluate(&out, &[vec![truth]]).unwrap();
        let plane = 16;
        let cell = 2 * 4 + 2;
        // anchor 1 x-entry at the truth cell must have gradient
        let a1_x = (6) * plane + cell;
        assert!(grad.as_slice()[a1_x] != 0.0);
        // anchor 0 x-entry must not (only obj suppression there)
        let a0_x = cell;
        assert_eq!(grad.as_slice()[a0_x], 0.0);
    }

    /// End-to-end finite-difference check through the region layer: the
    /// loss gradient (which follows the region gradient contract) combined
    /// with `RegionLayer::backward` must match numeric differentiation of
    /// `loss(region(raw))` with respect to the raw input.
    #[test]
    fn gradient_matches_finite_differences_through_region() {
        let region_cfg = RegionConfig {
            anchors: vec![(1.2, 1.4), (3.0, 2.5)],
            classes: 3,
        };
        let loss = YoloLoss::new(region_cfg.clone(), YoloLossConfig::default());
        let truths = vec![vec![
            (BBox::new(0.42, 0.61, 0.25, 0.30), 1usize),
            (BBox::new(0.80, 0.20, 0.15, 0.12), 2usize),
        ]];
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let raw = init::uniform(
            Shape::nchw(1, region_cfg.channels(), 5, 5),
            -1.5,
            1.5,
            &mut rng,
        );

        let forward_loss = |raw: &Tensor| -> f32 {
            let mut layer = RegionLayer::new(region_cfg.clone()).unwrap();
            let out = layer.forward(raw).unwrap();
            loss.evaluate_with_classes(&out, &truths).unwrap().0.total()
        };

        let mut layer = RegionLayer::new(region_cfg.clone()).unwrap();
        let out = layer.forward_train(&raw).unwrap();
        let (_, grad_out) = loss.evaluate_with_classes(&out, &truths).unwrap();
        let grad_raw = layer.backward(&grad_out).unwrap();

        let eps = 1e-3f32;
        let mut checked = 0;
        // Probe a spread of entries: coords, obj, class, on both anchors.
        for probe in (0..raw.len()).step_by(37) {
            let mut rp = raw.clone();
            rp.as_mut_slice()[probe] += eps;
            let mut rm = raw.clone();
            rm.as_mut_slice()[probe] -= eps;
            let numeric = (forward_loss(&rp) - forward_loss(&rm)) / (2.0 * eps);
            let analytic = grad_raw.as_slice()[probe];
            assert!(
                (numeric - analytic).abs() < 5e-2 * numeric.abs().max(1.0),
                "probe {probe}: numeric {numeric} analytic {analytic}"
            );
            checked += 1;
        }
        assert!(checked > 10);
    }

    #[test]
    fn shape_iou_properties() {
        assert!((shape_iou(2.0, 2.0, 2.0, 2.0) - 1.0).abs() < 1e-6);
        assert!(shape_iou(1.0, 1.0, 3.0, 3.0) < 0.2);
        assert_eq!(shape_iou(0.0, 0.0, 0.0, 0.0), 0.0);
    }
}
