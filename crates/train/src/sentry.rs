//! Divergence sentry: detects a training run going off the rails and
//! drives the rollback/backoff policy in [`crate::Trainer`].
//!
//! Mirrors `detect::Supervisor`'s philosophy for the training half of the
//! pipeline: a long unattended run may not abort, so non-finite losses,
//! NaN gradients and exploding-loss spikes become *events with a recovery
//! policy* (roll back to the last good checkpoint, back the learning rate
//! off, retry under a bounded budget) instead of hours of wasted compute —
//! with the same `Healthy → Degraded → Halted` health machine on the obs
//! registry.

use std::fmt;

/// Health of a training run, exported as the `train.health` gauge
/// (`Healthy` = 0, `Degraded` = 1, `Halted` = 2).
///
/// Transitions: any sentry trip moves `Healthy → Degraded`; a clean streak
/// of [`SentryConfig::recover_after`] accepted steps moves `Degraded →
/// Healthy`; exhausting the rollback budget (or tripping with no
/// checkpoint store to roll back to) moves to terminal `Halted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TrainHealth {
    /// Training normally.
    #[default]
    Healthy,
    /// Recovering from a trip; at least one rollback happened recently.
    Degraded,
    /// Retry budget exhausted: the run stopped early (terminal).
    Halted,
}

impl TrainHealth {
    /// Numeric encoding for the `train.health` gauge.
    pub fn as_metric(self) -> f64 {
        match self {
            TrainHealth::Healthy => 0.0,
            TrainHealth::Degraded => 1.0,
            TrainHealth::Halted => 2.0,
        }
    }
}

/// Why the sentry tripped on a step.
#[derive(Debug, Clone, PartialEq)]
pub enum TripReason {
    /// The loss came back NaN or infinite.
    NonFiniteLoss {
        /// The offending loss value.
        loss: f32,
    },
    /// The global gradient norm is NaN or infinite.
    NonFiniteGradNorm,
    /// The loss spiked far above its recent EWMA.
    LossSpike {
        /// The offending loss value.
        loss: f32,
        /// The EWMA it was compared against.
        ewma: f32,
    },
}

impl fmt::Display for TripReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TripReason::NonFiniteLoss { loss } => write!(f, "non-finite loss {loss}"),
            TripReason::NonFiniteGradNorm => write!(f, "non-finite gradient norm"),
            TripReason::LossSpike { loss, ewma } => {
                write!(f, "loss spike {loss} vs EWMA {ewma}")
            }
        }
    }
}

/// Sentry thresholds and the recovery policy.
#[derive(Debug, Clone)]
pub struct SentryConfig {
    /// EWMA smoothing factor in `(0, 1]`; higher = faster tracking.
    pub ewma_alpha: f32,
    /// Trip when `loss > spike_factor * ewma` (after warm-up).
    pub spike_factor: f32,
    /// Global steps before the spike detector arms (the first batches of a
    /// run are legitimately noisy).
    pub warmup_steps: u64,
    /// Clip the global gradient norm (over the raw accumulated gradients)
    /// to this value; `None` disables clipping.
    pub grad_clip: Option<f32>,
    /// Rollbacks allowed before the run halts.
    pub max_rollbacks: u32,
    /// LR multiplier applied on every rollback (cumulative).
    pub lr_backoff: f32,
    /// Floor for the cumulative LR scale.
    pub min_lr_scale: f32,
    /// Consecutive clean steps required to recover `Degraded → Healthy`.
    pub recover_after: u64,
}

impl Default for SentryConfig {
    fn default() -> Self {
        SentryConfig {
            ewma_alpha: 0.2,
            spike_factor: 4.0,
            warmup_steps: 8,
            grad_clip: Some(1e4),
            max_rollbacks: 3,
            lr_backoff: 0.5,
            min_lr_scale: 1e-3,
            recover_after: 16,
        }
    }
}

impl SentryConfig {
    fn validate(&self) {
        assert!(
            self.ewma_alpha > 0.0 && self.ewma_alpha <= 1.0,
            "ewma_alpha {} outside (0, 1]",
            self.ewma_alpha
        );
        assert!(
            self.spike_factor > 1.0,
            "spike_factor {} must exceed 1",
            self.spike_factor
        );
        assert!(
            self.lr_backoff > 0.0 && self.lr_backoff < 1.0,
            "lr_backoff {} outside (0, 1)",
            self.lr_backoff
        );
        assert!(
            self.min_lr_scale > 0.0 && self.min_lr_scale <= 1.0,
            "min_lr_scale {} outside (0, 1]",
            self.min_lr_scale
        );
        if let Some(clip) = self.grad_clip {
            assert!(clip > 0.0, "grad_clip {clip} must be positive");
        }
    }
}

/// The detector itself: feed it every step's observed loss and gradient
/// norm; it answers with a [`TripReason`] when the run looks divergent.
///
/// The EWMA is part of the training state — the trainer checkpoints it and
/// restores it on resume/rollback, so sentry decisions replay
/// deterministically (see [`DivergenceSentry::ewma`] /
/// [`DivergenceSentry::restore_ewma`]).
#[derive(Debug, Clone)]
pub struct DivergenceSentry {
    config: SentryConfig,
    ewma: Option<f32>,
}

impl DivergenceSentry {
    /// Creates a sentry.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is out of range (zero alpha, spike
    /// factor ≤ 1, backoff outside `(0, 1)`…).
    pub fn new(config: SentryConfig) -> Self {
        config.validate();
        DivergenceSentry { config, ewma: None }
    }

    /// The configuration.
    pub fn config(&self) -> &SentryConfig {
        &self.config
    }

    /// The current EWMA of the loss, if any step has been accepted.
    pub fn ewma(&self) -> Option<f32> {
        self.ewma
    }

    /// Restores the EWMA from a checkpoint (or clears it with `None`).
    pub fn restore_ewma(&mut self, ewma: Option<f32>) {
        self.ewma = ewma;
    }

    /// Checks the gradient norm computed after `backward`. Non-finite →
    /// trip. Does not update any state.
    pub fn check_grad_norm(&self, norm: f64) -> Option<TripReason> {
        if norm.is_finite() {
            None
        } else {
            Some(TripReason::NonFiniteGradNorm)
        }
    }

    /// Checks the observed loss for step `step` (the global step index the
    /// batch will have once accepted). On acceptance (`None`) the EWMA is
    /// updated; on a trip the EWMA is left untouched so the replayed step
    /// is judged against the same baseline.
    pub fn check_loss(&mut self, step: u64, loss: f32) -> Option<TripReason> {
        if !loss.is_finite() {
            return Some(TripReason::NonFiniteLoss { loss });
        }
        if step >= self.config.warmup_steps {
            if let Some(ewma) = self.ewma {
                if ewma > 0.0 && loss > self.config.spike_factor * ewma {
                    return Some(TripReason::LossSpike { loss, ewma });
                }
            }
        }
        self.ewma = Some(match self.ewma {
            Some(e) => e + self.config.ewma_alpha * (loss - e),
            None => loss,
        });
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_metric_encoding() {
        assert_eq!(TrainHealth::Healthy.as_metric(), 0.0);
        assert_eq!(TrainHealth::Degraded.as_metric(), 1.0);
        assert_eq!(TrainHealth::Halted.as_metric(), 2.0);
        assert_eq!(TrainHealth::default(), TrainHealth::Healthy);
    }

    #[test]
    fn non_finite_loss_trips_immediately() {
        let mut s = DivergenceSentry::new(SentryConfig::default());
        assert!(matches!(
            s.check_loss(0, f32::NAN),
            Some(TripReason::NonFiniteLoss { .. })
        ));
        assert!(matches!(
            s.check_loss(0, f32::INFINITY),
            Some(TripReason::NonFiniteLoss { .. })
        ));
        assert_eq!(s.ewma(), None, "tripped steps do not move the EWMA");
    }

    #[test]
    fn non_finite_grad_norm_trips() {
        let s = DivergenceSentry::new(SentryConfig::default());
        assert!(s.check_grad_norm(1e30).is_none());
        assert!(matches!(
            s.check_grad_norm(f64::NAN),
            Some(TripReason::NonFiniteGradNorm)
        ));
        assert!(matches!(
            s.check_grad_norm(f64::INFINITY),
            Some(TripReason::NonFiniteGradNorm)
        ));
    }

    #[test]
    fn spike_detector_arms_after_warmup() {
        let mut s = DivergenceSentry::new(SentryConfig {
            warmup_steps: 4,
            spike_factor: 3.0,
            ..SentryConfig::default()
        });
        // During warm-up even huge jumps pass (and feed the EWMA).
        assert!(s.check_loss(0, 1.0).is_none());
        assert!(s.check_loss(1, 100.0).is_none());
        // Settle the EWMA back down.
        let mut s = DivergenceSentry::new(SentryConfig {
            warmup_steps: 4,
            spike_factor: 3.0,
            ..SentryConfig::default()
        });
        for step in 0..8 {
            assert!(s.check_loss(step, 2.0).is_none());
        }
        let ewma = s.ewma().unwrap();
        assert!((ewma - 2.0).abs() < 1e-6);
        // 3x the EWMA trips; slightly below does not.
        assert!(s.check_loss(8, 5.9).is_none());
        let trip = s.check_loss(9, 30.0);
        assert!(
            matches!(trip, Some(TripReason::LossSpike { .. })),
            "{trip:?}"
        );
    }

    #[test]
    fn ewma_restores_for_deterministic_replay() {
        let mut a = DivergenceSentry::new(SentryConfig::default());
        for step in 0..10 {
            a.check_loss(step, 1.0 + step as f32 * 0.1);
        }
        let saved = a.ewma();
        let mut b = DivergenceSentry::new(SentryConfig::default());
        b.restore_ewma(saved);
        assert_eq!(a.ewma(), b.ewma());
        // Identical observations produce identical verdicts afterwards.
        assert_eq!(a.check_loss(10, 2.0), b.check_loss(10, 2.0));
        assert_eq!(a.ewma().unwrap().to_bits(), b.ewma().unwrap().to_bits());
    }

    #[test]
    fn trip_reasons_display() {
        assert!(TripReason::NonFiniteLoss { loss: f32::NAN }
            .to_string()
            .contains("non-finite loss"));
        assert!(TripReason::LossSpike {
            loss: 10.0,
            ewma: 1.0
        }
        .to_string()
        .contains("spike"));
    }

    #[test]
    #[should_panic(expected = "spike_factor")]
    fn bad_spike_factor_rejected() {
        DivergenceSentry::new(SentryConfig {
            spike_factor: 0.5,
            ..SentryConfig::default()
        });
    }
}
