use crate::checkpoint::{Checkpoint, CheckpointError, CheckpointStore, OptimizerState};
use crate::crash::{TrainFault, TrainFaultPlan};
use crate::sentry::{DivergenceSentry, SentryConfig, TrainHealth};
use crate::{LrSchedule, Sgd, YoloLoss, YoloLossConfig};
use dronet_data::augment::{AugmentConfig, Augmenter};
use dronet_data::dataset::VehicleDataset;
use dronet_metrics::BBox;
use dronet_nn::{Network, NnError};
use dronet_obs::{Registry, Tracer};
use dronet_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Images per optimizer step.
    pub batch_size: usize,
    /// Learning-rate schedule (per batch).
    pub schedule: LrSchedule,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
    /// Loss scales/thresholds.
    pub loss: YoloLossConfig,
    /// Whether to apply training-time augmentation.
    pub augment: bool,
    /// RNG seed for shuffling, augmentation and weight init.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 8,
            schedule: LrSchedule::Burnin {
                lr: 1e-3,
                burnin: 20,
                power: 4.0,
            },
            momentum: 0.9,
            weight_decay: 5e-4,
            loss: YoloLossConfig::default(),
            augment: true,
            seed: 0,
        }
    }
}

/// Errors of the resumable training loop.
#[derive(Debug)]
pub enum TrainError {
    /// A forward/backward/configuration error from the network.
    Nn(NnError),
    /// Checkpoint storage or recovery failed.
    Checkpoint(CheckpointError),
    /// The run was aborted mid-step by the crash hook of
    /// [`Trainer::train_resumable_with`] — nothing was checkpointed for
    /// the aborted step, exactly like a process kill.
    Aborted {
        /// Global step at which the abort struck.
        step: u64,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Nn(e) => write!(f, "training failed: {e}"),
            TrainError::Checkpoint(e) => write!(f, "checkpointing failed: {e}"),
            TrainError::Aborted { step } => {
                write!(f, "training aborted (crash hook) at step {step}")
            }
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TrainError::Nn(e) => Some(e),
            TrainError::Checkpoint(e) => Some(e),
            TrainError::Aborted { .. } => None,
        }
    }
}

impl From<NnError> for TrainError {
    fn from(e: NnError) -> Self {
        TrainError::Nn(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

impl From<dronet_tensor::TensorError> for TrainError {
    fn from(e: dronet_tensor::TensorError) -> Self {
        TrainError::Nn(NnError::from(e))
    }
}

/// One entry of the training run's black-box event tail.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainEvent {
    /// Global step when the event fired.
    pub step: u64,
    /// Event kind: `"resume"`, `"checkpoint"`, `"best"`, `"trip"`,
    /// `"rollback"`, `"recover"` or `"halt"`.
    pub kind: &'static str,
    /// Human-readable context.
    pub detail: String,
}

/// Maximum events retained in [`TrainReport::events`] (oldest dropped).
pub const TRAIN_EVENT_TAIL: usize = 64;

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken (the final global step).
    pub batches: usize,
    /// Images consumed (including augmented repeats).
    pub images_seen: usize,
    /// Step of the checkpoint this run resumed from, when it did.
    pub resumed_from_step: Option<u64>,
    /// Checkpoints written during the run (rotating + best + final).
    pub checkpoints_written: usize,
    /// Divergence-sentry trips observed.
    pub sentry_trips: usize,
    /// Rollbacks performed (each consumed retry budget).
    pub rollbacks: usize,
    /// Cumulative LR backoff multiplier at the end of the run (1.0 = the
    /// sentry never backed off).
    pub final_lr_scale: f32,
    /// Health at the end of the run; [`TrainHealth::Halted`] means the
    /// sentry stopped the run early.
    pub final_health: TrainHealth,
    /// Why the run halted, when it did.
    pub halt_reason: Option<String>,
    /// Black-box tail of the last [`TRAIN_EVENT_TAIL`] notable events
    /// (checkpoints, trips, rollbacks…), mirroring
    /// `detect::SupervisorReport::black_box`.
    pub events: Vec<TrainEvent>,
}

impl Default for TrainReport {
    fn default() -> Self {
        TrainReport {
            epoch_losses: Vec::new(),
            batches: 0,
            images_seen: 0,
            resumed_from_step: None,
            checkpoints_written: 0,
            sentry_trips: 0,
            rollbacks: 0,
            final_lr_scale: 1.0,
            final_health: TrainHealth::Healthy,
            halt_reason: None,
            events: Vec::new(),
        }
    }
}

impl TrainReport {
    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Batch training loop for region-head detection networks.
///
/// Mirrors the paper's training stage: Darknet-style SGD over the vehicle
/// dataset with the YOLO loss. Data order and augmentation are derived
/// per-(seed, epoch, batch) — not from one long-lived RNG — so a run can
/// be killed at any step and resumed **bit-identically** from a
/// [`CheckpointStore`] snapshot (see [`Trainer::train_resumable`]).
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    obs: Registry,
    tracer: Tracer,
    sentry: Option<SentryConfig>,
    fault_plan: Option<TrainFaultPlan>,
}

/// Mutable state of the loop; exactly what a [`Checkpoint`] captures,
/// plus run-local bookkeeping that survives rollbacks (budgets, events).
struct LoopState {
    step: u64,
    epoch: usize,
    batch_in_epoch: usize,
    images_seen: usize,
    epoch_losses: Vec<f32>,
    epoch_loss: f32,
    epoch_batches: usize,
    best_loss: f32,
    lr_scale: f32,
    rollbacks: u64,
    trips: u64,
    health: TrainHealth,
    clean_streak: u64,
    checkpoints_written: usize,
    resumed_from: Option<u64>,
    events: Vec<TrainEvent>,
    attempts: u64,
    halt_reason: Option<String>,
}

impl LoopState {
    fn fresh() -> Self {
        LoopState {
            step: 0,
            epoch: 0,
            batch_in_epoch: 0,
            images_seen: 0,
            epoch_losses: Vec::new(),
            epoch_loss: 0.0,
            epoch_batches: 0,
            best_loss: f32::INFINITY,
            lr_scale: 1.0,
            rollbacks: 0,
            trips: 0,
            health: TrainHealth::Healthy,
            clean_streak: 0,
            checkpoints_written: 0,
            resumed_from: None,
            events: Vec::new(),
            attempts: 0,
            halt_reason: None,
        }
    }

    fn push_event(&mut self, step: u64, kind: &'static str, detail: String) {
        if self.events.len() == TRAIN_EVENT_TAIL {
            self.events.remove(0);
        }
        self.events.push(TrainEvent { step, kind, detail });
    }

    /// Restores the checkpoint-captured position and history; budgets,
    /// events and the attempt counter are deliberately left alone (they
    /// are monotonic across rollbacks).
    fn restore_position(&mut self, c: &Checkpoint) {
        self.step = c.step;
        self.epoch = c.epoch as usize;
        self.batch_in_epoch = c.batch_in_epoch as usize;
        self.images_seen = c.images_seen as usize;
        self.best_loss = c.best_loss;
        self.epoch_losses = c.epoch_losses.clone();
        self.epoch_loss = c.epoch_loss_partial;
        self.epoch_batches = c.epoch_batches_partial as usize;
    }

    fn into_report(self) -> TrainReport {
        TrainReport {
            epoch_losses: self.epoch_losses,
            batches: self.step as usize,
            images_seen: self.images_seen,
            resumed_from_step: self.resumed_from,
            checkpoints_written: self.checkpoints_written,
            sentry_trips: self.trips as usize,
            rollbacks: self.rollbacks as usize,
            final_lr_scale: self.lr_scale,
            final_health: self.health,
            halt_reason: self.halt_reason,
            events: self.events,
        }
    }
}

/// SplitMix64 finaliser — the stream-derivation mixer behind per-epoch
/// shuffles and per-batch augmentation seeds.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn epoch_shuffle_seed(seed: u64, epoch: usize) -> u64 {
    mix(seed ^ mix(epoch as u64 ^ 0x5EED_E50C))
}

fn batch_augment_seed(seed: u64, epoch: usize, batch_in_epoch: usize) -> u64 {
    mix(seed ^ mix(((epoch as u64) << 32) | batch_in_epoch as u64) ^ 0xA0A0)
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics when epochs or batch size are zero.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.epochs > 0, "epochs must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        Trainer {
            config,
            obs: Registry::noop(),
            tracer: Tracer::noop(),
            sentry: None,
            fault_plan: None,
        }
    }

    /// Attaches telemetry: every run records step/epoch latency histograms
    /// (`train.step`, `train.epoch`), last-value gauges (`train.loss`,
    /// `train.lr`, `train.grad_norm`, `train.health`) and `train.steps` /
    /// `train.images` / `train.checkpoints` / `train.sentry.trips` /
    /// `train.rollbacks` counters into `obs`. The gradient norm is only
    /// computed when the registry is live or a sentry is armed, so
    /// unobserved training pays nothing for it.
    pub fn with_observability(mut self, obs: &Registry) -> Self {
        self.obs = obs.clone();
        self
    }

    /// Attaches a flight recorder: checkpoints, sentry trips, rollbacks
    /// and halts emit `train.*` instants carrying the global step.
    pub fn with_tracing(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// Arms the divergence sentry: non-finite losses/gradients and EWMA
    /// loss spikes roll the run back to the last good checkpoint with LR
    /// backoff, under `config.max_rollbacks` budget; the budget exhausted
    /// (or no [`CheckpointStore`] to roll back to) halts the run with
    /// [`TrainHealth::Halted`] instead of erroring.
    ///
    /// # Panics
    ///
    /// Panics when the sentry configuration is out of range.
    pub fn with_sentry(mut self, config: SentryConfig) -> Self {
        // Validate eagerly so a bad config fails at construction.
        let _ = DivergenceSentry::new(config.clone());
        self.sentry = Some(config);
        self
    }

    /// Injects a deterministic [`TrainFaultPlan`] (chaos testing): the
    /// scheduled step attempts observe a poisoned loss or gradient,
    /// exercising the sentry's trip/rollback machinery on demand.
    pub fn with_fault_plan(mut self, plan: TrainFaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on the dataset's training split.
    ///
    /// The network must end in a region layer (its configuration defines
    /// the loss); weights are (re-)initialised from the configured seed so
    /// runs are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadLayerConfig`] when the network has no region
    /// head, and propagates forward/backward errors.
    pub fn train(
        &self,
        net: &mut Network,
        dataset: &VehicleDataset,
    ) -> Result<TrainReport, NnError> {
        self.train_with(net, dataset, |_, _| {})
    }

    /// Like [`Trainer::train`] but invokes `on_epoch(epoch_index,
    /// mean_loss)` after every epoch (for logging/metrics hooks).
    ///
    /// # Errors
    ///
    /// See [`Trainer::train`].
    pub fn train_with(
        &self,
        net: &mut Network,
        dataset: &VehicleDataset,
        mut on_epoch: impl FnMut(usize, f32),
    ) -> Result<TrainReport, NnError> {
        self.run(net, dataset, None, &mut on_epoch, &mut |_, _| true)
            .map_err(|e| match e {
                TrainError::Nn(e) => e,
                other => unreachable!("no store, no crash hook: {other}"),
            })
    }

    /// Crash-safe training: checkpoints into `store` every `every_steps`
    /// optimizer steps (plus a base snapshot at step 0, a `best.drcp` at
    /// every improved epoch and a final snapshot), and **resumes** from
    /// [`CheckpointStore::latest_valid`] when the store already holds an
    /// intact snapshot. The resumed run replays the remaining steps
    /// bit-identically to an uninterrupted run of the same total length.
    ///
    /// # Errors
    ///
    /// Propagates network errors ([`TrainError::Nn`]) and storage errors
    /// ([`TrainError::Checkpoint`]); a corrupt snapshot in the store is
    /// *not* an error (recovery skips it), only an unreadable directory
    /// or an architecture-mismatched recovered snapshot is.
    ///
    /// # Panics
    ///
    /// Panics when `every_steps` is zero.
    pub fn train_resumable(
        &self,
        net: &mut Network,
        dataset: &VehicleDataset,
        store: &CheckpointStore,
        every_steps: u64,
    ) -> Result<TrainReport, TrainError> {
        self.train_resumable_with(net, dataset, store, every_steps, |_, _| {}, |_, _| true)
    }

    /// [`Trainer::train_resumable`] with hooks: `on_epoch(epoch, mean)`
    /// after every epoch, and `on_step(step, loss) -> bool` after every
    /// accepted optimizer step — returning `false` **simulates a crash**:
    /// the run returns [`TrainError::Aborted`] immediately without
    /// checkpointing, exactly as a power loss would leave the store.
    ///
    /// # Errors
    ///
    /// See [`Trainer::train_resumable`]; plus [`TrainError::Aborted`]
    /// from the crash hook.
    ///
    /// # Panics
    ///
    /// Panics when `every_steps` is zero.
    pub fn train_resumable_with(
        &self,
        net: &mut Network,
        dataset: &VehicleDataset,
        store: &CheckpointStore,
        every_steps: u64,
        mut on_epoch: impl FnMut(usize, f32),
        mut on_step: impl FnMut(u64, f32) -> bool,
    ) -> Result<TrainReport, TrainError> {
        assert!(every_steps > 0, "checkpoint cadence must be positive");
        self.run(
            net,
            dataset,
            Some((store, every_steps)),
            &mut on_epoch,
            &mut on_step,
        )
    }

    fn run(
        &self,
        net: &mut Network,
        dataset: &VehicleDataset,
        ckpt: Option<(&CheckpointStore, u64)>,
        on_epoch: &mut dyn FnMut(usize, f32),
        on_step: &mut dyn FnMut(u64, f32) -> bool,
    ) -> Result<TrainReport, TrainError> {
        let region_cfg = net
            .layers()
            .last()
            .and_then(|l| l.as_region())
            .map(|r| r.config().clone())
            .ok_or_else(|| NnError::BadLayerConfig {
                layer: "region",
                msg: "training requires a network ending in a region layer".to_string(),
            })?;
        let loss = YoloLoss::new(region_cfg, self.config.loss);
        let (_, in_h, in_w) = net.input_chw();
        if in_h != in_w {
            return Err(TrainError::Nn(NnError::BadLayerConfig {
                layer: "net",
                msg: format!("trainer expects square inputs, got {in_h}x{in_w}"),
            }));
        }
        let input = in_h;

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        net.init_weights(&mut rng);
        let mut opt = Sgd::with_hyperparams(
            self.config.schedule.lr_at(0).max(1e-9),
            self.config.momentum,
            self.config.weight_decay,
        );

        let train_scenes = dataset.train();
        if train_scenes.is_empty() {
            return Err(TrainError::Nn(NnError::BadLayerConfig {
                layer: "net",
                msg: "training split is empty".to_string(),
            }));
        }

        let step_hist = self.obs.histogram("train.step");
        let epoch_hist = self.obs.histogram("train.epoch");
        let loss_gauge = self.obs.gauge("train.loss");
        let lr_gauge = self.obs.gauge("train.lr");
        let grad_gauge = self.obs.gauge("train.grad_norm");
        let steps_counter = self.obs.counter("train.steps");
        let images_counter = self.obs.counter("train.images");
        let health_gauge = self.obs.gauge("train.health");
        let trips_counter = self.obs.counter("train.sentry.trips");
        let rollbacks_counter = self.obs.counter("train.rollbacks");
        let ckpt_counter = self.obs.counter("train.checkpoints");

        let mut sentry = self.sentry.clone().map(DivergenceSentry::new);
        let mut st = LoopState::fresh();
        health_gauge.set(st.health.as_metric());

        // --- Resume, or anchor a base snapshot for the sentry. ---
        if let Some((store, _)) = ckpt {
            let recovery = store.latest_valid()?;
            if let Some((path, c)) = recovery.checkpoint {
                self.restore_from(net, &mut opt, sentry.as_mut(), &c)?;
                st.restore_position(&c);
                st.lr_scale = c.lr_scale;
                st.rollbacks = c.rollbacks;
                st.trips = c.trips;
                st.resumed_from = Some(c.step);
                st.push_event(
                    c.step,
                    "resume",
                    format!(
                        "from {} ({} corrupt snapshot(s) skipped)",
                        path.display(),
                        recovery.rejected.len()
                    ),
                );
                self.tracer.instant_aux("train.resume", c.step as i64);
            } else {
                self.write_checkpoint(store, net, &opt, &mut st, sentry.as_ref(), &ckpt_counter)?;
            }
        }

        let batch_size = self.config.batch_size;
        'training: while st.epoch < self.config.epochs {
            let epoch_span = epoch_hist.start();
            let mut order: Vec<usize> = (0..train_scenes.len()).collect();
            let mut epoch_rng =
                rand::rngs::StdRng::seed_from_u64(epoch_shuffle_seed(self.config.seed, st.epoch));
            order.shuffle(&mut epoch_rng);
            let chunk_count = order.len().div_ceil(batch_size);

            while st.batch_in_epoch < chunk_count {
                let start = st.batch_in_epoch * batch_size;
                let end = (start + batch_size).min(order.len());
                let chunk = &order[start..end];

                let step_span = step_hist.start();
                let mut images: Vec<Tensor> = Vec::with_capacity(chunk.len());
                let mut truths: Vec<Vec<(BBox, usize)>> = Vec::with_capacity(chunk.len());
                let mut augmenter = self.config.augment.then(|| {
                    Augmenter::new(
                        AugmentConfig::default(),
                        batch_augment_seed(self.config.seed, st.epoch, st.batch_in_epoch),
                    )
                });
                for &idx in chunk {
                    let scene = &train_scenes[idx];
                    let annotated: Vec<(BBox, usize)> = scene
                        .annotations
                        .iter()
                        .map(|a| (a.bbox, a.class))
                        .collect();
                    if let Some(aug) = augmenter.as_mut() {
                        let (img, annotated) = aug.apply_with_classes(&scene.image, &annotated);
                        images.push(img.resize(input, input).to_tensor());
                        truths.push(annotated);
                    } else {
                        images.push(scene.image.resize(input, input).to_tensor());
                        truths.push(annotated);
                    }
                }
                let batch = Tensor::stack_batch(&images)?;
                let output = net.forward_train(&batch)?;
                let (breakdown, grad) = loss.evaluate_with_classes(&output, &truths)?;
                net.backward(&grad)?;

                let fault = self
                    .fault_plan
                    .as_ref()
                    .and_then(|p| p.fault_for(st.attempts as usize));
                st.attempts += 1;
                if matches!(fault, Some(TrainFault::NanGrad)) {
                    let mut poisoned = false;
                    net.visit_params_mut(|_, g| {
                        if !poisoned && !g.is_empty() {
                            g[0] = f32::NAN;
                            poisoned = true;
                        }
                    });
                }

                // One pass over the gradients serves telemetry, the
                // sentry's finite check and (optionally) global-norm
                // clipping; unobserved, sentry-less training skips it.
                let mut grad_norm = 0.0f64;
                if self.obs.is_enabled() || sentry.is_some() {
                    let mut sq = 0.0f64;
                    net.visit_params_mut(|_, g| {
                        sq += g.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    });
                    grad_norm = sq.sqrt();
                    grad_gauge.set(grad_norm);
                }

                let mut step_loss = breakdown.total() / chunk.len() as f32;
                match fault {
                    Some(TrainFault::NanLoss) => step_loss = f32::NAN,
                    Some(TrainFault::SpikeLoss(factor)) => step_loss *= factor,
                    _ => {}
                }

                if let Some(sentry_ref) = sentry.as_mut() {
                    let trip = sentry_ref
                        .check_grad_norm(grad_norm)
                        .or_else(|| sentry_ref.check_loss(st.step, step_loss));
                    if let Some(reason) = trip {
                        step_span.stop();
                        epoch_span.stop();
                        trips_counter.inc();
                        st.trips += 1;
                        st.push_event(st.step, "trip", reason.to_string());
                        self.tracer.instant_aux("train.sentry.trip", st.step as i64);
                        let cfg = sentry_ref.config().clone();
                        let Some((store, _)) = ckpt else {
                            self.halt(
                                &mut st,
                                &health_gauge,
                                format!("sentry tripped ({reason}) with no checkpoint store"),
                            );
                            return Ok(st.into_report());
                        };
                        if st.rollbacks >= u64::from(cfg.max_rollbacks) {
                            self.halt(
                                &mut st,
                                &health_gauge,
                                format!(
                                    "rollback budget ({}) exhausted after {reason}",
                                    cfg.max_rollbacks
                                ),
                            );
                            return Ok(st.into_report());
                        }
                        let recovery = store.latest_valid()?;
                        let Some((_, good)) = recovery.checkpoint else {
                            self.halt(
                                &mut st,
                                &health_gauge,
                                "no intact checkpoint to roll back to".to_string(),
                            );
                            return Ok(st.into_report());
                        };
                        self.restore_from(net, &mut opt, sentry.as_mut(), &good)?;
                        st.restore_position(&good);
                        st.rollbacks += 1;
                        rollbacks_counter.inc();
                        st.lr_scale = (st.lr_scale * cfg.lr_backoff).max(cfg.min_lr_scale);
                        st.health = TrainHealth::Degraded;
                        st.clean_streak = 0;
                        health_gauge.set(st.health.as_metric());
                        st.push_event(
                            good.step,
                            "rollback",
                            format!("to step {} with lr scale {}", good.step, st.lr_scale),
                        );
                        self.tracer.instant_aux("train.rollback", good.step as i64);
                        net.zero_grads();
                        continue 'training;
                    }
                    if let Some(clip) = sentry_ref.config().grad_clip {
                        let clip = f64::from(clip);
                        if grad_norm > clip {
                            let scale = (clip / grad_norm) as f32;
                            net.visit_params_mut(|_, g| {
                                for v in g.iter_mut() {
                                    *v *= scale;
                                }
                            });
                        }
                    }
                }

                let lr = self.config.schedule.lr_at(st.step as usize).max(1e-9) * st.lr_scale;
                opt.set_learning_rate(lr);
                opt.step(net, chunk.len());
                net.zero_grads();

                step_span.stop();
                loss_gauge.set(f64::from(step_loss));
                lr_gauge.set(f64::from(lr));
                steps_counter.inc();
                images_counter.add(chunk.len() as u64);

                st.epoch_loss += step_loss;
                st.epoch_batches += 1;
                st.step += 1;
                st.batch_in_epoch += 1;
                st.images_seen += chunk.len();

                if st.health == TrainHealth::Degraded {
                    st.clean_streak += 1;
                    let recover_after = sentry
                        .as_ref()
                        .map(|s| s.config().recover_after)
                        .unwrap_or(u64::MAX);
                    if st.clean_streak >= recover_after {
                        st.health = TrainHealth::Healthy;
                        health_gauge.set(st.health.as_metric());
                        st.push_event(
                            st.step,
                            "recover",
                            format!("{} clean steps", st.clean_streak),
                        );
                    }
                }

                if let Some((store, every)) = ckpt {
                    if st.step.is_multiple_of(every) {
                        self.write_checkpoint(
                            store,
                            net,
                            &opt,
                            &mut st,
                            sentry.as_ref(),
                            &ckpt_counter,
                        )?;
                    }
                }

                if !on_step(st.step, step_loss) {
                    return Err(TrainError::Aborted { step: st.step });
                }
            }

            let mean = st.epoch_loss / st.epoch_batches.max(1) as f32;
            st.epoch_losses.push(mean);
            st.epoch_loss = 0.0;
            st.epoch_batches = 0;
            let finished = st.epoch;
            st.epoch += 1;
            st.batch_in_epoch = 0;
            epoch_span.stop();
            if let Some((store, _)) = ckpt {
                if mean < st.best_loss {
                    st.best_loss = mean;
                    let snapshot = self.capture(net, &opt, &st, sentry.as_ref())?;
                    store.save_best(&snapshot)?;
                    st.checkpoints_written += 1;
                    ckpt_counter.inc();
                    st.push_event(st.step, "best", format!("epoch mean {mean}"));
                }
            }
            on_epoch(finished, mean);
        }

        // Final snapshot so a completed run's store reflects its end state
        // (resume-after-completion is a no-op that returns the history).
        if let Some((store, every)) = ckpt {
            if !st.step.is_multiple_of(every) || st.step == 0 {
                self.write_checkpoint(store, net, &opt, &mut st, sentry.as_ref(), &ckpt_counter)?;
            }
        }
        Ok(st.into_report())
    }

    fn halt(&self, st: &mut LoopState, health_gauge: &dronet_obs::Gauge, reason: String) {
        st.health = TrainHealth::Halted;
        health_gauge.set(st.health.as_metric());
        st.push_event(st.step, "halt", reason.clone());
        self.tracer.instant_aux("train.halt", st.step as i64);
        st.halt_reason = Some(reason);
    }

    fn capture(
        &self,
        net: &Network,
        opt: &Sgd,
        st: &LoopState,
        sentry: Option<&DivergenceSentry>,
    ) -> Result<Checkpoint, CheckpointError> {
        let mut c = Checkpoint::capture(net, OptimizerState::Sgd(opt.state()))?;
        c.step = st.step;
        c.epoch = st.epoch as u64;
        c.batch_in_epoch = st.batch_in_epoch as u64;
        c.images_seen = st.images_seen as u64;
        c.best_loss = st.best_loss;
        c.lr_scale = st.lr_scale;
        c.ewma_loss = sentry.and_then(|s| s.ewma());
        c.rollbacks = st.rollbacks;
        c.trips = st.trips;
        c.epoch_losses = st.epoch_losses.clone();
        c.epoch_loss_partial = st.epoch_loss;
        c.epoch_batches_partial = st.epoch_batches as u64;
        Ok(c)
    }

    fn write_checkpoint(
        &self,
        store: &CheckpointStore,
        net: &Network,
        opt: &Sgd,
        st: &mut LoopState,
        sentry: Option<&DivergenceSentry>,
        ckpt_counter: &dronet_obs::Counter,
    ) -> Result<(), CheckpointError> {
        let snapshot = self.capture(net, opt, st, sentry)?;
        let path = store.save(&snapshot)?;
        st.checkpoints_written += 1;
        ckpt_counter.inc();
        st.push_event(st.step, "checkpoint", path.display().to_string());
        self.tracer.instant_aux("train.checkpoint", st.step as i64);
        Ok(())
    }

    /// Restores network weights, optimizer state and sentry EWMA from a
    /// recovered checkpoint, validating the optimizer layout against the
    /// network before touching anything.
    fn restore_from(
        &self,
        net: &mut Network,
        opt: &mut Sgd,
        sentry: Option<&mut DivergenceSentry>,
        c: &Checkpoint,
    ) -> Result<(), TrainError> {
        let state = match &c.optimizer {
            OptimizerState::Sgd(s) => s.clone(),
            OptimizerState::None => crate::SgdState::default(),
            OptimizerState::Adam(_) => {
                return Err(TrainError::Checkpoint(CheckpointError::Malformed {
                    section: "OPTIMIZER",
                    msg: "trainer uses SGD but the checkpoint holds Adam state".to_string(),
                }))
            }
        };
        if !state.velocity.is_empty() {
            let mut lens = Vec::new();
            net.visit_params_mut(|p, _| lens.push(p.len()));
            let got: Vec<usize> = state.velocity.iter().map(Vec::len).collect();
            if lens != got {
                return Err(TrainError::Checkpoint(CheckpointError::Malformed {
                    section: "OPTIMIZER",
                    msg: format!(
                        "momentum layout {got:?} does not match network parameter groups {lens:?}"
                    ),
                }));
            }
        }
        c.restore_network(net)?;
        opt.restore_state(state);
        if let Some(s) = sentry {
            s.restore_ewma(c.ewma_loss);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_data::scene::SceneConfig;
    use dronet_nn::{Activation, Conv2d, Layer, MaxPool2d, RegionConfig, RegionLayer};

    /// A deliberately tiny detector so the test trains in seconds.
    fn micro_net(input: usize) -> Network {
        let mut net = Network::new(3, input, input);
        net.push(Layer::conv(
            Conv2d::new(3, 8, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(8, 16, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(16, 16, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(16, 12, 1, 1, 0, Activation::Linear, false).unwrap(),
        ));
        net.push(Layer::region(
            RegionLayer::new(RegionConfig {
                anchors: vec![(0.8, 0.8), (2.0, 2.0)],
                classes: 1,
            })
            .unwrap(),
        ));
        net
    }

    fn tiny_dataset() -> VehicleDataset {
        VehicleDataset::generate(
            SceneConfig {
                width: 48,
                height: 48,
                min_vehicles: 2,
                max_vehicles: 5,
                ..SceneConfig::default()
            },
            12,
            0.75,
            7,
        )
    }

    fn fresh_store(name: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("dronet-trainer-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointStore::open(&dir).unwrap()
    }

    fn weights_bytes(net: &Network) -> Vec<u8> {
        let mut buf = Vec::new();
        dronet_nn::weights::save(net, &mut buf).unwrap();
        buf
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = micro_net(48);
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 6,
            batch_size: 3,
            augment: false,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            ..TrainConfig::default()
        };
        let report = Trainer::new(config).train(&mut net, &dataset).unwrap();
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.improved(),
            "loss did not improve: {:?}",
            report.epoch_losses
        );
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert_eq!(report.images_seen, 6 * 9);
        assert_eq!(report.final_health, TrainHealth::Healthy);
        assert_eq!(report.final_lr_scale, 1.0);
        assert_eq!(report.resumed_from_step, None);
    }

    #[test]
    fn epoch_callback_fires() {
        let mut net = micro_net(48);
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            augment: true,
            ..TrainConfig::default()
        };
        let mut calls = Vec::new();
        Trainer::new(config)
            .train_with(&mut net, &dataset, |e, l| calls.push((e, l)))
            .unwrap();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].0, 0);
        assert_eq!(calls[1].0, 1);
    }

    #[test]
    fn observed_training_records_step_telemetry() {
        let mut net = micro_net(48);
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            augment: false,
            ..TrainConfig::default()
        };
        let obs = Registry::new();
        let report = Trainer::new(config)
            .with_observability(&obs)
            .train(&mut net, &dataset)
            .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("train.steps"), Some(report.batches as u64));
        assert_eq!(
            snap.counter("train.images"),
            Some(report.images_seen as u64)
        );
        assert_eq!(
            snap.histogram("train.step").unwrap().count,
            report.batches as u64
        );
        assert_eq!(snap.histogram("train.epoch").unwrap().count, 2);
        let loss = snap.gauge("train.loss").unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        assert!(snap.gauge("train.lr").unwrap() > 0.0);
        assert!(snap.gauge("train.grad_norm").unwrap() >= 0.0);
        assert_eq!(snap.gauge("train.health"), Some(0.0));
    }

    #[test]
    fn observability_does_not_change_training() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = micro_net(48);
        let mut b = micro_net(48);
        let ra = Trainer::new(config.clone())
            .train(&mut a, &dataset)
            .unwrap();
        let rb = Trainer::new(config)
            .with_observability(&Registry::new())
            .train(&mut b, &dataset)
            .unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn training_is_reproducible() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = micro_net(48);
        let mut b = micro_net(48);
        let ra = Trainer::new(config.clone())
            .train(&mut a, &dataset)
            .unwrap();
        let rb = Trainer::new(config).train(&mut b, &dataset).unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn resumable_run_without_crash_matches_plain_run() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            augment: true,
            ..TrainConfig::default()
        };
        let mut a = micro_net(48);
        let ra = Trainer::new(config.clone())
            .train(&mut a, &dataset)
            .unwrap();
        let store = fresh_store("plain-match");
        let mut b = micro_net(48);
        let rb = Trainer::new(config)
            .train_resumable(&mut b, &dataset, &store, 2)
            .unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        assert_eq!(weights_bytes(&a), weights_bytes(&b));
        assert!(rb.checkpoints_written > 0);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn checkpoints_rotate_and_best_exists() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 3,
            batch_size: 3,
            augment: false,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            ..TrainConfig::default()
        };
        let store = fresh_store("rotation").keep_last(2);
        let mut net = micro_net(48);
        let report = Trainer::new(config)
            .train_resumable(&mut net, &dataset, &store, 2)
            .unwrap();
        assert!(report.checkpoints_written >= 3);
        assert!(store.snapshots().unwrap().len() <= 2);
        assert!(store.load_best().unwrap().is_some());
        let rec = store.latest_valid().unwrap();
        assert_eq!(rec.checkpoint.unwrap().1.step, report.batches as u64);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn network_without_region_head_is_rejected() {
        let mut net = Network::new(3, 48, 48);
        net.push(Layer::conv(
            Conv2d::new(3, 8, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        let err = Trainer::new(TrainConfig::default())
            .train(&mut net, &tiny_dataset())
            .unwrap_err();
        assert!(err.to_string().contains("region"));
    }

    #[test]
    #[should_panic(expected = "epochs must be positive")]
    fn zero_epochs_panics() {
        Trainer::new(TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "checkpoint cadence")]
    fn zero_cadence_panics() {
        let store = fresh_store("zero-cadence");
        let _ = Trainer::new(TrainConfig::default()).train_resumable(
            &mut micro_net(48),
            &tiny_dataset(),
            &store,
            0,
        );
    }
}
