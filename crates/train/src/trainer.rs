use crate::{LrSchedule, Sgd, YoloLoss, YoloLossConfig};
use dronet_data::augment::{AugmentConfig, Augmenter};
use dronet_data::dataset::VehicleDataset;
use dronet_metrics::BBox;
use dronet_nn::{Network, NnError};
use dronet_obs::Registry;
use dronet_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Training-run configuration.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training split.
    pub epochs: usize,
    /// Images per optimizer step.
    pub batch_size: usize,
    /// Learning-rate schedule (per batch).
    pub schedule: LrSchedule,
    /// SGD momentum.
    pub momentum: f32,
    /// SGD weight decay.
    pub weight_decay: f32,
    /// Loss scales/thresholds.
    pub loss: YoloLossConfig,
    /// Whether to apply training-time augmentation.
    pub augment: bool,
    /// RNG seed for shuffling, augmentation and weight init.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 10,
            batch_size: 8,
            schedule: LrSchedule::Burnin {
                lr: 1e-3,
                burnin: 20,
                power: 4.0,
            },
            momentum: 0.9,
            weight_decay: 5e-4,
            loss: YoloLossConfig::default(),
            augment: true,
            seed: 0,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Total optimizer steps taken.
    pub batches: usize,
    /// Images consumed (including augmented repeats).
    pub images_seen: usize,
}

impl TrainReport {
    /// Whether the loss decreased from the first to the last epoch.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(first), Some(last)) => last < first,
            _ => false,
        }
    }
}

/// Batch training loop for region-head detection networks.
///
/// Mirrors the paper's training stage: Darknet-style SGD over the vehicle
/// dataset with the YOLO loss.
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    obs: Registry,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics when epochs or batch size are zero.
    pub fn new(config: TrainConfig) -> Self {
        assert!(config.epochs > 0, "epochs must be positive");
        assert!(config.batch_size > 0, "batch size must be positive");
        Trainer {
            config,
            obs: Registry::noop(),
        }
    }

    /// Attaches telemetry: every run records step/epoch latency histograms
    /// (`train.step`, `train.epoch`), last-value gauges (`train.loss`,
    /// `train.lr`, `train.grad_norm`) and `train.steps` / `train.images`
    /// counters into `obs`. The gradient norm is only computed when the
    /// registry is live, so unobserved training pays nothing for it.
    pub fn with_observability(mut self, obs: &Registry) -> Self {
        self.obs = obs.clone();
        self
    }

    /// The trainer's configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `net` on the dataset's training split.
    ///
    /// The network must end in a region layer (its configuration defines
    /// the loss); weights are (re-)initialised from the configured seed so
    /// runs are reproducible.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadLayerConfig`] when the network has no region
    /// head, and propagates forward/backward errors.
    pub fn train(
        &self,
        net: &mut Network,
        dataset: &VehicleDataset,
    ) -> Result<TrainReport, NnError> {
        self.train_with(net, dataset, |_, _| {})
    }

    /// Like [`Trainer::train`] but invokes `on_epoch(epoch_index,
    /// mean_loss)` after every epoch (for logging/metrics hooks).
    ///
    /// # Errors
    ///
    /// See [`Trainer::train`].
    pub fn train_with(
        &self,
        net: &mut Network,
        dataset: &VehicleDataset,
        mut on_epoch: impl FnMut(usize, f32),
    ) -> Result<TrainReport, NnError> {
        let region_cfg = net
            .layers()
            .last()
            .and_then(|l| l.as_region())
            .map(|r| r.config().clone())
            .ok_or_else(|| NnError::BadLayerConfig {
                layer: "region",
                msg: "training requires a network ending in a region layer".to_string(),
            })?;
        let loss = YoloLoss::new(region_cfg, self.config.loss);
        let (_, in_h, in_w) = net.input_chw();
        if in_h != in_w {
            return Err(NnError::BadLayerConfig {
                layer: "net",
                msg: format!("trainer expects square inputs, got {in_h}x{in_w}"),
            });
        }
        let input = in_h;

        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        net.init_weights(&mut rng);
        let mut augmenter = Augmenter::new(AugmentConfig::default(), self.config.seed ^ 0xA0A0);
        let mut opt = Sgd::with_hyperparams(
            self.config.schedule.lr_at(0).max(1e-9),
            self.config.momentum,
            self.config.weight_decay,
        );

        let train_scenes = dataset.train();
        if train_scenes.is_empty() {
            return Err(NnError::BadLayerConfig {
                layer: "net",
                msg: "training split is empty".to_string(),
            });
        }

        let step_hist = self.obs.histogram("train.step");
        let epoch_hist = self.obs.histogram("train.epoch");
        let loss_gauge = self.obs.gauge("train.loss");
        let lr_gauge = self.obs.gauge("train.lr");
        let grad_gauge = self.obs.gauge("train.grad_norm");
        let steps_counter = self.obs.counter("train.steps");
        let images_counter = self.obs.counter("train.images");

        let mut report = TrainReport::default();
        let mut batch_index = 0usize;
        for epoch in 0..self.config.epochs {
            let epoch_span = epoch_hist.start();
            let mut order: Vec<usize> = (0..train_scenes.len()).collect();
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f32;
            let mut epoch_batches = 0usize;

            for chunk in order.chunks(self.config.batch_size) {
                let step_span = step_hist.start();
                let mut images: Vec<Tensor> = Vec::with_capacity(chunk.len());
                let mut truths: Vec<Vec<(BBox, usize)>> = Vec::with_capacity(chunk.len());
                for &idx in chunk {
                    let scene = &train_scenes[idx];
                    let annotated: Vec<(BBox, usize)> = scene
                        .annotations
                        .iter()
                        .map(|a| (a.bbox, a.class))
                        .collect();
                    if self.config.augment {
                        let (img, annotated) =
                            augmenter.apply_with_classes(&scene.image, &annotated);
                        images.push(img.resize(input, input).to_tensor());
                        truths.push(annotated);
                    } else {
                        images.push(scene.image.resize(input, input).to_tensor());
                        truths.push(annotated);
                    }
                }
                let batch = Tensor::stack_batch(&images)?;
                let output = net.forward_train(&batch)?;
                let (breakdown, grad) = loss.evaluate_with_classes(&output, &truths)?;
                net.backward(&grad)?;
                if self.obs.is_enabled() {
                    // Post-backward, pre-step: the raw accumulated gradient.
                    let mut sq = 0.0f64;
                    net.visit_params_mut(|_, g| {
                        sq += g.iter().map(|&v| f64::from(v) * f64::from(v)).sum::<f64>();
                    });
                    grad_gauge.set(sq.sqrt());
                }
                let lr = self.config.schedule.lr_at(batch_index).max(1e-9);
                opt.set_learning_rate(lr);
                opt.step(net, chunk.len());
                net.zero_grads();

                let step_loss = breakdown.total() / chunk.len() as f32;
                step_span.stop();
                loss_gauge.set(f64::from(step_loss));
                lr_gauge.set(f64::from(lr));
                steps_counter.inc();
                images_counter.add(chunk.len() as u64);

                epoch_loss += step_loss;
                epoch_batches += 1;
                batch_index += 1;
                report.images_seen += chunk.len();
            }
            let mean = epoch_loss / epoch_batches.max(1) as f32;
            report.epoch_losses.push(mean);
            report.batches = batch_index;
            epoch_span.stop();
            on_epoch(epoch, mean);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_data::scene::SceneConfig;
    use dronet_nn::{Activation, Conv2d, Layer, MaxPool2d, RegionConfig, RegionLayer};

    /// A deliberately tiny detector so the test trains in seconds.
    fn micro_net(input: usize) -> Network {
        let mut net = Network::new(3, input, input);
        net.push(Layer::conv(
            Conv2d::new(3, 8, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(8, 16, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(16, 16, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(16, 12, 1, 1, 0, Activation::Linear, false).unwrap(),
        ));
        net.push(Layer::region(
            RegionLayer::new(RegionConfig {
                anchors: vec![(0.8, 0.8), (2.0, 2.0)],
                classes: 1,
            })
            .unwrap(),
        ));
        net
    }

    fn tiny_dataset() -> VehicleDataset {
        VehicleDataset::generate(
            SceneConfig {
                width: 48,
                height: 48,
                min_vehicles: 2,
                max_vehicles: 5,
                ..SceneConfig::default()
            },
            12,
            0.75,
            7,
        )
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = micro_net(48);
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 6,
            batch_size: 3,
            augment: false,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            ..TrainConfig::default()
        };
        let report = Trainer::new(config).train(&mut net, &dataset).unwrap();
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.improved(),
            "loss did not improve: {:?}",
            report.epoch_losses
        );
        assert!(report.epoch_losses.iter().all(|l| l.is_finite()));
        assert_eq!(report.images_seen, 6 * 9);
    }

    #[test]
    fn epoch_callback_fires() {
        let mut net = micro_net(48);
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            augment: true,
            ..TrainConfig::default()
        };
        let mut calls = Vec::new();
        Trainer::new(config)
            .train_with(&mut net, &dataset, |e, l| calls.push((e, l)))
            .unwrap();
        assert_eq!(calls.len(), 2);
        assert_eq!(calls[0].0, 0);
        assert_eq!(calls[1].0, 1);
    }

    #[test]
    fn observed_training_records_step_telemetry() {
        let mut net = micro_net(48);
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            augment: false,
            ..TrainConfig::default()
        };
        let obs = Registry::new();
        let report = Trainer::new(config)
            .with_observability(&obs)
            .train(&mut net, &dataset)
            .unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.counter("train.steps"), Some(report.batches as u64));
        assert_eq!(
            snap.counter("train.images"),
            Some(report.images_seen as u64)
        );
        assert_eq!(
            snap.histogram("train.step").unwrap().count,
            report.batches as u64
        );
        assert_eq!(snap.histogram("train.epoch").unwrap().count, 2);
        let loss = snap.gauge("train.loss").unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        assert!(snap.gauge("train.lr").unwrap() > 0.0);
        assert!(snap.gauge("train.grad_norm").unwrap() >= 0.0);
    }

    #[test]
    fn observability_does_not_change_training() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = micro_net(48);
        let mut b = micro_net(48);
        let ra = Trainer::new(config.clone())
            .train(&mut a, &dataset)
            .unwrap();
        let rb = Trainer::new(config)
            .with_observability(&Registry::new())
            .train(&mut b, &dataset)
            .unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn training_is_reproducible() {
        let dataset = tiny_dataset();
        let config = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..TrainConfig::default()
        };
        let mut a = micro_net(48);
        let mut b = micro_net(48);
        let ra = Trainer::new(config.clone())
            .train(&mut a, &dataset)
            .unwrap();
        let rb = Trainer::new(config).train(&mut b, &dataset).unwrap();
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
    }

    #[test]
    fn network_without_region_head_is_rejected() {
        let mut net = Network::new(3, 48, 48);
        net.push(Layer::conv(
            Conv2d::new(3, 8, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        let err = Trainer::new(TrainConfig::default())
            .train(&mut net, &tiny_dataset())
            .unwrap_err();
        assert!(err.to_string().contains("region"));
    }

    #[test]
    #[should_panic(expected = "epochs must be positive")]
    fn zero_epochs_panics() {
        Trainer::new(TrainConfig {
            epochs: 0,
            ..TrainConfig::default()
        });
    }
}
