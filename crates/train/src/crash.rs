//! Crash injection for the checkpoint store and the training loop,
//! modeled on `detect::fault`: deterministic, typed, and aimed at proving
//! the recovery paths rather than hoping for them.
//!
//! Three fault families:
//!
//! * [`WriteFault`] — kills a checkpoint write at an arbitrary byte offset
//!   (the temp file is left torn, exactly like a power loss), writes a
//!   torn file *directly at the final name* (modelling a legacy non-atomic
//!   writer or post-rename sector loss), or flips a bit in a finished
//!   file. Driven through [`write_checkpoint_with_fault`].
//! * [`CrashingWriter`] — an `io::Write` adapter that dies after N bytes,
//!   for harnessing any writer-based serialisation path.
//! * [`TrainFault`]/[`TrainFaultPlan`] — per-step-attempt poisoning of the
//!   observed loss or the accumulated gradients inside
//!   [`crate::Trainer`], to trip the divergence sentry on demand. The plan
//!   is indexed by a monotonic *attempt* counter that keeps advancing
//!   across sentry rollbacks, so an injected fault fires once and the
//!   replayed step runs clean — mirroring how a real transient (bad DMA,
//!   cosmic bit flip) does not re-occur deterministically after a restart.

use crate::checkpoint::{atomic_write, Checkpoint, CheckpointError, CheckpointStore};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A fault injected into one checkpoint write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteFault {
    /// The process dies after `offset` bytes of the temp file are written:
    /// no rename happens, the torn temp file is left behind as crash
    /// debris. Visible snapshots are untouched.
    KillAt {
        /// Byte offset at which the simulated power loss strikes.
        offset: u64,
    },
    /// A torn prefix of `offset` bytes is written **directly at the final
    /// snapshot name**, as a non-atomic writer crashing mid-write would
    /// leave it. `latest_valid` must detect and skip it.
    TornAt {
        /// Length of the torn prefix.
        offset: u64,
    },
    /// The write completes atomically, then one bit is flipped in place —
    /// modelling storage bit rot after a successful save.
    FlipBit {
        /// Byte index to corrupt (wrapped into the file length).
        byte: u64,
        /// Bit index within that byte (0–7).
        bit: u8,
    },
}

/// Writes `ckpt` into `store` under an injected [`WriteFault`].
///
/// `KillAt` returns [`CheckpointError::InjectedCrash`] — from the caller's
/// point of view the process died mid-write. `TornAt` and `FlipBit` return
/// the path of the (corrupt) visible file, like a writer that believed it
/// succeeded.
///
/// # Errors
///
/// [`CheckpointError::InjectedCrash`] for `KillAt`; real I/O errors pass
/// through.
pub fn write_checkpoint_with_fault(
    store: &CheckpointStore,
    ckpt: &Checkpoint,
    fault: &WriteFault,
) -> Result<PathBuf, CheckpointError> {
    let bytes = ckpt.to_bytes();
    let path = store.snapshot_path(ckpt.step);
    match fault {
        WriteFault::KillAt { offset } => {
            let cut = (*offset).min(bytes.len() as u64) as usize;
            let mut tmp_name = path.as_os_str().to_owned();
            tmp_name.push(format!(".tmp-{}", std::process::id()));
            let tmp = PathBuf::from(tmp_name);
            // A real crash leaves whatever the page cache flushed; writing
            // the prefix then stopping is the deterministic equivalent.
            std::fs::write(&tmp, &bytes[..cut])?;
            Err(CheckpointError::InjectedCrash {
                at_byte: cut as u64,
            })
        }
        WriteFault::TornAt { offset } => {
            let cut = (*offset).min(bytes.len() as u64) as usize;
            std::fs::write(&path, &bytes[..cut])?;
            Ok(path)
        }
        WriteFault::FlipBit { byte, bit } => {
            atomic_write(&path, &bytes)?;
            flip_bit_in_file(&path, *byte, *bit)?;
            Ok(path)
        }
    }
}

/// Flips bit `bit % 8` of byte `byte % len` of the file at `path`.
///
/// # Errors
///
/// [`CheckpointError::Io`] on read/write failure, or
/// [`CheckpointError::Malformed`] for an empty file.
pub fn flip_bit_in_file(path: &Path, byte: u64, bit: u8) -> Result<(), CheckpointError> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Err(CheckpointError::Malformed {
            section: "file",
            msg: "cannot flip a bit in an empty file".to_string(),
        });
    }
    let idx = (byte % bytes.len() as u64) as usize;
    bytes[idx] ^= 1u8 << (bit % 8);
    std::fs::write(path, &bytes)?;
    Ok(())
}

/// An `io::Write` adapter that succeeds for the first `kill_at` bytes and
/// then fails every further write with `ErrorKind::Other` — the writer-
/// level analogue of a power loss.
#[derive(Debug)]
pub struct CrashingWriter<W> {
    inner: W,
    kill_at: u64,
    written: u64,
}

impl<W: Write> CrashingWriter<W> {
    /// Wraps `inner`, allowing exactly `kill_at` bytes through.
    pub fn new(inner: W, kill_at: u64) -> Self {
        CrashingWriter {
            inner,
            kill_at,
            written: 0,
        }
    }

    /// Bytes that made it to the inner writer before (or up to) the crash.
    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> Write for CrashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.written >= self.kill_at {
            return Err(std::io::Error::other(format!(
                "injected crash after {} bytes",
                self.written
            )));
        }
        let allowed = ((self.kill_at - self.written) as usize).min(buf.len());
        let n = self.inner.write(&buf[..allowed])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// One injectable training-step fault.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainFault {
    /// The observed loss becomes NaN (e.g. an fp overflow in the loss
    /// reduction) — trips the sentry's non-finite check.
    NanLoss,
    /// The observed loss is multiplied by this factor — trips the sentry's
    /// EWMA spike detector when large enough.
    SpikeLoss(f32),
    /// One accumulated gradient value is poisoned to NaN before the
    /// optimizer step — trips the sentry's gradient check.
    NanGrad,
}

/// A deterministic schedule of [`TrainFault`]s, indexed by the trainer's
/// monotonic step-*attempt* counter (which keeps counting across sentry
/// rollbacks). Cheap to clone; clones share the schedule.
#[derive(Debug, Clone)]
pub struct TrainFaultPlan {
    slots: Arc<Vec<Option<TrainFault>>>,
}

impl TrainFaultPlan {
    /// A hand-written schedule: `slots[i]` is the fault (if any) for step
    /// attempt `i`; attempts beyond the schedule are fault-free.
    pub fn from_schedule(slots: Vec<Option<TrainFault>>) -> Self {
        TrainFaultPlan {
            slots: Arc::new(slots),
        }
    }

    /// A plan injecting a single fault at step attempt `attempt`.
    pub fn once_at(attempt: usize, fault: TrainFault) -> Self {
        let mut slots = vec![None; attempt + 1];
        slots[attempt] = Some(fault);
        TrainFaultPlan::from_schedule(slots)
    }

    /// A plan that never injects anything.
    pub fn none() -> Self {
        TrainFaultPlan::from_schedule(Vec::new())
    }

    /// The fault scheduled for step attempt `attempt`, if any.
    pub fn fault_for(&self, attempt: usize) -> Option<&TrainFault> {
        self.slots.get(attempt).and_then(|s| s.as_ref())
    }

    /// Number of scheduled (non-empty) faults.
    pub fn injected(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crashing_writer_cuts_at_exact_offset() {
        let mut sink = Vec::new();
        {
            let mut w = CrashingWriter::new(&mut sink, 10);
            assert_eq!(w.write(b"0123456").unwrap(), 7);
            // Second write crosses the budget: partial then error.
            assert_eq!(w.write(b"789abc").unwrap(), 3);
            assert!(w.write(b"x").is_err());
            assert_eq!(w.written(), 10);
        }
        assert_eq!(sink, b"0123456789");
    }

    #[test]
    fn zero_budget_writer_fails_immediately() {
        let mut sink = Vec::new();
        let mut w = CrashingWriter::new(&mut sink, 0);
        assert!(w.write(b"a").is_err());
        assert!(sink.is_empty());
    }

    #[test]
    fn fault_plan_indexes_by_attempt() {
        let plan = TrainFaultPlan::once_at(3, TrainFault::NanLoss);
        assert_eq!(plan.fault_for(0), None);
        assert_eq!(plan.fault_for(3), Some(&TrainFault::NanLoss));
        assert_eq!(plan.fault_for(4), None, "past the schedule: clean");
        assert_eq!(plan.injected(), 1);
        assert_eq!(TrainFaultPlan::none().injected(), 0);
    }

    #[test]
    fn flip_bit_round_trips() {
        let dir = std::env::temp_dir().join(format!("dronet-flip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        std::fs::write(&path, [0b0000_0000u8, 0b1111_1111]).unwrap();
        flip_bit_in_file(&path, 1, 0).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            vec![0b0000_0000, 0b1111_1110]
        );
        flip_bit_in_file(&path, 1, 0).unwrap();
        assert_eq!(
            std::fs::read(&path).unwrap(),
            vec![0b0000_0000, 0b1111_1111]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
