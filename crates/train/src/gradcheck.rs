//! Finite-difference gradient checking utilities.
//!
//! Used by this workspace's test suites to validate analytic gradients of
//! layers and losses; exposed publicly so integration tests and downstream
//! experiments can reuse them.

use dronet_tensor::Tensor;

/// Result of comparing an analytic gradient against finite differences.
#[derive(Debug, Clone, PartialEq)]
pub struct GradCheckReport {
    /// Maximum relative error over the probed coordinates.
    pub max_rel_error: f32,
    /// Index of the worst coordinate.
    pub worst_index: usize,
    /// Number of coordinates probed.
    pub probed: usize,
}

impl GradCheckReport {
    /// Whether every probe matched within `tol` relative error.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_rel_error <= tol
    }
}

/// Numerically differentiates `f` at `x` along coordinate `index` with a
/// central difference.
pub fn numeric_partial(
    f: &mut impl FnMut(&Tensor) -> f32,
    x: &Tensor,
    index: usize,
    eps: f32,
) -> f32 {
    let mut xp = x.clone();
    xp.as_mut_slice()[index] += eps;
    let mut xm = x.clone();
    xm.as_mut_slice()[index] -= eps;
    (f(&xp) - f(&xm)) / (2.0 * eps)
}

/// Compares `analytic` (dL/dx) against central finite differences of `f`
/// at `x`, probing every `stride`-th coordinate.
///
/// # Panics
///
/// Panics when shapes disagree or `stride` is zero.
pub fn check_gradient(
    mut f: impl FnMut(&Tensor) -> f32,
    x: &Tensor,
    analytic: &Tensor,
    eps: f32,
    stride: usize,
) -> GradCheckReport {
    assert_eq!(
        x.len(),
        analytic.len(),
        "gradient length {} does not match input length {}",
        analytic.len(),
        x.len()
    );
    assert!(stride > 0, "stride must be positive");
    let mut max_rel_error = 0.0f32;
    let mut worst_index = 0usize;
    let mut probed = 0usize;
    for index in (0..x.len()).step_by(stride) {
        let numeric = numeric_partial(&mut f, x, index, eps);
        let a = analytic.as_slice()[index];
        let scale = numeric.abs().max(a.abs()).max(1.0);
        let rel = (numeric - a).abs() / scale;
        if rel > max_rel_error {
            max_rel_error = rel;
            worst_index = index;
        }
        probed += 1;
    }
    GradCheckReport {
        max_rel_error,
        worst_index,
        probed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_tensor::Shape;

    #[test]
    fn quadratic_gradient_checks_out() {
        // L(x) = sum(x^2), dL/dx = 2x.
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        let analytic = x.map(|v| 2.0 * v);
        let report = check_gradient(|t| t.dot(t).unwrap(), &x, &analytic, 1e-3, 1);
        assert!(report.passes(1e-2), "{report:?}");
        assert_eq!(report.probed, 4);
    }

    #[test]
    fn wrong_gradient_is_caught() {
        let x = Tensor::from_slice(&[1.0, 2.0]);
        let wrong = Tensor::from_slice(&[0.0, 0.0]);
        let report = check_gradient(|t| t.dot(t).unwrap(), &x, &wrong, 1e-3, 1);
        assert!(!report.passes(1e-2));
        assert!(report.max_rel_error > 0.5);
    }

    #[test]
    fn stride_skips_coordinates() {
        let x = Tensor::zeros(Shape::vector(10));
        let g = Tensor::zeros(Shape::vector(10));
        let report = check_gradient(|_| 0.0, &x, &g, 1e-3, 3);
        assert_eq!(report.probed, 4); // indices 0, 3, 6, 9
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        let x = Tensor::zeros(Shape::vector(2));
        check_gradient(|_| 0.0, &x.clone(), &x, 1e-3, 0);
    }
}
