/// Learning-rate schedules, mirroring the Darknet policies the paper's
/// training configs use (`constant`, `burn-in` + `steps`).
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// A constant learning rate.
    Constant {
        /// The learning rate.
        lr: f32,
    },
    /// Polynomial warm-up over the first `burnin` batches, then constant.
    /// Darknet: `lr * (batch/burnin)^power` during burn-in.
    Burnin {
        /// The post-warm-up learning rate.
        lr: f32,
        /// Number of warm-up batches.
        burnin: usize,
        /// Warm-up exponent (Darknet uses 4).
        power: f32,
    },
    /// Step decays: the base rate is multiplied by every `scale` whose
    /// `at_batch` has passed.
    Steps {
        /// The initial learning rate.
        lr: f32,
        /// `(at_batch, scale)` pairs, in ascending batch order.
        steps: Vec<(usize, f32)>,
    },
}

impl LrSchedule {
    /// Darknet's Tiny-YOLO training default: 1e-3 with a 100-batch burn-in
    /// and 10x decays late in training.
    pub fn darknet_default(total_batches: usize) -> Self {
        LrSchedule::Steps {
            lr: 1e-3,
            steps: vec![(total_batches * 8 / 10, 0.1), (total_batches * 9 / 10, 0.1)],
        }
    }

    /// Learning rate at (0-based) batch index `batch`.
    pub fn lr_at(&self, batch: usize) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::Burnin { lr, burnin, power } => {
                if *burnin == 0 || batch >= *burnin {
                    *lr
                } else {
                    lr * ((batch + 1) as f32 / *burnin as f32).powf(*power)
                }
            }
            LrSchedule::Steps { lr, steps } => {
                let mut rate = *lr;
                for (at, scale) in steps {
                    if batch >= *at {
                        rate *= scale;
                    }
                }
                rate
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(10_000), 0.01);
    }

    #[test]
    fn burnin_ramps_monotonically() {
        let s = LrSchedule::Burnin {
            lr: 1e-3,
            burnin: 100,
            power: 4.0,
        };
        let mut prev = 0.0;
        for b in 0..100 {
            let lr = s.lr_at(b);
            assert!(lr > prev, "batch {b}");
            assert!(lr <= 1e-3 + 1e-9);
            prev = lr;
        }
        assert_eq!(s.lr_at(100), 1e-3);
        assert_eq!(s.lr_at(1000), 1e-3);
    }

    #[test]
    fn burnin_zero_is_constant() {
        let s = LrSchedule::Burnin {
            lr: 0.5,
            burnin: 0,
            power: 4.0,
        };
        assert_eq!(s.lr_at(0), 0.5);
    }

    #[test]
    fn steps_decay_cumulatively() {
        let s = LrSchedule::Steps {
            lr: 1.0,
            steps: vec![(10, 0.1), (20, 0.5)],
        };
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(9), 1.0);
        assert!((s.lr_at(10) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(19) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(20) - 0.05).abs() < 1e-7);
    }

    #[test]
    fn darknet_default_decays_late() {
        let s = LrSchedule::darknet_default(1000);
        assert_eq!(s.lr_at(0), 1e-3);
        assert!(s.lr_at(850) < 1e-3);
        assert!(s.lr_at(950) < s.lr_at(850));
    }
}
