//! Durable, torn-write-safe training checkpoints.
//!
//! The paper trains for tens of thousands of Darknet batches before the
//! model ever reaches the UAV; on the Odroid/RPi-class hosts this project
//! targets, a multi-hour run must survive power blips and OOM kills. This
//! module provides the two halves of that guarantee:
//!
//! * [`Checkpoint`] — a versioned, sectioned binary bundle holding the
//!   network weights, the optimizer's moment buffers, the LR-schedule
//!   position and the loss history, where **every section carries a length
//!   and a CRC32 footer**, so truncation and bit flips are detected at load
//!   time as typed [`CheckpointError`]s instead of silently poisoned runs;
//! * [`CheckpointStore`] — a directory manager that writes bundles via
//!   temp-file → flush → fsync → atomic rename (a crash at *any* byte of a
//!   write never strands the run), rotates old snapshots (keep last-K plus
//!   best) and recovers the newest intact bundle with
//!   [`CheckpointStore::latest_valid`].
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! magic   [u8; 4] = b"DRCP"
//! version u32     = 1
//! then a sequence of sections, each:
//!   tag     u8        // 1 = META, 2 = WEIGHTS, 3 = OPTIMIZER, 0xFF = END
//!   len     u64       // payload length in bytes
//!   payload [u8; len]
//!   crc     u32       // CRC32 (IEEE) over tag || len || payload
//! ```
//!
//! A well-formed file contains exactly one META, WEIGHTS and OPTIMIZER
//! section followed by an END section (empty payload) and nothing after it.
//! The WEIGHTS payload is the `nn::weights` DRNW bundle, so the legacy raw
//! weight format stays loadable on its own.

use crate::{AdamState, SgdState};
use dronet_nn::{weights, Network, NnError};
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: [u8; 4] = *b"DRCP";
const VERSION: u32 = 1;

const TAG_META: u8 = 1;
const TAG_WEIGHTS: u8 = 2;
const TAG_OPTIMIZER: u8 = 3;
const TAG_END: u8 = 0xFF;

/// File extension used by the store, without the dot.
pub const CHECKPOINT_EXT: &str = "drcp";

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// Incremental CRC32 (IEEE 802.3, the zlib/PNG polynomial).
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = ((self.state ^ u32::from(b)) & 0xFF) as usize;
            self.state = CRC_TABLE[idx] ^ (self.state >> 8);
        }
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Typed failure modes of checkpoint parsing, loading and storage.
///
/// Every possible byte stream either loads exactly or returns one of these;
/// no input panics (property-tested in `tests/checkpoint_props.rs`).
#[derive(Debug)]
pub enum CheckpointError {
    /// An I/O error while reading or writing a checkpoint file.
    Io(std::io::Error),
    /// The file does not start with the `DRCP` magic.
    BadMagic {
        /// The four bytes actually found (zero-padded when shorter).
        found: [u8; 4],
    },
    /// The format version is not one this build can read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build writes and reads.
        expected: u32,
    },
    /// The byte stream ended before a complete section could be read —
    /// the classic torn (partially written) file.
    Truncated {
        /// What was being parsed when the bytes ran out.
        section: &'static str,
        /// Bytes needed to finish that parse.
        needed: u64,
        /// Bytes actually available.
        available: u64,
    },
    /// A section's CRC32 footer does not match its contents (bit rot or a
    /// torn write that happened to preserve the length fields).
    CrcMismatch {
        /// Section name.
        section: &'static str,
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the bytes actually read.
        computed: u32,
    },
    /// A section tag this version does not define.
    UnknownSection {
        /// The offending tag byte.
        tag: u8,
    },
    /// A required section is absent.
    MissingSection {
        /// Section name.
        section: &'static str,
    },
    /// A section decoded structurally but its contents are inconsistent
    /// (duplicate sections, impossible counts, trailing bytes…).
    Malformed {
        /// Section name.
        section: &'static str,
        /// Description of the inconsistency.
        msg: String,
    },
    /// The embedded weight bundle failed to load into the target network.
    Weights(NnError),
    /// A crash was injected by the test harness (see [`crate::crash`])
    /// while writing — the write never completed.
    InjectedCrash {
        /// Byte offset at which the simulated power-loss struck.
        at_byte: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            CheckpointError::BadMagic { found } => {
                write!(f, "bad magic {found:?}, expected {MAGIC:?}")
            }
            CheckpointError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported checkpoint version {found}, expected {expected}")
            }
            CheckpointError::Truncated {
                section,
                needed,
                available,
            } => write!(
                f,
                "truncated checkpoint: {section} needs {needed} bytes, only {available} available"
            ),
            CheckpointError::CrcMismatch {
                section,
                stored,
                computed,
            } => write!(
                f,
                "CRC mismatch in {section} section: stored {stored:#010x}, computed {computed:#010x}"
            ),
            CheckpointError::UnknownSection { tag } => {
                write!(f, "unknown section tag {tag:#04x}")
            }
            CheckpointError::MissingSection { section } => {
                write!(f, "missing required {section} section")
            }
            CheckpointError::Malformed { section, msg } => {
                write!(f, "malformed {section} section: {msg}")
            }
            CheckpointError::Weights(e) => write!(f, "checkpoint weights rejected: {e}"),
            CheckpointError::InjectedCrash { at_byte } => {
                write!(f, "injected crash killed the write at byte {at_byte}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Weights(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<NnError> for CheckpointError {
    fn from(e: NnError) -> Self {
        CheckpointError::Weights(e)
    }
}

// ---------------------------------------------------------------------------
// Checkpoint bundle
// ---------------------------------------------------------------------------

/// Optimizer state embedded in a checkpoint.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum OptimizerState {
    /// No optimizer state (inference-only snapshot).
    #[default]
    None,
    /// SGD momentum buffers.
    Sgd(SgdState),
    /// Adam moment buffers plus the bias-correction timestep.
    Adam(AdamState),
}

/// A complete training snapshot: everything needed to continue a run
/// bit-identically after a crash.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Global optimizer steps completed (doubles as the LR-schedule
    /// position: the next batch uses `lr_at(step)`).
    pub step: u64,
    /// Epoch the next batch belongs to (0-based).
    pub epoch: u64,
    /// Index within that epoch of the next batch to run.
    pub batch_in_epoch: u64,
    /// Images consumed so far (including augmented repeats).
    pub images_seen: u64,
    /// Best epoch-mean loss observed so far; `f32::INFINITY` before the
    /// first completed epoch.
    pub best_loss: f32,
    /// Cumulative sentry LR backoff multiplier (1.0 = none).
    pub lr_scale: f32,
    /// The divergence sentry's EWMA of the loss, if armed.
    pub ewma_loss: Option<f32>,
    /// Sentry rollbacks consumed from the retry budget.
    pub rollbacks: u64,
    /// Sentry trips observed (includes rollbacks and halts).
    pub trips: u64,
    /// Mean loss of every completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Running loss sum of the in-progress epoch.
    pub epoch_loss_partial: f32,
    /// Batches accumulated into [`Checkpoint::epoch_loss_partial`].
    pub epoch_batches_partial: u64,
    /// The network weights as a `nn::weights` DRNW bundle.
    pub weights: Vec<u8>,
    /// The optimizer's mutable state.
    pub optimizer: OptimizerState,
}

impl Default for Checkpoint {
    fn default() -> Self {
        Checkpoint {
            step: 0,
            epoch: 0,
            batch_in_epoch: 0,
            images_seen: 0,
            best_loss: f32::INFINITY,
            lr_scale: 1.0,
            ewma_loss: None,
            rollbacks: 0,
            trips: 0,
            epoch_losses: Vec::new(),
            epoch_loss_partial: 0.0,
            epoch_batches_partial: 0,
            weights: Vec::new(),
            optimizer: OptimizerState::None,
        }
    }
}

impl Checkpoint {
    /// Captures the current weights of `net` into a fresh checkpoint with
    /// all counters zeroed; the trainer fills the counters in.
    ///
    /// # Errors
    ///
    /// Propagates weight-serialisation failures.
    pub fn capture(net: &Network, optimizer: OptimizerState) -> Result<Self, CheckpointError> {
        let mut weights = Vec::new();
        weights::save(net, &mut weights)?;
        Ok(Checkpoint {
            weights,
            optimizer,
            ..Checkpoint::default()
        })
    }

    /// Loads the embedded weight bundle into `net` (which must match the
    /// architecture the checkpoint was captured from).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Weights`] when the bundle does not match.
    pub fn restore_network(&self, net: &mut Network) -> Result<(), CheckpointError> {
        weights::load(net, self.weights.as_slice())?;
        Ok(())
    }

    /// Serialises the checkpoint to its sectioned binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.weights.len() + 256);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        write_section(&mut out, TAG_META, &self.meta_payload());
        write_section(&mut out, TAG_WEIGHTS, &self.weights);
        write_section(&mut out, TAG_OPTIMIZER, &optimizer_payload(&self.optimizer));
        write_section(&mut out, TAG_END, &[]);
        out
    }

    /// Parses a checkpoint from raw bytes.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] for any malformed input:
    /// truncation, bit flips (CRC), version/magic mismatches, duplicate or
    /// missing sections, trailing garbage. Never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated {
                section: "header",
                needed: 8,
                available: bytes.len() as u64,
            });
        }
        if bytes[..4] != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&bytes[..4]);
            return Err(CheckpointError::BadMagic { found });
        }
        let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                expected: VERSION,
            });
        }

        let mut pos = 8usize;
        let mut meta: Option<Checkpoint> = None;
        let mut weights: Option<Vec<u8>> = None;
        let mut optimizer: Option<OptimizerState> = None;
        loop {
            let (tag, payload, next) = read_section(bytes, pos)?;
            pos = next;
            match tag {
                TAG_META => {
                    if meta.is_some() {
                        return Err(duplicate("META"));
                    }
                    meta = Some(parse_meta(payload)?);
                }
                TAG_WEIGHTS => {
                    if weights.is_some() {
                        return Err(duplicate("WEIGHTS"));
                    }
                    weights = Some(payload.to_vec());
                }
                TAG_OPTIMIZER => {
                    if optimizer.is_some() {
                        return Err(duplicate("OPTIMIZER"));
                    }
                    optimizer = Some(parse_optimizer(payload)?);
                }
                TAG_END => {
                    if !payload.is_empty() {
                        return Err(CheckpointError::Malformed {
                            section: "END",
                            msg: format!("END carries {} payload bytes", payload.len()),
                        });
                    }
                    break;
                }
                other => return Err(CheckpointError::UnknownSection { tag: other }),
            }
        }
        if pos != bytes.len() {
            return Err(CheckpointError::Malformed {
                section: "END",
                msg: format!("{} trailing bytes after END", bytes.len() - pos),
            });
        }
        let mut ckpt = meta.ok_or(CheckpointError::MissingSection { section: "META" })?;
        ckpt.weights = weights.ok_or(CheckpointError::MissingSection { section: "WEIGHTS" })?;
        ckpt.optimizer = optimizer.ok_or(CheckpointError::MissingSection {
            section: "OPTIMIZER",
        })?;
        Ok(ckpt)
    }

    fn meta_payload(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(96 + self.epoch_losses.len() * 4);
        p.extend_from_slice(&self.step.to_le_bytes());
        p.extend_from_slice(&self.epoch.to_le_bytes());
        p.extend_from_slice(&self.batch_in_epoch.to_le_bytes());
        p.extend_from_slice(&self.images_seen.to_le_bytes());
        p.extend_from_slice(&self.best_loss.to_le_bytes());
        p.extend_from_slice(&self.lr_scale.to_le_bytes());
        // NaN is the "unset" sentinel; a real EWMA is never NaN.
        p.extend_from_slice(&self.ewma_loss.unwrap_or(f32::NAN).to_le_bytes());
        p.extend_from_slice(&self.rollbacks.to_le_bytes());
        p.extend_from_slice(&self.trips.to_le_bytes());
        p.extend_from_slice(&(self.epoch_losses.len() as u64).to_le_bytes());
        for l in &self.epoch_losses {
            p.extend_from_slice(&l.to_le_bytes());
        }
        p.extend_from_slice(&self.epoch_loss_partial.to_le_bytes());
        p.extend_from_slice(&self.epoch_batches_partial.to_le_bytes());
        p
    }
}

fn duplicate(section: &'static str) -> CheckpointError {
    CheckpointError::Malformed {
        section,
        msg: "duplicate section".to_string(),
    }
}

fn write_section(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let start = out.len();
    out.push(tag);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Reads the section starting at `pos`; returns `(tag, payload, next_pos)`.
fn read_section(bytes: &[u8], pos: usize) -> Result<(u8, &[u8], usize), CheckpointError> {
    let remaining = bytes.len() - pos;
    if remaining < 9 {
        return Err(CheckpointError::Truncated {
            section: "section header",
            needed: 9,
            available: remaining as u64,
        });
    }
    let tag = bytes[pos];
    let mut len_bytes = [0u8; 8];
    len_bytes.copy_from_slice(&bytes[pos + 1..pos + 9]);
    let len = u64::from_le_bytes(len_bytes);
    let body_start = pos + 9;
    let needed = len.saturating_add(4); // payload + crc footer
    if ((bytes.len() - body_start) as u64) < needed {
        return Err(CheckpointError::Truncated {
            section: section_name(tag),
            needed,
            available: (bytes.len() - body_start) as u64,
        });
    }
    let len = len as usize;
    let payload = &bytes[body_start..body_start + len];
    let mut crc_bytes = [0u8; 4];
    crc_bytes.copy_from_slice(&bytes[body_start + len..body_start + len + 4]);
    let stored = u32::from_le_bytes(crc_bytes);
    let computed = crc32(&bytes[pos..body_start + len]);
    if stored != computed {
        return Err(CheckpointError::CrcMismatch {
            section: section_name(tag),
            stored,
            computed,
        });
    }
    Ok((tag, payload, body_start + len + 4))
}

fn section_name(tag: u8) -> &'static str {
    match tag {
        TAG_META => "META",
        TAG_WEIGHTS => "WEIGHTS",
        TAG_OPTIMIZER => "OPTIMIZER",
        TAG_END => "END",
        _ => "unknown",
    }
}

/// Bounds-checked little-endian cursor over a section payload.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8], section: &'static str) -> Self {
        Cursor {
            buf,
            pos: 0,
            section,
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.buf.len() - self.pos < n {
            return Err(CheckpointError::Truncated {
                section: self.section,
                needed: n as u64,
                available: (self.buf.len() - self.pos) as u64,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn f32(&mut self) -> Result<f32, CheckpointError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(f32::from_le_bytes(b))
    }

    /// Reads a `count`-prefixed run of f32s; `count` is validated against
    /// the remaining bytes before any allocation, so a flipped length byte
    /// cannot demand a huge buffer.
    fn f32s(&mut self) -> Result<Vec<f32>, CheckpointError> {
        let count = self.u64()?;
        let remaining = (self.buf.len() - self.pos) as u64;
        if count > remaining / 4 {
            return Err(CheckpointError::Malformed {
                section: self.section,
                msg: format!("claims {count} f32s but only {remaining} bytes remain"),
            });
        }
        let raw = self.take(count as usize * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }

    fn finish(&self) -> Result<(), CheckpointError> {
        if self.pos != self.buf.len() {
            return Err(CheckpointError::Malformed {
                section: self.section,
                msg: format!("{} trailing payload bytes", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

fn parse_meta(payload: &[u8]) -> Result<Checkpoint, CheckpointError> {
    let mut c = Cursor::new(payload, "META");
    let step = c.u64()?;
    let epoch = c.u64()?;
    let batch_in_epoch = c.u64()?;
    let images_seen = c.u64()?;
    let best_loss = c.f32()?;
    let lr_scale = c.f32()?;
    let ewma_raw = c.f32()?;
    let rollbacks = c.u64()?;
    let trips = c.u64()?;
    let epoch_losses = c.f32s()?;
    let epoch_loss_partial = c.f32()?;
    let epoch_batches_partial = c.u64()?;
    c.finish()?;
    if !lr_scale.is_finite() || lr_scale <= 0.0 {
        return Err(CheckpointError::Malformed {
            section: "META",
            msg: format!("lr_scale {lr_scale} not in (0, inf)"),
        });
    }
    Ok(Checkpoint {
        step,
        epoch,
        batch_in_epoch,
        images_seen,
        best_loss,
        lr_scale,
        ewma_loss: if ewma_raw.is_nan() {
            None
        } else {
            Some(ewma_raw)
        },
        rollbacks,
        trips,
        epoch_losses,
        epoch_loss_partial,
        epoch_batches_partial,
        weights: Vec::new(),
        optimizer: OptimizerState::None,
    })
}

const OPT_NONE: u8 = 0;
const OPT_SGD: u8 = 1;
const OPT_ADAM: u8 = 2;

fn optimizer_payload(state: &OptimizerState) -> Vec<u8> {
    let mut p = Vec::new();
    match state {
        OptimizerState::None => p.push(OPT_NONE),
        OptimizerState::Sgd(s) => {
            p.push(OPT_SGD);
            write_groups(&mut p, &s.velocity);
        }
        OptimizerState::Adam(a) => {
            p.push(OPT_ADAM);
            p.extend_from_slice(&a.step_count.to_le_bytes());
            write_groups(&mut p, &a.m);
            write_groups(&mut p, &a.v);
        }
    }
    p
}

fn write_groups(p: &mut Vec<u8>, groups: &[Vec<f32>]) {
    p.extend_from_slice(&(groups.len() as u64).to_le_bytes());
    for g in groups {
        p.extend_from_slice(&(g.len() as u64).to_le_bytes());
        for v in g {
            p.extend_from_slice(&v.to_le_bytes());
        }
    }
}

fn read_groups(c: &mut Cursor<'_>) -> Result<Vec<Vec<f32>>, CheckpointError> {
    let n = c.u64()?;
    // Each group needs at least its 8-byte length prefix.
    let remaining = (c.buf.len() - c.pos) as u64;
    if n > remaining / 8 {
        return Err(CheckpointError::Malformed {
            section: c.section,
            msg: format!("claims {n} parameter groups but only {remaining} bytes remain"),
        });
    }
    let mut groups = Vec::with_capacity(n as usize);
    for _ in 0..n {
        groups.push(c.f32s()?);
    }
    Ok(groups)
}

fn parse_optimizer(payload: &[u8]) -> Result<OptimizerState, CheckpointError> {
    let mut c = Cursor::new(payload, "OPTIMIZER");
    let kind = c.u8()?;
    let state = match kind {
        OPT_NONE => OptimizerState::None,
        OPT_SGD => OptimizerState::Sgd(SgdState {
            velocity: read_groups(&mut c)?,
        }),
        OPT_ADAM => {
            let step_count = c.u64()?;
            let m = read_groups(&mut c)?;
            let v = read_groups(&mut c)?;
            if m.len() != v.len() {
                return Err(CheckpointError::Malformed {
                    section: "OPTIMIZER",
                    msg: format!("Adam has {} m-groups but {} v-groups", m.len(), v.len()),
                });
            }
            OptimizerState::Adam(AdamState { step_count, m, v })
        }
        other => {
            return Err(CheckpointError::Malformed {
                section: "OPTIMIZER",
                msg: format!("unknown optimizer kind {other}"),
            })
        }
    };
    c.finish()?;
    Ok(state)
}

// ---------------------------------------------------------------------------
// Store
// ---------------------------------------------------------------------------

/// What [`CheckpointStore::latest_valid`] found while scanning a directory.
#[derive(Debug)]
pub struct Recovery {
    /// The newest checkpoint that parsed and CRC-verified end to end, with
    /// the path it was read from. `None` when no file in the directory is
    /// intact.
    pub checkpoint: Option<(PathBuf, Checkpoint)>,
    /// Files that were rejected on the way (newest first) and why — torn
    /// writes, bit flips, version skew. Useful for telemetry/forensics.
    pub rejected: Vec<(PathBuf, CheckpointError)>,
}

/// Directory-backed checkpoint manager with atomic writes and rotation.
///
/// Snapshot files are named `ckpt-<step, zero padded>.drcp` so
/// lexicographic order is step order; the best-so-far snapshot lives in
/// `best.drcp` and is exempt from rotation.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep_last: usize,
}

impl CheckpointStore {
    /// Opens (creating if needed) a store at `dir`, keeping the last 3
    /// snapshots by default. Stale temp files from crashed writers are
    /// swept on open.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the directory cannot be
    /// created or listed.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let store = CheckpointStore { dir, keep_last: 3 };
        store.sweep_temp_files()?;
        Ok(store)
    }

    /// Sets how many rotating snapshots to retain (minimum 1; `best.drcp`
    /// is kept in addition).
    pub fn keep_last(mut self, n: usize) -> Self {
        self.keep_last = n.max(1);
        self
    }

    /// The managed directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path a snapshot for `step` is stored at.
    pub fn snapshot_path(&self, step: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{step:012}.{CHECKPOINT_EXT}"))
    }

    /// Path of the best-so-far snapshot.
    pub fn best_path(&self) -> PathBuf {
        self.dir.join(format!("best.{CHECKPOINT_EXT}"))
    }

    /// Writes `ckpt` atomically as the snapshot for its step, then rotates
    /// old snapshots beyond the keep-last budget.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on write failure; a failed write
    /// never corrupts existing snapshots.
    pub fn save(&self, ckpt: &Checkpoint) -> Result<PathBuf, CheckpointError> {
        let path = self.snapshot_path(ckpt.step);
        atomic_write(&path, &ckpt.to_bytes())?;
        self.rotate()?;
        Ok(path)
    }

    /// Writes `ckpt` atomically to `best.drcp` (exempt from rotation).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] on write failure.
    pub fn save_best(&self, ckpt: &Checkpoint) -> Result<PathBuf, CheckpointError> {
        let path = self.best_path();
        atomic_write(&path, &ckpt.to_bytes())?;
        Ok(path)
    }

    /// Loads and fully validates one checkpoint file.
    ///
    /// # Errors
    ///
    /// Any read or parse failure, as a typed [`CheckpointError`].
    pub fn load(path: impl AsRef<Path>) -> Result<Checkpoint, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Checkpoint::from_bytes(&bytes)
    }

    /// Loads `best.drcp` if present and intact.
    ///
    /// # Errors
    ///
    /// See [`CheckpointStore::load`].
    pub fn load_best(&self) -> Result<Option<Checkpoint>, CheckpointError> {
        let path = self.best_path();
        if !path.exists() {
            return Ok(None);
        }
        Ok(Some(Self::load(path)?))
    }

    /// Scans snapshots newest-to-oldest and returns the first one that
    /// parses and CRC-verifies, together with every rejected (torn,
    /// bit-flipped, version-skewed) file on the way. Corrupt files are
    /// reported, never panicked on, and never block recovery of an older
    /// intact snapshot.
    ///
    /// # Errors
    ///
    /// Only directory-listing I/O failures; per-file corruption lands in
    /// [`Recovery::rejected`].
    pub fn latest_valid(&self) -> Result<Recovery, CheckpointError> {
        let mut rejected = Vec::new();
        for path in self.snapshots_desc()? {
            match Self::load(&path) {
                Ok(ckpt) => {
                    return Ok(Recovery {
                        checkpoint: Some((path, ckpt)),
                        rejected,
                    })
                }
                Err(e) => rejected.push((path, e)),
            }
        }
        Ok(Recovery {
            checkpoint: None,
            rejected,
        })
    }

    /// Rotating snapshot paths, oldest first (excludes `best.drcp`).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Io`] when the directory cannot be read.
    pub fn snapshots(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let mut v = self.snapshots_desc()?;
        v.reverse();
        Ok(v)
    }

    fn snapshots_desc(&self) -> Result<Vec<PathBuf>, CheckpointError> {
        let mut named: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if let Some(step) = parse_snapshot_step(&path) {
                named.push((step, path));
            }
        }
        named.sort_by_key(|e| std::cmp::Reverse(e.0));
        Ok(named.into_iter().map(|(_, p)| p).collect())
    }

    fn rotate(&self) -> Result<(), CheckpointError> {
        let snapshots = self.snapshots_desc()?;
        for stale in snapshots.iter().skip(self.keep_last) {
            std::fs::remove_file(stale)?;
        }
        Ok(())
    }

    fn sweep_temp_files(&self) -> Result<(), CheckpointError> {
        for entry in std::fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.contains(".tmp-"))
            {
                std::fs::remove_file(&path)?;
            }
        }
        Ok(())
    }
}

fn parse_snapshot_step(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let stem = name
        .strip_prefix("ckpt-")?
        .strip_suffix(&format!(".{CHECKPOINT_EXT}"))?;
    stem.parse().ok()
}

/// Temp-file → flush → fsync → rename write, the durability core of the
/// store. Exposed for the crash harness, which wraps it with injected
/// faults (see [`crate::crash`]).
///
/// # Errors
///
/// Returns [`CheckpointError::Io`] on failure; the temp file is removed.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(format!(".tmp-{}", std::process::id()));
    let tmp = PathBuf::from(tmp_name);
    let result = (|| {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            // Durability of the rename, best-effort across platforms.
            let _ = std::fs::File::open(dir).and_then(|d| d.sync_all());
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dronet_nn::{Activation, Conv2d, Layer};
    use rand::SeedableRng;

    fn make_net(seed: u64) -> Network {
        let mut net = Network::new(3, 16, 16);
        net.push(Layer::conv(
            Conv2d::new(3, 4, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::conv(
            Conv2d::new(4, 2, 1, 1, 0, Activation::Linear, false).unwrap(),
        ));
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        net.init_weights(&mut rng);
        net
    }

    fn sample_checkpoint() -> Checkpoint {
        let net = make_net(7);
        let mut ckpt = Checkpoint::capture(
            &net,
            OptimizerState::Sgd(SgdState {
                velocity: vec![vec![0.5, -0.25], vec![1.0; 3]],
            }),
        )
        .unwrap();
        ckpt.step = 42;
        ckpt.epoch = 3;
        ckpt.batch_in_epoch = 2;
        ckpt.images_seen = 336;
        ckpt.best_loss = 1.25;
        ckpt.lr_scale = 0.5;
        ckpt.ewma_loss = Some(2.5);
        ckpt.rollbacks = 1;
        ckpt.trips = 2;
        ckpt.epoch_losses = vec![4.0, 3.0, 2.0];
        ckpt.epoch_loss_partial = 3.5;
        ckpt.epoch_batches_partial = 2;
        ckpt
    }

    fn store_in_fresh_dir(name: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("dronet-ckpt-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        CheckpointStore::open(&dir).unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn bytes_roundtrip_is_bit_exact() {
        let ckpt = sample_checkpoint();
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ckpt, back);
        // And the weights restore into a different-seeded net.
        let mut net = make_net(9);
        back.restore_network(&mut net).unwrap();
        let mut expected = Vec::new();
        weights::save(&net, &mut expected).unwrap();
        assert_eq!(expected, back.weights);
    }

    #[test]
    fn adam_state_roundtrips() {
        let mut ckpt = sample_checkpoint();
        ckpt.optimizer = OptimizerState::Adam(AdamState {
            step_count: 17,
            m: vec![vec![0.125; 4]],
            v: vec![vec![0.5; 4]],
        });
        let back = Checkpoint::from_bytes(&ckpt.to_bytes()).unwrap();
        assert_eq!(ckpt, back);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample_checkpoint().to_bytes();
        for cut in 0..bytes.len() {
            let err = Checkpoint::from_bytes(&bytes[..cut])
                .expect_err(&format!("truncation at {cut} must fail"));
            // Must be a structural error, not Io/Weights.
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. }
                        | CheckpointError::CrcMismatch { .. }
                        | CheckpointError::BadMagic { .. }
                        | CheckpointError::MissingSection { .. }
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample_checkpoint().to_bytes();
        bytes.extend_from_slice(&[0u8; 7]);
        let err = Checkpoint::from_bytes(&bytes).unwrap_err();
        assert!(
            matches!(
                err,
                CheckpointError::Malformed { .. } | CheckpointError::Truncated { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn store_saves_rotates_and_recovers() {
        let store = store_in_fresh_dir("rotate").keep_last(3);
        let mut ckpt = sample_checkpoint();
        for step in [10u64, 20, 30, 40, 50] {
            ckpt.step = step;
            store.save(&ckpt).unwrap();
        }
        let kept = store.snapshots().unwrap();
        assert_eq!(kept.len(), 3, "rotation keeps last 3: {kept:?}");
        assert_eq!(kept[0], store.snapshot_path(30));
        assert_eq!(kept[2], store.snapshot_path(50));
        let rec = store.latest_valid().unwrap();
        let (path, latest) = rec.checkpoint.unwrap();
        assert_eq!(path, store.snapshot_path(50));
        assert_eq!(latest.step, 50);
        assert!(rec.rejected.is_empty());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn best_is_exempt_from_rotation() {
        let store = store_in_fresh_dir("best").keep_last(1);
        let mut ckpt = sample_checkpoint();
        store.save_best(&ckpt).unwrap();
        for step in [1u64, 2, 3] {
            ckpt.step = step;
            store.save(&ckpt).unwrap();
        }
        assert_eq!(store.snapshots().unwrap().len(), 1);
        let best = store.load_best().unwrap().unwrap();
        assert_eq!(best.step, 42);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn latest_valid_skips_corrupt_newest_files() {
        let store = store_in_fresh_dir("skip-corrupt");
        let mut ckpt = sample_checkpoint();
        ckpt.step = 1;
        store.save(&ckpt).unwrap();
        // Newest snapshot is torn mid-file (simulating a non-atomic writer
        // or post-rename sector loss)…
        let torn = sample_checkpoint().to_bytes();
        std::fs::write(store.snapshot_path(2), &torn[..torn.len() / 2]).unwrap();
        // …and an even newer one is bit-flipped.
        let mut flipped = sample_checkpoint().to_bytes();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(store.snapshot_path(3), &flipped).unwrap();

        let rec = store.latest_valid().unwrap();
        let (path, recovered) = rec.checkpoint.unwrap();
        assert_eq!(path, store.snapshot_path(1));
        assert_eq!(recovered.step, 1);
        assert_eq!(rec.rejected.len(), 2, "{:?}", rec.rejected);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn open_sweeps_stale_temp_files() {
        let dir = std::env::temp_dir().join(format!("dronet-ckpt-sweep-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let debris = dir.join(format!("ckpt-000000000005.drcp.tmp-{}", 12345));
        std::fs::write(&debris, b"half a checkpoint").unwrap();
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(!debris.exists(), "crash debris must be swept");
        assert!(store.latest_valid().unwrap().checkpoint.is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
