//! Property-based tests for the checkpoint format: arbitrary corruption
//! (truncation, bit flips, garbage) must never panic or silently load —
//! every byte stream is either the exact checkpoint back or a typed
//! [`CheckpointError`].

use dronet_train::{crc32, AdamState, Checkpoint, CheckpointError, OptimizerState, SgdState};
use proptest::prelude::*;

/// Builds a checkpoint with contents fully derived from the proptest
/// inputs, exercising both optimizer variants and the optional fields.
fn build_checkpoint(
    step: u64,
    weights: Vec<u8>,
    losses: Vec<f32>,
    kind: u8,
    groups: Vec<Vec<f32>>,
    ewma: Option<f32>,
) -> Checkpoint {
    let optimizer = match kind % 3 {
        0 => OptimizerState::None,
        1 => OptimizerState::Sgd(SgdState {
            velocity: groups.clone(),
        }),
        _ => OptimizerState::Adam(AdamState {
            step_count: step.wrapping_mul(3),
            m: groups.clone(),
            v: groups,
        }),
    };
    Checkpoint {
        step,
        epoch: step / 7,
        batch_in_epoch: step % 7,
        images_seen: step.wrapping_mul(9),
        best_loss: losses.first().copied().unwrap_or(f32::INFINITY),
        lr_scale: 0.5,
        ewma_loss: ewma,
        rollbacks: step % 3,
        trips: step % 5,
        epoch_losses: losses,
        epoch_loss_partial: 1.25,
        epoch_batches_partial: step % 11,
        weights,
        optimizer,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serialisation round-trips bit-exactly for arbitrary contents.
    #[test]
    fn roundtrip_is_bit_exact(
        step in any::<u64>(),
        weights in prop::collection::vec(any::<u8>(), 0..256),
        losses in prop::collection::vec(0.0f32..100.0, 0..8),
        kind in any::<u8>(),
        group in prop::collection::vec(-10.0f32..10.0, 0..32),
        ewma_raw in 0.0f32..50.0,
        has_ewma in any::<u8>(),
    ) {
        let ewma = has_ewma.is_multiple_of(2).then_some(ewma_raw);
        let ckpt = build_checkpoint(step, weights, losses, kind, vec![group], ewma);
        let bytes = ckpt.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, ckpt);
    }

    /// Every possible truncation of a valid checkpoint is a typed error,
    /// never a panic and never a silent success.
    #[test]
    fn truncation_never_panics_or_loads(
        step in any::<u64>(),
        weights in prop::collection::vec(any::<u8>(), 0..64),
        cut_frac in 0.0f64..1.0,
    ) {
        let ckpt = build_checkpoint(step, weights, vec![1.0], 1, vec![vec![0.5; 4]], None);
        let bytes = ckpt.to_bytes();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < bytes.len());
        let err = Checkpoint::from_bytes(&bytes[..cut])
            .expect_err("a truncated checkpoint must not load");
        prop_assert!(
            matches!(
                err,
                CheckpointError::Truncated { .. }
                    | CheckpointError::CrcMismatch { .. }
                    | CheckpointError::BadMagic { .. }
                    | CheckpointError::MissingSection { .. }
                    | CheckpointError::Malformed { .. }
            ),
            "unexpected error class: {err}"
        );
    }

    /// A single flipped bit anywhere in the file is always detected.
    #[test]
    fn single_bit_flip_is_always_detected(
        step in any::<u64>(),
        weights in prop::collection::vec(any::<u8>(), 1..64),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let ckpt = build_checkpoint(step, weights, vec![2.0, 1.5], 2, vec![vec![0.1; 3]], Some(1.0));
        let mut bytes = ckpt.to_bytes();
        let idx = (byte_pick % bytes.len() as u64) as usize;
        bytes[idx] ^= 1u8 << bit;
        match Checkpoint::from_bytes(&bytes) {
            Err(_) => {}
            // CRC32 catches all single-bit flips; a load that still
            // succeeds would mean the flip escaped every checksum.
            Ok(loaded) => prop_assert_eq!(loaded, ckpt),
        }
    }

    /// Arbitrary garbage never panics: either `BadMagic` (wrong prefix) or
    /// another typed error (garbage that guessed the magic).
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Checkpoint::from_bytes(&bytes);
    }

    /// Garbage appended after a valid checkpoint is rejected — the format
    /// is self-delimiting and strict.
    #[test]
    fn trailing_garbage_is_rejected(
        step in any::<u64>(),
        tail in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let ckpt = build_checkpoint(step, vec![7u8; 16], vec![], 0, vec![], None);
        let mut bytes = ckpt.to_bytes();
        bytes.extend_from_slice(&tail);
        prop_assert!(Checkpoint::from_bytes(&bytes).is_err());
    }

    /// The CRC32 implementation matches the IEEE 802.3 polynomial's
    /// defining identities: appending a byte updates the state the same
    /// way regardless of the prefix content length.
    #[test]
    fn crc32_differs_on_any_single_bit_flip(
        data in prop::collection::vec(any::<u8>(), 1..128),
        byte_pick in any::<u64>(),
        bit in 0u8..8,
    ) {
        let original = crc32(&data);
        let mut flipped = data.clone();
        let idx = (byte_pick % data.len() as u64) as usize;
        flipped[idx] ^= 1u8 << bit;
        prop_assert_ne!(original, crc32(&flipped));
    }
}
