use crate::profile::{
    alloc_bytes_metric_name, alloc_metric_name, backward_metric_name, forward_metric_name,
    kind_slug,
};
use crate::{ActivationPool, Layer, NnError, Result};
use dronet_obs::{AllocScope, Counter, Histogram, Registry, Tracer};
use dronet_tensor::{Shape, Tensor};

/// A sequential CNN: the Darknet network model.
///
/// Layers execute in order; the network records its nominal input
/// dimensions (channels, height, width) and validates inputs against them.
///
/// # Example
///
/// ```
/// use dronet_nn::{Activation, Conv2d, Layer, MaxPool2d, Network};
/// use dronet_tensor::{Shape, Tensor};
///
/// # fn main() -> Result<(), dronet_nn::NnError> {
/// let mut net = Network::new(3, 16, 16);
/// net.push(Layer::conv(Conv2d::new(3, 4, 3, 1, 1, Activation::Leaky, true)?));
/// net.push(Layer::max_pool(MaxPool2d::new(2, 2)?));
/// let y = net.forward(&Tensor::zeros(Shape::nchw(2, 3, 16, 16)))?;
/// assert_eq!(y.shape().dims(), &[2, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Network {
    input_c: usize,
    input_h: usize,
    input_w: usize,
    layers: Vec<Layer>,
    /// Number of training samples seen, mirrored into weight files.
    seen: u64,
    /// Telemetry sink; inert unless [`Network::set_observability`] is
    /// called with a live registry.
    obs: Registry,
    /// Per-layer forward-pass histograms (empty when unobserved, so the
    /// hot loop pays only a bounds check).
    forward_spans: Vec<Histogram>,
    /// Per-layer backward-pass histograms.
    backward_spans: Vec<Histogram>,
    /// Per-layer (allocation count, allocated bytes) counters for the
    /// forward pass. Populated only when observability is enabled *and*
    /// the instrumented global allocator is installed, so uninstrumented
    /// builds pay nothing.
    alloc_spans: Vec<(Counter, Counter)>,
    forward_total: Histogram,
    backward_total: Histogram,
    /// Flight recorder; inert unless [`Network::set_tracing`] is called
    /// with a live tracer.
    tracer: Tracer,
    /// Recycled activation/scratch buffers for the inference path (empty
    /// until the first [`Network::forward`]; clones start empty).
    scratch: ActivationPool,
}

impl Network {
    /// Creates an empty network expecting `c x h x w` inputs.
    pub fn new(c: usize, h: usize, w: usize) -> Self {
        Network {
            input_c: c,
            input_h: h,
            input_w: w,
            layers: Vec::new(),
            seen: 0,
            obs: Registry::noop(),
            forward_spans: Vec::new(),
            backward_spans: Vec::new(),
            alloc_spans: Vec::new(),
            forward_total: Histogram::default(),
            backward_total: Histogram::default(),
            tracer: Tracer::noop(),
            scratch: ActivationPool::default(),
        }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Layer) {
        self.layers.push(layer);
        if self.obs.is_enabled() {
            self.rebuild_spans();
        }
    }

    /// Attaches (or, with a [`Registry::noop`], detaches) telemetry.
    ///
    /// With a live registry every forward/backward pass records per-layer
    /// latency histograms named `nn.forward.L{index:02}.{kind}` /
    /// `nn.backward.L{index:02}.{kind}` plus `nn.forward.total` and
    /// `nn.backward.total`; join them with a
    /// [`NetworkSummary`](crate::summary::NetworkSummary) via
    /// [`NetworkProfile`](crate::profile::NetworkProfile) for per-layer
    /// achieved-GFLOP/s breakdowns. Handles are cached per layer so the
    /// hot path never touches the registry's lock.
    pub fn set_observability(&mut self, obs: &Registry) {
        self.obs = obs.clone();
        self.rebuild_spans();
    }

    /// The registry metrics are recorded into (inert by default).
    pub fn observability(&self) -> &Registry {
        &self.obs
    }

    /// Attaches (or, with [`Tracer::noop`], detaches) the flight recorder.
    ///
    /// With a live tracer every inference forward pass writes an
    /// `nn.forward` span wrapping one span per layer (named by the layer's
    /// kind slug, the layer index in the span's aux field), all carrying
    /// the calling thread's current `frame_id` trace context. Histograms
    /// answer *how long on average*; these spans answer *what happened
    /// inside frame N*.
    pub fn set_tracing(&mut self, tracer: &Tracer) {
        self.tracer = tracer.clone();
    }

    /// The flight recorder spans are written to (inert by default).
    pub fn tracing(&self) -> &Tracer {
        &self.tracer
    }

    fn rebuild_spans(&mut self) {
        if !self.obs.is_enabled() {
            self.forward_spans.clear();
            self.backward_spans.clear();
            self.alloc_spans.clear();
            self.forward_total = Histogram::default();
            self.backward_total = Histogram::default();
            return;
        }
        self.forward_total = self.obs.histogram("nn.forward.total");
        self.backward_total = self.obs.histogram("nn.backward.total");
        self.forward_spans = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| self.obs.histogram(&forward_metric_name(i, l.kind())))
            .collect();
        self.backward_spans = self
            .layers
            .iter()
            .enumerate()
            .map(|(i, l)| self.obs.histogram(&backward_metric_name(i, l.kind())))
            .collect();
        // Allocation telemetry is meaningful only under the instrumented
        // global allocator; without it the deltas would all read zero, so
        // skip creating the counters at all.
        self.alloc_spans = if dronet_obs::alloc::installed() {
            self.layers
                .iter()
                .enumerate()
                .map(|(i, l)| {
                    (
                        self.obs.counter(&alloc_metric_name(i, l.kind())),
                        self.obs.counter(&alloc_bytes_metric_name(i, l.kind())),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (weight loading, quantisation).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Nominal input `(channels, height, width)`.
    pub fn input_chw(&self) -> (usize, usize, usize) {
        (self.input_c, self.input_h, self.input_w)
    }

    /// Changes the nominal input resolution (the paper's input-size sweep
    /// re-uses one architecture at several resolutions).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadLayerConfig`] when either dimension is zero.
    pub fn set_input_size(&mut self, h: usize, w: usize) -> Result<()> {
        if h == 0 || w == 0 {
            return Err(NnError::BadLayerConfig {
                layer: "net",
                msg: format!("input size {h}x{w} must be positive"),
            });
        }
        self.input_h = h;
        self.input_w = w;
        Ok(())
    }

    /// Training samples seen so far (persisted in weight files).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Updates the seen-samples counter.
    pub fn set_seen(&mut self, seen: u64) {
        self.seen = seen;
    }

    /// Output `(channels, height, width)` of the final layer.
    pub fn output_chw(&self) -> (usize, usize, usize) {
        let mut chw = self.input_chw();
        for layer in &self.layers {
            chw = layer.output_chw(chw.0, chw.1, chw.2);
        }
        chw
    }

    /// Output shape for a batch of `n` images.
    pub fn output_shape(&self, n: usize) -> Shape {
        let (c, h, w) = self.output_chw();
        Shape::nchw(n, c, h, w)
    }

    fn check_input(&self, x: &Tensor) -> Result<()> {
        let s = x.shape();
        let ok = s.rank() == 4
            && s.channels() == self.input_c
            && s.height() == self.input_h
            && s.width() == self.input_w;
        if ok {
            Ok(())
        } else {
            Err(NnError::BadInput {
                expected: vec![0, self.input_c, self.input_h, self.input_w],
                actual: s.dims().to_vec(),
            })
        }
    }

    /// Inference forward pass over a batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadInput`] when `x` does not match the nominal
    /// input dimensions; propagates layer errors.
    pub fn forward(&mut self, x: &Tensor) -> Result<Tensor> {
        self.check_input(x)?;
        let total = self.forward_total.start();
        let trace_total = self.tracer.span("nn.forward");
        // Activations flow through the recycled scratch pool: each layer
        // draws its output from it and the previous layer's (now consumed)
        // activation is returned to it, so repeated forwards — a serving
        // loop — reuse the same mapped pages instead of re-faulting
        // mmap-sized allocations every pass.
        let mut pool = std::mem::take(&mut self.scratch);
        let mut cur: Option<Tensor> = None;
        let mut failed = None;
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let span = self.forward_spans.get(i).map(Histogram::start);
            let trace_span = self.tracer.span_aux(kind_slug(layer.kind()), i as i64);
            let alloc_scope = (!self.alloc_spans.is_empty()).then(AllocScope::begin);
            // The first layer reads the caller's tensor directly — no
            // input clone.
            match layer.forward_pooled(cur.as_ref().unwrap_or(x), &mut pool) {
                Ok(next) => {
                    if let Some(prev) = cur.replace(next) {
                        pool.give(prev.into_vec());
                    }
                }
                Err(e) => {
                    failed = Some(at_layer(e, i));
                }
            }
            if let (Some(scope), Some((allocs, bytes))) = (alloc_scope, self.alloc_spans.get(i)) {
                let delta = scope.delta();
                allocs.add(delta.allocs);
                bytes.add(delta.bytes);
            }
            drop(trace_span);
            drop(span);
            if failed.is_some() {
                break;
            }
        }
        self.scratch = pool;
        if let Some(e) = failed {
            return Err(e);
        }
        drop(trace_total);
        total.stop();
        Ok(cur.unwrap_or_else(|| x.clone()))
    }

    /// Returns a consumed forward output to the recycled scratch pool.
    ///
    /// [`Network::forward`] draws every activation — including the final
    /// output it returns — from the pool, but cannot reclaim the output
    /// itself. A serving loop that recycles each result once decoded makes
    /// the steady-state forward fully allocation-free (pooled conv path,
    /// warm pool, single-threaded GEMM).
    pub fn recycle(&mut self, output: Tensor) {
        self.scratch.give(output.into_vec());
    }

    /// Training forward pass: every layer records the caches backward needs.
    ///
    /// # Errors
    ///
    /// Same as [`Network::forward`].
    pub fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        self.check_input(x)?;
        self.seen += x.shape().batch() as u64;
        let total = self.forward_total.start();
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            let span = self.forward_spans.get(i).map(Histogram::start);
            cur = layer.forward_train(&cur).map_err(|e| at_layer(e, i))?;
            drop(span);
        }
        total.stop();
        Ok(cur)
    }

    /// Backward pass from the gradient at the network output; accumulates
    /// parameter gradients and returns the gradient at the input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingForwardCache`] (with the layer index) when
    /// a layer has no forward cache; propagates layer errors.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor> {
        let total = self.backward_total.start();
        let mut grad = grad_out.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            let span = self.backward_spans.get(i).map(Histogram::start);
            grad = layer.backward(&grad).map_err(|e| at_layer(e, i))?;
            drop(span);
        }
        total.stop();
        Ok(grad)
    }

    /// Clears all accumulated parameter gradients.
    pub fn zero_grads(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grads();
        }
    }

    /// Visits every (parameter slice, gradient slice) pair in the network,
    /// in a stable order. Optimizers use this to update weights.
    pub fn visit_params_mut(&mut self, mut f: impl FnMut(&mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            if let Layer::Conv(conv) = layer {
                conv.visit_params_mut(&mut f);
            }
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Re-initialises every convolution from `rng` (Kaiming weights, zero
    /// biases). Use for reproducible training starts.
    pub fn init_weights(&mut self, rng: &mut impl rand::Rng) {
        for layer in &mut self.layers {
            if let Layer::Conv(conv) = layer {
                conv.init_weights(rng);
            }
        }
    }
}

fn at_layer(e: NnError, index: usize) -> NnError {
    match e {
        NnError::MissingForwardCache { .. } => NnError::MissingForwardCache { layer_index: index },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Conv2d, MaxPool2d, RegionConfig, RegionLayer};
    use dronet_tensor::init;
    use rand::SeedableRng;

    fn tiny_net() -> Network {
        let mut net = Network::new(3, 16, 16);
        net.push(Layer::conv(
            Conv2d::new(3, 8, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(8, 12, 3, 1, 1, Activation::Leaky, true).unwrap(),
        ));
        net.push(Layer::max_pool(MaxPool2d::new(2, 2).unwrap()));
        net.push(Layer::conv(
            Conv2d::new(12, 6, 1, 1, 0, Activation::Linear, false).unwrap(),
        ));
        net.push(Layer::region(
            RegionLayer::new(RegionConfig {
                anchors: vec![(1.0, 1.5)],
                classes: 1,
            })
            .unwrap(),
        ));
        net
    }

    #[test]
    fn forward_shapes_propagate() {
        let mut net = tiny_net();
        assert_eq!(net.output_chw(), (6, 4, 4));
        let y = net
            .forward(&Tensor::zeros(Shape::nchw(2, 3, 16, 16)))
            .unwrap();
        assert_eq!(y.shape(), &net.output_shape(2));
    }

    /// End-to-end batch sanity for the serving micro-batcher: a batched
    /// forward through conv → pool → conv → region must reproduce each
    /// per-image forward bit-exactly (no cross-image stride leakage in any
    /// layer).
    #[test]
    fn batched_forward_matches_per_image_forwards_bit_exactly() {
        let mut net = tiny_net();
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        net.init_weights(&mut rng);
        let batch = init::uniform(Shape::nchw(4, 3, 16, 16), -1.0, 1.0, &mut rng);
        let batched = net.forward(&batch).unwrap();
        for b in 0..4 {
            let single = net.forward(&batch.batch_item(b).unwrap()).unwrap();
            assert_eq!(
                batched.batch_item(b).unwrap().as_slice(),
                single.as_slice(),
                "image {b} diverges between batched and single forward"
            );
        }
    }

    #[test]
    fn rejects_wrong_input_size() {
        let mut net = tiny_net();
        let bad = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
        assert!(matches!(net.forward(&bad), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn input_resize_changes_output_grid() {
        let mut net = tiny_net();
        net.set_input_size(32, 32).unwrap();
        assert_eq!(net.output_chw(), (6, 8, 8));
        assert!(net.set_input_size(0, 32).is_err());
        let y = net
            .forward(&Tensor::zeros(Shape::nchw(1, 3, 32, 32)))
            .unwrap();
        assert_eq!(y.shape().dims(), &[1, 6, 8, 8]);
    }

    #[test]
    fn train_forward_then_backward_produces_input_grad() {
        let mut net = tiny_net();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        net.init_weights(&mut rng);
        let x = init::uniform(Shape::nchw(2, 3, 16, 16), 0.0, 1.0, &mut rng);
        let y = net.forward_train(&x).unwrap();
        let g = Tensor::ones(*y.shape());
        let dx = net.backward(&g).unwrap();
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
        assert_eq!(net.seen(), 2);
    }

    #[test]
    fn backward_without_forward_names_the_layer() {
        let mut net = tiny_net();
        let g = Tensor::zeros(net.output_shape(1));
        match net.backward(&g) {
            Err(NnError::MissingForwardCache { layer_index }) => assert_eq!(layer_index, 5),
            other => panic!("expected missing-cache error, got {other:?}"),
        }
    }

    #[test]
    fn visit_params_matches_param_count() {
        let mut net = tiny_net();
        let mut seen = 0usize;
        net.visit_params_mut(|p, g| {
            assert_eq!(p.len(), g.len());
            seen += p.len();
        });
        assert_eq!(seen, net.param_count());
        assert!(net.param_count() > 0);
    }

    #[test]
    fn zero_grads_after_backward() {
        let mut net = tiny_net();
        let x = Tensor::ones(Shape::nchw(1, 3, 16, 16));
        let y = net.forward_train(&x).unwrap();
        net.backward(&Tensor::ones(*y.shape())).unwrap();
        net.zero_grads();
        net.visit_params_mut(|_, g| assert!(g.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn observed_network_records_per_layer_timings() {
        let mut net = tiny_net();
        let obs = Registry::new();
        net.set_observability(&obs);
        assert!(net.observability().is_enabled());
        let x = Tensor::zeros(Shape::nchw(1, 3, 16, 16));
        net.forward(&x).unwrap();
        let y = net.forward_train(&x).unwrap();
        net.backward(&Tensor::ones(*y.shape())).unwrap();
        let snap = obs.snapshot();
        assert_eq!(snap.histogram("nn.forward.total").unwrap().count, 2);
        assert_eq!(snap.histogram("nn.backward.total").unwrap().count, 1);
        assert_eq!(snap.histogram("nn.forward.L00.conv").unwrap().count, 2);
        assert_eq!(snap.histogram("nn.backward.L05.region").unwrap().count, 1);
        // One histogram per layer per direction, plus the two totals.
        assert_eq!(snap.histograms.len(), 2 * net.len() + 2);
        // Detaching stops recording without touching accumulated data.
        net.set_observability(&Registry::noop());
        net.forward(&x).unwrap();
        assert_eq!(
            obs.snapshot().histogram("nn.forward.total").unwrap().count,
            2
        );
    }

    #[test]
    fn layers_pushed_after_observability_are_timed() {
        let obs = Registry::new();
        let mut net = Network::new(3, 8, 8);
        net.set_observability(&obs);
        net.push(Layer::conv(
            Conv2d::new(3, 4, 3, 1, 1, Activation::Leaky, false).unwrap(),
        ));
        net.forward(&Tensor::zeros(Shape::nchw(1, 3, 8, 8)))
            .unwrap();
        assert_eq!(
            obs.snapshot()
                .histogram("nn.forward.L00.conv")
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn traced_forward_emits_per_layer_spans() {
        let mut net = tiny_net();
        let tracer = Tracer::new();
        net.set_tracing(&tracer);
        assert!(net.tracing().is_enabled());
        tracer.set_frame(11);
        net.forward(&Tensor::zeros(Shape::nchw(1, 3, 16, 16)))
            .unwrap();
        let snap = tracer.snapshot();
        // One nn.forward span plus one span per layer, each begin+end.
        assert_eq!(snap.events.len(), 2 * (net.len() + 1));
        assert!(snap.events.iter().all(|e| e.frame_id == 11));
        let layer_auxes: Vec<i64> = snap
            .events
            .iter()
            .filter(|e| e.kind == dronet_obs::TraceKind::End && e.name != "nn.forward")
            .map(|e| e.aux)
            .collect();
        assert_eq!(layer_auxes, (0..net.len() as i64).collect::<Vec<_>>());
        // Detaching goes back to the single-branch noop path.
        net.set_tracing(&Tracer::noop());
        net.forward(&Tensor::zeros(Shape::nchw(1, 3, 16, 16)))
            .unwrap();
        assert_eq!(tracer.snapshot().events.len(), snap.events.len());
    }

    #[test]
    fn empty_network_is_identity() {
        let mut net = Network::new(2, 4, 4);
        assert!(net.is_empty());
        let x = Tensor::ones(Shape::nchw(1, 2, 4, 4));
        let y = net.forward(&x).unwrap();
        assert_eq!(y, x);
    }
}
